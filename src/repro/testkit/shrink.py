"""Counterexample shrinking for failing power schedules.

A failing run is characterized by the list of timeline offsets its power
failures struck at (``ExecutionReport.failure_offsets``); replaying that
list through ``PowerManager.scheduled`` reproduces the run exactly
(execution is deterministic). Shrinking then minimizes the schedule in two
passes:

1. **greedy deletion** — repeatedly drop any offset whose removal keeps
   the violation (a ddmin-style pass; most failures need only one or two
   of the original failure points);
2. **per-offset binary search** — bisect each surviving offset toward the
   smallest value that still fails. Failure behaviour is not globally
   monotone in the offset, so this is a best-effort descent: every
   accepted midpoint is re-verified, and the last *confirmed-failing*
   value wins.

The predicate is an arbitrary callable, so the same shrinker serves the
sweep (single/double injections), the differential grid (replayed periodic
failures) and the stochastic fuzzer.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple


def shrink_schedule(
    schedule: Sequence[int],
    still_fails: Callable[[Tuple[int, ...]], bool],
    max_runs: int = 200,
) -> Tuple[Tuple[int, ...], int]:
    """Minimize a failing schedule; returns ``(shrunk, runs_used)``.

    ``still_fails`` must return True when the candidate schedule still
    exhibits the original violation. The input schedule is assumed
    failing; it is returned unchanged if no smaller schedule fails within
    the ``max_runs`` verification budget.
    """
    best: List[int] = sorted(int(o) for o in schedule)
    runs = 0

    def attempt(candidate: List[int]) -> bool:
        nonlocal runs
        runs += 1
        return still_fails(tuple(candidate))

    # Pass 1: greedy deletion to a 1-minimal subset.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for i in range(len(best)):
            if runs >= max_runs:
                break
            candidate = best[:i] + best[i + 1 :]
            if attempt(candidate):
                best = candidate
                changed = True
                break

    # Pass 2: bisect each offset toward its smallest failing value.
    for i in range(len(best)):
        lo = 0 if i == 0 else best[i - 1] + 1
        hi = best[i]  # confirmed failing
        while lo < hi and runs < max_runs:
            mid = (lo + hi) // 2
            if attempt(best[:i] + [mid] + best[i + 1 :]):
                hi = mid
            else:
                lo = mid + 1
        best[i] = hi

    return tuple(best), runs
