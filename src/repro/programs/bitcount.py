"""bitcount — population counts with five algorithms (MiBench2
``bitcount``): iterated shift-and, Kernighan's sparse loop, nibble-table
lookup, byte-table lookup and the SWAR reduction. Each method runs over the
whole input vector for several passes; per-method totals are the output.
"""

from __future__ import annotations

from repro.programs.base import Benchmark, format_table

N = 96
PASSES = 5

NIBBLE_TABLE = [bin(i).count("1") for i in range(16)]
BYTE_TABLE = [bin(i).count("1") for i in range(256)]

SOURCE = f"""
const u8 nibble_bits[16] = {format_table(NIBBLE_TABLE)};
const u8 byte_bits[256] = {format_table(BYTE_TABLE)};

u32 data[{N}];
u32 counts[5];
u32 total;

u32 count_shift(u32 x) {{
    u32 n = 0;
    for (i32 i = 0; i < 32; i++) {{
        n += (x >> i) & 1;
    }}
    return n;
}}

u32 count_kernighan(u32 x) {{
    u32 n = 0;
    @maxiter(32)
    while (x != 0) {{
        x &= x - 1;
        n++;
    }}
    return n;
}}

u32 count_nibbles(u32 x) {{
    u32 n = 0;
    for (i32 i = 0; i < 8; i++) {{
        n += (u32) nibble_bits[(x >> (i * 4)) & 15];
    }}
    return n;
}}

u32 count_bytes(u32 x) {{
    u32 n = 0;
    for (i32 i = 0; i < 4; i++) {{
        n += (u32) byte_bits[(x >> (i * 8)) & 255];
    }}
    return n;
}}

u32 count_swar(u32 x) {{
    x = x - ((x >> 1) & 0x55555555);
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
    x = (x + (x >> 4)) & 0x0f0f0f0f;
    return (x * 0x01010101) >> 24;
}}

void main() {{
    for (i32 m = 0; m < 5; m++) {{
        counts[m] = 0;
    }}
    for (i32 pass = 0; pass < {PASSES}; pass++) {{
        for (i32 i = 0; i < {N}; i++) {{
            u32 v = data[i] + (u32) pass;
            counts[0] += count_shift(v);
            counts[1] += count_kernighan(v);
            counts[2] += count_nibbles(v);
            counts[3] += count_bytes(v);
            counts[4] += count_swar(v);
        }}
    }}
    u32 acc = 0;
    for (i32 m = 0; m < 5; m++) {{
        acc += counts[m];
    }}
    total = acc;
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="bitcount",
        source=SOURCE,
        input_vars={"data": 1 << 32},
        output_vars=["counts", "total"],
    )
