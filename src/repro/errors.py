"""Exception hierarchy shared by every subpackage.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single exception type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by schematic-repro."""


class IRError(ReproError):
    """Structural problem in the intermediate representation."""


class IRValidationError(IRError):
    """An IR module failed structural validation (see :mod:`repro.ir.validate`)."""


class FrontendError(ReproError):
    """Base class for MiniC frontend errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in MiniC source."""


class ParseError(FrontendError):
    """Syntactically invalid MiniC source."""


class SemanticError(FrontendError):
    """Type or scoping error in MiniC source."""


class AnalysisError(ReproError):
    """A program analysis received ill-formed input (e.g. irreducible CFG)."""


class RecursionUnsupportedError(AnalysisError):
    """The call graph contains recursion, which SCHEMATIC does not handle."""


class EnergyModelError(ReproError):
    """Inconsistent energy-model or platform configuration."""


class PlacementError(ReproError):
    """Checkpoint placement failed (e.g. the energy budget is too small for
    even a single instruction between checkpoints)."""


class InfeasibleBudgetError(PlacementError):
    """No checkpoint placement can guarantee forward progress with the given
    capacitor budget ``EB``."""


class VMCapacityError(ReproError):
    """A technique requires more volatile memory than the platform provides."""


class EmulationError(ReproError):
    """Runtime error while interpreting IR (trap, bad memory access, ...)."""


class ForwardProgressError(EmulationError):
    """The emulated program is stuck: repeated power failures prevent it from
    ever reaching the next checkpoint."""


class MemoryAnomalyError(EmulationError):
    """Re-execution after a power failure observed inconsistent NVM state
    (write-after-read anomaly), producing a result that diverges from the
    continuously-powered reference run."""
