"""Machine-checked memory-consistency certification (CONS rules).

This is the checker's implementation of Surbatovich et al.'s formal
correctness conditions for intermittent execution, specialized per
technique through :mod:`repro.staticcheck.techmodel`:

- **CONS001** — a re-executed region observes a value it already
  overwrote. The generalization of the WAR analyzer: interprocedural
  first-read/first-write ordering from the region facts pass
  (:mod:`repro.analysis.regions`), element-sensitive for constant array
  indices. Where a CONS001 finding lands on the same write as a
  WAR001/WAR002 finding, the checker facade keeps the CONS001 and drops
  the coarser WAR duplicate.
- **CONS002** — a volatile environment input
  (:attr:`repro.ir.values.Variable.volatile_input`) is sampled inside a
  re-executable region; the replay re-samples and may diverge. The
  finding cites where the sample flows (branch conditions, stored
  memory, call arguments) from the taint pass.
- **CONS003** — after a checkpoint's wake/rollback restore, a
  VM-resident variable the checkpoint's ``restore_vars`` provably
  misses is read before being fully overwritten (reported at the read).
- **CONS004** — the checkpoint metadata and the technique's restore
  semantics disagree: a variable is VM-placed but the restore set
  provably misses it while it is still live (reported at the
  checkpoint), or the technique cannot restore VM allocations at all.

Alongside findings, the certifier emits a machine-readable
:class:`Certificate`: one proof obligation per (rule, region/checkpoint)
with the discharged facts — what was checked and why it is safe — so a
clean report is a checkable artifact rather than an absence of output.

Soundness notes. The CONS003/CONS004 hazard window is closed by a full
scalar overwrite, a definitely-taken checkpoint (later anchors own the
continuation), or function return (windows are not propagated upward
into callers — calls *into* callees are followed through summaries).
``const`` variables are exempt from restore obligations: their NVM home
is immutable, so a runtime can always refetch them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.regions import (
    RegionFacts,
    RegionSummary,
    analyze_regions,
)
from repro.ir.function import Function
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.ir.values import MemorySpace, Variable
from repro.staticcheck.common import (
    CHECKPOINT_KINDS,
    FindingSink,
    call_ref_mapping,
    checkpoint_clears,
    substitute,
    variable_map,
    vm_set,
)
from repro.staticcheck.findings import Finding, Location, Severity
from repro.staticcheck.rules import RULES
from repro.staticcheck.techmodel import TechniqueModel


@dataclass
class Certificate:
    """Per-region proof obligations and their discharge status."""

    technique: str
    module: str
    obligations: List[Dict[str, object]] = field(default_factory=list)

    def add(
        self,
        rule: str,
        function: str,
        status: str,
        facts: Dict[str, object],
        anchor: Optional[str] = None,
    ) -> None:
        entry: Dict[str, object] = {
            "rule": rule,
            "function": function,
            "status": status,
            "facts": facts,
        }
        if anchor is not None:
            entry["anchor"] = anchor
        self.obligations.append(entry)

    def summary(self) -> Dict[str, int]:
        violated = sum(
            1 for o in self.obligations if o["status"] == "violated"
        )
        return {
            "obligations": len(self.obligations),
            "discharged": len(self.obligations) - violated,
            "violated": violated,
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "technique": self.technique,
            "module": self.module,
            "summary": self.summary(),
            "obligations": list(self.obligations),
        }


# -- CONS003/CONS004 hazard window traversal ------------------------------


def _first_read_before_write(
    module: Module,
    func: Function,
    cfg: CFG,
    start: Tuple[str, int],
    target: str,
    summaries: Dict[str, RegionSummary],
    policy_may_skip: bool,
) -> Optional[Tuple[str, int, Optional[str]]]:
    """First point reachable from ``start`` where ``target`` may be read
    before being fully overwritten, with no definitely-taken checkpoint
    in between. Returns ``(block, index, via_callee)`` or None when every
    path overwrites, checkpoints or returns first."""
    worklist: List[Tuple[str, int]] = [start]
    seen: Set[str] = set()
    while worklist:
        label, index = worklist.pop()
        block = func.blocks[label]
        closed = False
        for i in range(index, len(block.instructions)):
            inst = block.instructions[i]
            if isinstance(inst, Load):
                if inst.var.name == target:
                    return (label, i, None)
            elif isinstance(inst, Store):
                if inst.var.name == target:
                    var = inst.var
                    if not (var.is_array or var.is_ref):
                        closed = True  # full overwrite
                        break
            elif isinstance(inst, CHECKPOINT_KINDS):
                if checkpoint_clears(inst, policy_may_skip):
                    # A definitely-taken checkpoint re-restores per its
                    # own metadata; its window is anchored separately.
                    closed = True
                    break
            elif isinstance(inst, Call):
                callee = module.function(inst.callee)
                summary = summaries[inst.callee]
                mapping = call_ref_mapping(inst, callee)
                if target in substitute(summary.vm_entry_reads, mapping):
                    return (label, i, inst.callee)
                if summary.always_clears:
                    closed = True
                    break
        if closed:
            continue
        for succ in cfg.succs.get(label, ()):
            if succ not in seen:
                seen.add(succ)
                worklist.append((succ, 0))
    return None


# -- certifier ------------------------------------------------------------


def certify_consistency(
    module: Module,
    model: TechniqueModel,
    sink: Optional[FindingSink] = None,
    *,
    policy_may_skip: bool = False,
    default_space: MemorySpace = MemorySpace.NVM,
    facts: Optional[RegionFacts] = None,
) -> Certificate:
    """Machine-check the CONS rules for one transformed module.

    ``facts`` may be passed in when the caller already ran the region
    facts pass; findings land in ``sink`` when given. Always returns the
    certificate, violated obligations included.
    """
    if facts is None:
        facts = analyze_regions(
            module,
            policy_may_skip=policy_may_skip,
            default_space=default_space,
        )
    cert = Certificate(technique=model.name, module=module.name)
    variables = variable_map(module)

    _certify_idempotency(module, facts, cert, sink)
    _certify_input_reads(module, facts, cert, sink)
    _certify_restores(
        module, model, facts, cert, sink,
        variables=variables, policy_may_skip=policy_may_skip,
    )
    return cert


def _emit(sink: Optional[FindingSink], finding: Finding) -> None:
    if sink is not None:
        sink.add(finding)


def _certify_idempotency(
    module: Module,
    facts: RegionFacts,
    cert: Certificate,
    sink: Optional[FindingSink],
) -> None:
    rule = RULES["CONS001"]
    events_by_function: Dict[str, List] = {name: [] for name in module.functions}
    for event in facts.events:
        if event.kind != "war":
            continue
        events_by_function[event.function].append(event)
        severity = rule.default_severity if event.definite else Severity.WARNING
        writer = (
            f"call to @{event.via} overwrites" if event.via else "write to"
        )
        what = (
            "the storage" if event.definite else "possibly the storage"
        )
        element = (
            f" element [{event.element}]" if event.element is not None else ""
        )
        _emit(sink, Finding(
            rule_id=rule.rule_id,
            severity=severity,
            location=Location(event.function, event.block, event.index),
            message=(
                f"{writer} @{event.variable}{element} after a read of "
                f"{what} in the same replay region; a re-execution "
                f"observes the first execution's output "
                f"(first-read-before-first-write ordering violated)"
            ),
            details={
                "variable": event.variable,
                "via": event.via,
                "definite": event.definite,
                "element": event.element,
                "subsumes": "WAR001" if event.definite else "WAR002",
            },
        ))
    for name, summary in facts.summaries.items():
        events = events_by_function.get(name, [])
        cert.add(
            "CONS001", name,
            "violated" if events else "discharged",
            facts={
                "region_anchors": facts.anchors.get(name, 0),
                "exposed_reads_at_exit": sorted(
                    f"{n}[{i}]" if i is not None else n
                    for n, i in summary.exposed_at_exit
                ),
                "writes_before_first_checkpoint": len(
                    summary.writes_before_clear
                ),
                "violations": len(events),
            },
        )


def _certify_input_reads(
    module: Module,
    facts: RegionFacts,
    cert: Certificate,
    sink: Optional[FindingSink],
) -> None:
    rule = RULES["CONS002"]
    reads_by_function: Dict[str, List] = {}
    for event in facts.events:
        if event.kind != "env-read":
            continue
        reads_by_function.setdefault(event.function, []).append(event)
        flows = sorted(facts.env_flows.get(event.variable, frozenset()))
        flow_text = (
            f"; the sample flows into {', '.join(flows)}"
            if flows else ""
        )
        _emit(sink, Finding(
            rule_id=rule.rule_id,
            severity=rule.default_severity,
            location=Location(event.function, event.block, event.index),
            message=(
                f"volatile environment input @{event.variable} is "
                f"sampled inside a re-executable region; a replay "
                f"re-samples a world that has moved on{flow_text}"
            ),
            details={
                "variable": event.variable,
                "flows_to": flows,
            },
        ))
    env_vars = sorted(
        var.name for var in module.all_variables() if var.volatile_input
    )
    for name in module.functions:
        events = reads_by_function.get(name, [])
        cert.add(
            "CONS002", name,
            "violated" if events else "discharged",
            facts={
                "environment_inputs": env_vars,
                "sampled_here": sorted({e.variable for e in events}),
                "violations": len(events),
            },
        )


def _certify_restores(
    module: Module,
    model: TechniqueModel,
    facts: RegionFacts,
    cert: Certificate,
    sink: Optional[FindingSink],
    *,
    variables: Dict[str, Variable],
    policy_may_skip: bool,
) -> None:
    cons3 = RULES["CONS003"]
    cons4 = RULES["CONS004"]
    for func in module.functions.values():
        cfg = CFG(func)
        for label, block in func.blocks.items():
            for i, inst in enumerate(block.instructions):
                if not isinstance(inst, CHECKPOINT_KINDS):
                    continue
                anchor = f"ckpt{inst.ckpt_id}"
                allocated = vm_set(inst.alloc_after)
                if not model.supports_vm:
                    status = "violated" if allocated else "discharged"
                    if allocated:
                        _emit(sink, Finding(
                            rule_id=cons4.rule_id,
                            severity=cons4.default_severity,
                            location=Location(func.name, label, i),
                            message=(
                                f"checkpoint #{inst.ckpt_id} maps "
                                f"{', '.join('@' + n for n in sorted(allocated))} "
                                f"into VM, but technique "
                                f"{model.name!r} keeps all data in NVM "
                                f"and cannot restore volatile "
                                f"allocations"
                            ),
                            details={
                                "checkpoint": inst.ckpt_id,
                                "variables": sorted(allocated),
                                "technique": model.name,
                            },
                        ))
                    cert.add(
                        "CONS004", func.name, status,
                        facts={
                            "vm_allocated": sorted(allocated),
                            "technique_supports_vm": False,
                        },
                        anchor=anchor,
                    )
                    continue
                if not model.restores_metadata:
                    cert.add(
                        "CONS003", func.name, "discharged",
                        facts={"restore": "not metadata-driven"},
                        anchor=anchor,
                    )
                    continue
                unrestored = sorted(
                    name
                    for name in allocated - set(inst.restore_vars)
                    if not (
                        name in variables and variables[name].is_const
                    )
                )
                reads: Dict[str, Tuple[str, int, Optional[str]]] = {}
                for name in unrestored:
                    hit = _first_read_before_write(
                        module, func, cfg, (label, i + 1), name,
                        facts.summaries, policy_may_skip,
                    )
                    if hit is not None:
                        reads[name] = hit
                for name in unrestored:
                    hit = reads.get(name)
                    if hit is None:
                        continue
                    rblock, rindex, via = hit
                    reader = (
                        f"call to @{via} reads" if via else "read of"
                    )
                    _emit(sink, Finding(
                        rule_id=cons3.rule_id,
                        severity=cons3.default_severity,
                        location=Location(func.name, rblock, rindex),
                        message=(
                            f"{reader} @{name} after the restore of "
                            f"checkpoint #{inst.ckpt_id}, which maps it "
                            f"into VM but omits it from restore_vars; "
                            f"the value is unrestored volatile state"
                        ),
                        details={
                            "variable": name,
                            "checkpoint": inst.ckpt_id,
                            "via": via,
                        },
                    ))
                    _emit(sink, Finding(
                        rule_id=cons4.rule_id,
                        severity=cons4.default_severity,
                        location=Location(func.name, label, i),
                        message=(
                            f"checkpoint #{inst.ckpt_id} maps @{name} "
                            f"into VM but its restore set misses it "
                            f"while it is still live (read before "
                            f"overwrite at {func.name}/.{rblock}"
                            f"[{rindex}])"
                        ),
                        details={
                            "variable": name,
                            "checkpoint": inst.ckpt_id,
                            "read_at": f"{func.name}/.{rblock}[{rindex}]",
                        },
                    ))
                for rule_id in ("CONS003", "CONS004"):
                    cert.add(
                        rule_id, func.name,
                        "violated" if reads else "discharged",
                        facts={
                            "vm_allocated": sorted(allocated),
                            "restore_vars": sorted(inst.restore_vars),
                            "unrestored": unrestored,
                            "unrestored_live": sorted(reads),
                            "discharge": (
                                "every unrestored variable is overwritten "
                                "or checkpointed before any read"
                                if unrestored and not reads else
                                "restore set covers the VM allocation"
                                if not unrestored else ""
                            ),
                        },
                        anchor=anchor,
                    )
