"""Telemetry: spans, events, metrics and trace exporters.

Instrumentation sites use the tiny module-level surface::

    from repro import telemetry

    tm = telemetry.get()            # None when disabled -> emit nothing
    with telemetry.span("placer.profile", runs=4):
        ...

Drivers opt in with :func:`enable` (or ``--trace`` on
``repro.experiments.run_all`` / ``repro.testkit``) and export via
:mod:`repro.telemetry.exporters`; ``python -m repro.telemetry report``
renders a trace. See docs/observability.md.
"""

from repro.telemetry.core import (
    NULL_SPAN,
    SCHEMA_VERSION,
    TRACK_COMPILER,
    TRACK_RUNTIME,
    TRACK_STATIC,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    count,
    disable,
    enable,
    enabled,
    get,
    span,
)

__all__ = [
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "TRACK_COMPILER",
    "TRACK_RUNTIME",
    "TRACK_STATIC",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "count",
    "disable",
    "enable",
    "enabled",
    "get",
    "span",
]
