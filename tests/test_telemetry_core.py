"""Unit tests for the telemetry core: spans, scopes, metrics, the event
schema validator and the trace report.

Timing-sensitive assertions use an injectable fake clock so span
timestamps and durations are exact, not approximate.
"""

import pytest

from repro import telemetry
from repro.telemetry.events import (
    TraceSchemaError,
    header_record,
    validate_record,
    validate_trace,
)
from repro.telemetry.report import analyze, headroom_violations, render


class FakeClock:
    """Deterministic nanosecond clock; advanced explicitly in µs."""

    def __init__(self):
        self.ns = 1_000_000

    def __call__(self):
        return self.ns

    def tick(self, us):
        self.ns += us * 1000


@pytest.fixture(autouse=True)
def _no_global_leak():
    """Every test must leave the process-global handle uninstalled."""
    yield
    assert telemetry.get() is None, "test leaked an enabled telemetry handle"
    telemetry.disable()


# -- core ---------------------------------------------------------------------


def test_disabled_helpers_are_no_ops():
    assert telemetry.get() is None
    span = telemetry.span("anything", x=1)
    assert span is telemetry.NULL_SPAN
    with span as s:
        s.set(y=2)  # must not raise
    telemetry.count("nothing")  # must not raise, records nowhere


def test_enable_disable_roundtrip():
    tm = telemetry.enable(meta={"tool": "test"})
    assert telemetry.get() is tm
    assert telemetry.disable() is tm
    assert telemetry.get() is None


def test_enabled_context_restores_disabled_state():
    with telemetry.enabled() as tm:
        assert telemetry.get() is tm
    assert telemetry.get() is None


def test_span_records_exact_timestamps():
    clock = FakeClock()
    with telemetry.enabled(clock_ns=clock) as tm:
        clock.tick(10)
        with tm.span("place", technique="schematic") as span:
            clock.tick(250)
            span.set(nodes=7)
    [record] = tm.events
    assert record == {
        "kind": "span",
        "track": telemetry.TRACK_COMPILER,
        "name": "place",
        "ts": 10,
        "dur": 250,
        "attrs": {"technique": "schematic", "nodes": 7},
    }


def test_scope_attrs_merge_and_nest():
    with telemetry.enabled() as tm:
        with tm.scope(benchmark="crc", eb=3000.0):
            with tm.scope(technique="ratchet", eb=42.0):
                tm.event("inner", ts=0)
            tm.event("outer", ts=1)
        tm.event("bare", ts=2)
    inner, outer, bare = tm.events
    assert inner["attrs"] == {
        "benchmark": "crc", "technique": "ratchet", "eb": 42.0,
    }
    assert outer["attrs"] == {"benchmark": "crc", "eb": 3000.0}
    assert "attrs" not in bare


def test_event_explicit_ts_is_emulated_timeline():
    with telemetry.enabled() as tm:
        tm.event("ckpt-save", track=telemetry.TRACK_RUNTIME, ts=12345,
                 ckpt=2)
    [record] = tm.events
    assert record["ts"] == 12345
    assert record["track"] == "runtime"


def test_metrics_registry_and_snapshot():
    with telemetry.enabled() as tm:
        tm.counter("rcg.nodes").add(5)
        tm.counter("rcg.nodes").add(2)
        tm.gauge("vm.bytes").set(512.0)
        hist = tm.histogram("window")
        for value in (0.5, 3.0, 100.0):
            hist.record(value)
        snapshot = {m["name"]: m for m in tm.metrics_snapshot()}
    assert snapshot["rcg.nodes"]["value"] == 7
    assert snapshot["vm.bytes"]["value"] == 512.0
    window = snapshot["window"]
    assert window["count"] == 3
    assert window["min"] == 0.5 and window["max"] == 100.0
    # 0.5 -> bucket 0 (<=1); 3.0 -> (2,4] bucket 2; 100 -> (64,128] bucket 7.
    # Exact fixed-bound buckets: one slot per bound plus one overflow.
    assert len(window["buckets"]) == len(window["bounds"]) + 1
    expected = [0] * len(window["buckets"])
    expected[0], expected[2], expected[7] = 1, 1, 1
    assert window["buckets"] == expected


def test_run_ids_are_unique_and_sequential():
    with telemetry.enabled() as tm:
        assert [tm.next_run_id() for _ in range(3)] == [1, 2, 3]


# -- schema validation --------------------------------------------------------


def test_validator_accepts_well_formed_records():
    validate_record(header_record({"tool": "t"}))
    validate_record({"kind": "span", "track": "compiler", "name": "p",
                     "ts": 0, "dur": 1})
    validate_record({"kind": "event", "track": "runtime", "name": "e",
                     "ts": 7, "attrs": {"run": 1}})
    validate_record({"kind": "metrics", "metrics": []})


@pytest.mark.parametrize("record", [
    {"kind": "mystery"},
    {"kind": "span", "track": "compiler", "name": "p", "ts": 0},  # no dur
    {"kind": "event", "track": "runtime", "name": "e"},  # no ts
    {"kind": "event", "track": "runtime", "name": "e", "ts": 1.5},
    {"kind": "event", "track": "", "name": "e", "ts": 0},
    {"kind": "header", "schema": 99, "meta": {}},  # from the future
    {"kind": "event", "track": "runtime", "name": "e", "ts": 0,
     "attrs": "not-a-dict"},
])
def test_validator_rejects_malformed_records(record):
    with pytest.raises(TraceSchemaError):
        validate_record(record, lineno=3)


def test_trace_must_start_with_header():
    with pytest.raises(TraceSchemaError):
        validate_trace([{"kind": "metrics", "metrics": []}])
    with pytest.raises(TraceSchemaError):
        validate_trace([])
    validate_trace([header_record({})])


# -- report -------------------------------------------------------------------


def _trace_with(observed, bound, eb=1000.0):
    """A minimal trace: one certified segment with the given numbers."""
    attrs = {"benchmark": "crc", "technique": "schematic", "eb": eb,
             "ckpt": 1, "run": 1}
    return [
        header_record({"tool": "test"}),
        {"kind": "event", "track": "static", "name": "segment-bound",
         "ts": 0, "attrs": {**attrs, "bound_nj": bound, "eb_nj": eb}},
        {"kind": "event", "track": "runtime", "name": "ckpt-save",
         "ts": 10, "attrs": {**attrs, "window_nj": observed}},
    ]


def test_analyze_aggregates_observed_max_and_bound():
    records = _trace_with(observed=100.0, bound=150.0)
    records.append({
        "kind": "event", "track": "runtime", "name": "ckpt-save",
        "ts": 20, "attrs": {**records[2]["attrs"], "window_nj": 120.0},
    })
    summary = analyze(records)
    [seg] = summary.segments
    assert seg.observed_max == 120.0
    assert seg.bound == 150.0
    assert seg.closes == 2
    assert not seg.violates
    assert headroom_violations(summary) == []
    assert summary.runs == 1


def test_report_flags_headroom_violation():
    summary = analyze(_trace_with(observed=200.0, bound=150.0))
    assert [seg.ckpt for seg in headroom_violations(summary)] == [1]
    text = render(summary)
    assert "!!" in text
    assert "falsified" in text


def test_report_tolerates_float_jitter():
    summary = analyze(_trace_with(observed=150.0 + 1e-9, bound=150.0))
    assert headroom_violations(summary) == []


def test_uncertified_segment_is_not_a_violation():
    """Rollback-mode placements emit no bounds; observed-only rows must
    render blank, never flag."""
    records = _trace_with(observed=100.0, bound=150.0)[:1] + [{
        "kind": "event", "track": "runtime", "name": "ckpt-save",
        "ts": 5, "attrs": {"benchmark": "crc", "technique": "mementos",
                           "ckpt": 3, "run": 1, "window_nj": 999.0},
    }]
    summary = analyze(records)
    [seg] = summary.segments
    assert seg.bound is None and not seg.violates
    assert headroom_violations(summary) == []


def test_render_sections_and_traffic_totals():
    records = _trace_with(observed=100.0, bound=150.0)
    records.append({"kind": "span", "track": "compiler", "name": "place",
                    "ts": 0, "dur": 2500})
    records.append({"kind": "event", "track": "runtime",
                    "name": "power-failure", "ts": 30,
                    "attrs": {"run": 1}})
    summary = analyze(records)
    text = render(summary)
    assert "segment-energy headroom" in text
    assert "headroom ok: 1 certified segment(s)" in text
    assert "ckpt-save" in text and "power-failure" in text
    assert "compile-phase breakdown" in text and "place" in text


def test_render_top_limits_table():
    records = [header_record({})]
    for ckpt in range(5):
        records.append({
            "kind": "event", "track": "runtime", "name": "ckpt-save",
            "ts": ckpt, "attrs": {"benchmark": "b", "technique": "t",
                                  "ckpt": ckpt, "run": 1,
                                  "window_nj": float(ckpt)},
        })
    text = render(analyze(records), top=2)
    assert "... 3 cooler segments not shown" in text
