"""Bench target regenerating Figure 6 (energy breakdown + headline)."""

from conftest import once

from repro.experiments import figure6_energy_breakdown


def test_figure6_energy_breakdown(benchmark, ctx):
    result = once(benchmark, lambda: figure6_energy_breakdown.run(ctx))
    print()
    print(result.render())
    # SCHEMATIC reduces energy vs every baseline (paper: 51% on average).
    for baseline in ("ratchet", "mementos", "rockclimb", "alfred"):
        reduction = result.reduction_vs(baseline)
        assert reduction is not None and reduction > 0, baseline
    assert result.average_reduction() > 0.2
    # Wait-mode techniques never re-execute.
    for technique in ("rockclimb", "schematic"):
        for name in result.benchmarks:
            cell = result.cells[technique][name]
            if cell.completed:
                assert cell.energy.reexecution == 0.0
