"""Translation validation: certify a placed module as a refinement of
its source (TV rules).

:func:`validate_translation` runs the simulation-relation inference of
:mod:`repro.analysis.simrel` over a (source, transformed) module pair —
product-graph block matching with checkpoint erasure, an inferred
variable correspondence and symbolic straight-line discharge — and turns
every failed obligation into a finding:

- **TV001** — an observable effect (store to corresponding memory,
  volatile-input sample, call, observable control flow) of one side has
  no counterpart on the other, or its value diverges.
- **TV002** — a matched block pair performs the same observable effects
  in a different order.
- **TV003** — the variable correspondence is violated: a private value
  leaks into an observable effect, a privatized local is live across
  blocks, or matched register state diverges at a block exit.
- **TV004** — a checkpoint sits where the simulation relation cannot be
  closed (non-transparent edge-split block, checkpoint-only cycle,
  checkpoint-carrying control flow that cannot be aligned).

Like the consistency certifier, a clean run is a checkable artifact: the
:class:`~repro.staticcheck.consistency.Certificate` carries one proof
obligation per (function, block pair) with the discharged facts, and
:func:`check_translation` attaches it to the report's
``stats["certificate"]``. Reports are served from the content-addressed
artifact cache keyed on **both** modules' printed text plus the rule
schema version, so editing either side invalidates exactly the affected
entries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import telemetry
from repro.analysis.simrel import (
    KIND_STRUCTURE,
    ModuleRelation,
    PairOutcome,
    infer_simulation,
)
from repro.ir.module import Module
from repro.runner.cache import ArtifactCache
from repro.staticcheck.checker import CheckReport
from repro.staticcheck.common import FindingSink
from repro.staticcheck.consistency import Certificate
from repro.staticcheck.findings import (
    Finding,
    Location,
    merge_findings,
)
from repro.staticcheck.rules import RULE_SCHEMA_VERSION, RULES, RuleConfig

#: Mismatch kind -> rule id (structural failures escalate to TV004 only
#: when a checkpoint is involved — a plain CFG divergence is TV001).
_KIND_RULES: Dict[str, str] = {
    "effect": "TV001",
    "order": "TV002",
    "correspondence": "TV003",
    "structure": "TV004",
}


def rule_for(pair: PairOutcome) -> str:
    """The TV rule a violated pair outcome falls under."""
    assert pair.kind is not None
    if pair.kind == KIND_STRUCTURE and not pair.checkpoint_involved:
        return "TV001"
    return _KIND_RULES[pair.kind]


def _pair_message(pair: PairOutcome, rule_id: str) -> str:
    anchor = (
        f"block pair .{pair.source_block or '?'} ~ "
        f".{pair.transformed_block or '?'}"
    )
    parts = [f"{pair.detail} ({anchor}"]
    if pair.source_event is not None:
        parts.append(f"; source: {pair.source_event}")
    if pair.transformed_event is not None:
        parts.append(f"; transformed: {pair.transformed_event}")
    parts.append(")")
    return "".join(parts)


def validate_translation(
    source: Module,
    transformed: Module,
    sink: FindingSink,
    *,
    technique: Optional[str] = None,
    relation: Optional[ModuleRelation] = None,
) -> Certificate:
    """Validate ``transformed`` as a refinement of ``source``.

    Emits TV findings into ``sink`` and returns the proof certificate:
    one obligation per (function, block pair), ``discharged`` when the
    pair's observable behaviour matched, ``violated`` otherwise.
    ``relation`` accepts a precomputed simulation relation so callers
    that need the relation themselves do not infer it twice.
    """
    if relation is None:
        relation = infer_simulation(source, transformed)
    cert = Certificate(
        technique=technique or "transval", module=transformed.name
    )
    for name in relation.missing_functions:
        finding = Finding(
            rule_id="TV001",
            severity=RULES["TV001"].default_severity,
            location=Location(function=name),
            message=(
                f"function @{name} exists in the source module but not "
                "in the transformed module: its observable behaviour "
                "has no counterpart"
            ),
            details={"function": name, "missing": True},
        )
        sink.add(finding)
        cert.add(
            "TV001", name, "violated",
            {"missing_function": name},
        )
    for name, rel in relation.functions.items():
        for pair in rel.pairs:
            anchor = (
                f"{name}:.{pair.source_block or '?'}~"
                f".{pair.transformed_block or '?'}"
            )
            if pair.discharged:
                cert.add("TV001", name, "discharged", pair.facts(), anchor)
                continue
            rule_id = rule_for(pair)
            cert.add(rule_id, name, "violated", pair.facts(), anchor)
            sink.add(Finding(
                rule_id=rule_id,
                severity=RULES[rule_id].default_severity,
                location=Location(
                    function=name,
                    block=pair.transformed_block or None,
                    index=pair.at,
                ),
                message=_pair_message(pair, rule_id),
                details=pair.facts(),
            ))
    return cert


def _translation_cache_key(
    source: Module,
    transformed: Module,
    technique: Optional[str],
    config: RuleConfig,
) -> str:
    """Content-addressed key over *both* modules' printed text, the rule
    schema version and the rule configuration."""
    from repro.ir.printer import print_module

    return ArtifactCache.key(
        "transval-report",
        RULE_SCHEMA_VERSION,
        ArtifactCache.text_fingerprint(print_module(source)),
        ArtifactCache.text_fingerprint(print_module(transformed)),
        technique or "",
        {
            "suppressed": sorted(config.suppressed),
            "overrides": {
                rule_id: int(sev)
                for rule_id, sev in sorted(config.severity_overrides.items())
            },
        },
    )


def check_translation(
    source: Module,
    transformed: Module,
    config: Optional[RuleConfig] = None,
    *,
    technique: Optional[str] = None,
    cache: Optional[ArtifactCache] = None,
) -> CheckReport:
    """Run only the translation-validation rules over a module pair.

    The report's ``stats["certificate"]`` holds the per-(function,
    block-pair) proof certificate; ``stats["transval"]`` its summary.
    With ``cache``, the whole report is served content-addressed.
    """
    config = config or RuleConfig()
    key = None
    if cache is not None:
        key = _translation_cache_key(source, transformed, technique, config)
        hit = cache.get("staticcheck", key)
        if isinstance(hit, CheckReport):
            return hit
    sink = FindingSink()
    with telemetry.span("staticcheck.family", family="transval"):
        relation = infer_simulation(source, transformed)
        cert = validate_translation(
            source, transformed, sink,
            technique=technique, relation=relation,
        )
    corr = relation.correspondence
    report = CheckReport(
        findings=merge_findings([sink.findings], config),
        stats={
            "analyses": ["transval"],
            "functions": len(relation.functions),
            "matched_pairs": sum(
                len(rel.pairs) for rel in relation.functions.values()
            ),
            "erased_checkpoints": sum(
                rel.erased_checkpoints
                for rel in relation.functions.values()
            ),
            "private_variables": len(corr.private),
            "renamed_variables": sum(
                1 for t, s in corr.to_source.items() if t != s
            ),
            "certified_functions": sum(
                1 for rel in relation.functions.values() if rel.certified
            ),
            "transval": cert.summary(),
            "certificate": cert.to_json(),
        },
    )
    if cache is not None and key is not None:
        cache.put("staticcheck", key, report)
    return report
