"""Trace tooling CLI.

Usage::

    # Render the headroom / traffic / phase report of a trace:
    python -m repro.telemetry report traces/run_all.jsonl [--top N]

    # Convert a JSONL trace to Chrome trace-event JSON (Perfetto):
    python -m repro.telemetry convert traces/run_all.jsonl -o out.json

``report`` exits 1 when any observed segment window exceeds its
certified static bound (the cross-validation contract), 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.telemetry.events import TraceSchemaError
from repro.telemetry.exporters import read_jsonl, write_chrome
from repro.telemetry.report import analyze, headroom_violations, render


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render a trace as text")
    report.add_argument("trace", help="JSONL trace file")
    report.add_argument(
        "--top", type=int, default=10,
        help="hottest segments to show (0 = all; default 10)",
    )

    convert = sub.add_parser(
        "convert", help="JSONL trace -> Chrome trace-event JSON"
    )
    convert.add_argument("trace", help="JSONL trace file")
    convert.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <trace>.chrome.json)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        records = read_jsonl(args.trace)
    except FileNotFoundError:
        print(f"error: no such trace {args.trace}", file=sys.stderr)
        return 2
    except (TraceSchemaError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "convert":
        output = args.output or str(
            Path(args.trace).with_suffix("")
        ) + ".chrome.json"
        path = write_chrome(records, output)
        print(f"wrote {path}")
        return 0

    summary = analyze(records)
    try:
        print(render(summary, top=args.top or None))
    except BrokenPipeError:
        # Reader (e.g. ``| head``) went away; the verdict still stands.
        sys.stderr.close()
    return 1 if headroom_violations(summary) else 0


if __name__ == "__main__":
    sys.exit(main())
