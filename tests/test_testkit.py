"""Tests for the fault-injection testkit itself.

Fast cases (corpus programs, small grids) run in tier-1; the exhaustive
benchmark sweeps are marked ``sweep`` and deselected by default — run
them with ``pytest -m sweep`` (or ``make sweep``).
"""

import pytest

from repro.core.verify import VerificationResult
from repro.testkit import (
    OUTCOME_ANOMALY,
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_PROGRESS,
    OUTCOME_STUCK,
    classify,
    record_boundaries,
    run_differential,
    run_fuzz,
    shrink_schedule,
    sweep_technique,
)
from repro.testkit.corpus import compile_for, load_program
from repro.testkit.sabotage import find_checkpoints, strip_checkpoint
from repro.testkit.sweep import select_points
from repro.energy import msp430fr5969_platform


# -- shrinking ---------------------------------------------------------------


def test_shrink_drops_redundant_offsets():
    shrunk, _ = shrink_schedule(
        (10, 42, 99, 107), lambda s: 42 in s
    )
    assert shrunk == (42,)


def test_shrink_binary_searches_offsets_down():
    # Failure needs any offset >= 100: minimal is exactly (100,).
    shrunk, _ = shrink_schedule(
        (250, 400), lambda s: any(o >= 100 for o in s)
    )
    assert shrunk == (100,)


def test_shrink_keeps_pairs_that_fail_only_together():
    shrunk, _ = shrink_schedule(
        (5, 17, 60), lambda s: 17 in s and 60 in s
    )
    assert shrunk == (17, 60)


def test_shrink_result_always_still_fails():
    calls = []

    def still_fails(s):
        calls.append(s)
        return sum(s) >= 120

    shrunk, runs = shrink_schedule((50, 70, 90), still_fails)
    assert still_fails(shrunk)
    assert runs == len(calls) - 1  # the final check above
    assert len(shrunk) <= 3


# -- oracle classification ----------------------------------------------------


def _result(completed, match, crashed=False):
    return VerificationResult(
        completed=completed, outputs_match=match,
        power_failures=1, crashed=crashed,
    )


def test_classify_outcomes():
    assert classify(_result(True, True), guarantee=True) == OUTCOME_OK
    assert classify(_result(True, False), guarantee=True) == OUTCOME_ANOMALY
    assert classify(_result(False, False), guarantee=True) == OUTCOME_PROGRESS
    assert classify(_result(False, False), guarantee=False) == OUTCOME_STUCK
    assert (
        classify(_result(False, False, crashed=True), guarantee=False)
        == OUTCOME_CRASH
    )


# -- boundary recording -------------------------------------------------------


def test_record_boundaries_monotone_and_labeled():
    plat = msp430fr5969_platform(eb=3000.0)
    bench = load_program("sumloop")
    compiled = compile_for(
        "schematic", bench.module, plat,
        input_generator=bench.input_generator(),
    )
    boundaries, report = record_boundaries(
        compiled, plat.model, plat.vm_size, bench.default_inputs()
    )
    assert report.completed
    offsets = [b.offset for b in boundaries]
    assert offsets == sorted(offsets)
    assert all(b.label for b in boundaries)
    # Runtime steps are labeled as such alongside plain instructions.
    labels = {b.label for b in boundaries}
    assert any(":save" in l for l in labels)
    static = select_points(boundaries, "static")
    assert len(static) == len({b.label for b in static})
    assert len(static) <= len(select_points(boundaries, "all"))


# -- sweeps on the corpus -----------------------------------------------------


@pytest.mark.parametrize("technique", ["schematic", "ratchet", "mementos"])
def test_sweep_corpus_single_failure_clean(technique):
    result = sweep_technique("sumloop", technique, granularity="static")
    assert result.ok, result.render()
    assert result.points > 0
    assert result.outcomes.get(OUTCOME_OK) == result.points


def test_sweep_warloop_schematic_exhaustive_double_failure():
    """Every dynamic boundary of the WAR-stress program, single and double
    injection: SCHEMATIC must stay crash-consistent everywhere."""
    result = sweep_technique(
        "warloop", "schematic", granularity="all", failures=2
    )
    assert result.ok, result.render()
    assert result.points > 100  # genuinely exhaustive, not a smoke run


def test_sabotage_is_caught_and_shrunk():
    """Removing a checkpoint from a tight-budget placement must produce
    oracle violations, each shrunk to a minimal failing schedule."""
    result = sweep_technique(
        "warloop", "schematic", eb=150.0, sabotage=True
    )
    assert not result.ok, "broken placement not detected"
    assert result.violations
    v = result.violations[0]
    assert v.outcome in (OUTCOME_ANOMALY, OUTCOME_PROGRESS, OUTCOME_CRASH)
    assert v.shrunk, "violation was not shrunk"
    assert len(v.shrunk) <= len(v.schedule)


def test_strip_checkpoint_prefers_validated_victims():
    plat = msp430fr5969_platform(eb=150.0)
    bench = load_program("warloop")
    compiled = compile_for(
        "schematic", bench.module, plat,
        input_generator=bench.input_generator(),
    )
    sites = find_checkpoints(compiled.module)
    assert sites
    # Reject every candidate: falls back to the first mid-program one.
    broken, victim = strip_checkpoint(
        compiled.module, validate=lambda m: False
    )
    assert not victim.is_boot
    assert len(find_checkpoints(broken)) == len(sites) - 1
    # The original module is untouched.
    assert len(find_checkpoints(compiled.module)) == len(sites)


# -- differential + fuzz smoke -------------------------------------------------


def test_differential_small_grid():
    result = run_differential(
        programs=["crc"], tbpf_values=[10_000],
        modes=("energy", "periodic"),
    )
    assert result.ok, result.render()
    assert not result.disagreements


def test_fuzz_smoke():
    result = run_fuzz(
        programs=("sumloop", "warloop"),
        techniques=("schematic", "ratchet", "mementos", "alfred"),
        seeds=2, mean_cycles=(800.0,),
    )
    assert result.ok, result.render()


def test_cli_sweep_smoke(capsys):
    from repro.testkit.__main__ import main

    assert main(["sweep", "--program", "sumloop",
                 "--technique", "schematic"]) == 0
    out = capsys.readouterr().out
    assert "zero oracle violations" in out


def test_cli_sabotage_exit_codes(capsys):
    from repro.testkit.__main__ import main

    assert main(["sweep", "--program", "warloop", "--technique",
                 "schematic", "--eb", "150", "--sabotage"]) == 0
    assert "sabotage caught" in capsys.readouterr().out


def test_cli_unknown_program_exits_2_with_choices(capsys):
    from repro.testkit.__main__ import main

    assert main(["sweep", "--program", "nosuch",
                 "--technique", "schematic"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "nosuch" in err and "sumloop" in err and "crc" in err


def test_cli_unknown_technique_exits_2_with_choices(capsys):
    from repro.testkit.__main__ import main

    assert main(["sweep", "--program", "sumloop",
                 "--technique", "nosuch"]) == 2
    err = capsys.readouterr().err
    assert "nosuch" in err and "schematic" in err


# -- deep suite (pytest -m sweep) ---------------------------------------------


@pytest.mark.sweep
def test_deep_sweep_crc_schematic_every_boundary():
    """The acceptance sweep: a failure at every instruction boundary of
    the transformed crc, zero oracle violations."""
    result = sweep_technique("crc", "schematic")
    assert result.ok, result.render()
    assert result.points > 40


@pytest.mark.sweep
@pytest.mark.parametrize("technique", ["ratchet", "mementos", "alfred"])
def test_deep_sweep_rollback_baselines_crc(technique):
    result = sweep_technique("crc", technique)
    assert result.ok, result.render()


@pytest.mark.sweep
def test_deep_sweep_crc_sabotage_caught():
    result = sweep_technique("crc", "schematic", sabotage=True)
    assert not result.ok
    assert any(v.shrunk for v in result.violations)


@pytest.mark.sweep
def test_deep_corpus_double_failure_rollback():
    """Exhaustive double-failure sweeps of the roll-back baselines on the
    WAR-stress program: snapshots must make re-execution transparent."""
    for technique in ("ratchet", "mementos", "alfred"):
        result = sweep_technique(
            "warloop", technique, granularity="all", failures=2
        )
        assert result.ok, result.render()


@pytest.mark.sweep
def test_deep_differential_grid():
    result = run_differential(
        programs=["crc", "bitcount"],
        tbpf_values=[1_000, 10_000],
    )
    assert result.ok, result.render()


@pytest.mark.sweep
def test_deep_fuzz():
    # rockclimb/allnvm anomalies under stochastic kills are classified
    # anomaly-outside-contract (docs/testing.md) — ok means everything
    # else stayed clean.
    result = run_fuzz(seeds=5)
    assert result.ok, result.render()
