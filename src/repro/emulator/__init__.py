"""IR-level intermittent-execution emulator (the SCEPTIC substitute).

The paper evaluates every technique on SCEPTIC, an emulator that "executes
programs at IR level, under intermittent power supply" and "monitors several
program metrics ... in particular the MSP430FR5969 energy consumption"
(§IV-A). This package provides the same observables:

- whether the program terminates (forward progress, Table III),
- energy split into computation / save / restore / re-execution (Fig. 6),
- computation energy split into no-memory / VM-access / NVM-access
  (Fig. 7), and access counts,
- active cycles, number of power failures, checkpoints saved/restored,
- program outputs (global variables), compared against a continuously
  powered reference run to detect memory anomalies.

Power failures are injected by energy budget (the capacitor empties after
``EB`` nJ since the last full recharge) or periodically by active cycles
(TBPF). §IV-C ties the two: "For each value of TBPF we set EB to the
average amount of energy that is consumed by the platform in the interval."
"""

from repro.emulator.memory import MemoryState
from repro.emulator.meter import EnergyBreakdown, EnergyMeter
from repro.emulator.power import PowerManager, PowerMode
from repro.emulator.runtime import CheckpointPolicy, MEMENTOS_THRESHOLD
from repro.emulator.report import ExecutionReport
from repro.emulator.interpreter import (
    EmulatorSnapshot,
    Interpreter,
    run_continuous,
    run_intermittent,
)
from repro.emulator.diffemu import (
    DiffEmuStats,
    PowerSpec,
    SnapshotTape,
    TapeStore,
    plan_cell,
    record_tape,
    run_cell,
)

__all__ = [
    "MemoryState",
    "EnergyBreakdown",
    "EnergyMeter",
    "PowerManager",
    "PowerMode",
    "CheckpointPolicy",
    "MEMENTOS_THRESHOLD",
    "ExecutionReport",
    "EmulatorSnapshot",
    "Interpreter",
    "run_continuous",
    "run_intermittent",
    "DiffEmuStats",
    "PowerSpec",
    "SnapshotTape",
    "TapeStore",
    "plan_cell",
    "record_tape",
    "run_cell",
]
