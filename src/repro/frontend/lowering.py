"""Lowering MiniC ASTs to the repro IR (with semantic checking).

Scalars — including scalar parameters and loop counters — are lowered to
memory-resident :class:`~repro.ir.Variable` objects accessed with explicit
``load``/``store`` instructions, never promoted to registers. This mirrors
the paper's setting ("we assume that compiler optimizations do not promote
variables to registers", §II-A): variables are exactly the objects the
checkpoint-placement/allocation passes reason about. Virtual registers hold
expression temporaries only.

Loop bounds: constant-bound ``for`` loops get their trip count inferred;
other loops take a ``@maxiter(n)`` annotation (paper §III-B2: "The maximum
number of iterations of loops is provided using annotations."). The bound is
recorded in ``Function.loop_maxiter`` keyed by the loop-header label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.ir import (
    Const,
    IRBuilder,
    IntType,
    Module,
    Opcode,
    Param,
    Register,
    U8,
    UnaryOpcode,
    Value,
    Variable,
    VarRef,
    validate_module,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.types import I32, U32, type_from_name

_BINOPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
}


@dataclass
class _LoopContext:
    """Branch targets for break/continue inside a loop body."""

    break_target: BasicBlock
    continue_target: BasicBlock


@dataclass(frozen=True)
class _FuncSig:
    params: Tuple[ast.ParamDecl, ...]
    return_type: Optional[IntType]


class _FunctionLowerer:
    """Lowers one MiniC function to IR."""

    def __init__(
        self,
        builder: IRBuilder,
        decl: ast.FuncDecl,
        signatures: Dict[str, _FuncSig],
        globals_: Dict[str, Variable],
    ):
        self.builder = builder
        self.decl = decl
        self.signatures = signatures
        self.globals = globals_
        #: lexical scope stack; index 0 is the function's outermost scope.
        self.scopes: List[Dict[str, Variable]] = [{}]
        self._name_counts: Dict[str, int] = {}
        self.loop_stack: List[_LoopContext] = []

    # -- helpers --------------------------------------------------------------

    def error(self, message: str, node: ast.Node) -> SemanticError:
        return SemanticError(f"in {self.decl.name}: {message}", node.line)

    @property
    def scope(self) -> Dict[str, Variable]:
        return self.scopes[-1]

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, node: ast.Node) -> str:
        """Validate a declaration in the current scope and return a
        function-unique backing name (C block scoping: shadowing across
        scopes is allowed, redeclaration within one scope is not)."""
        if name in self.scope:
            raise self.error(f"redeclaration of {name!r}", node)
        if name in self.globals:
            raise self.error(
                f"local {name!r} shadows a global (unsupported)", node
            )
        count = self._name_counts.get(name, 0)
        self._name_counts[name] = count + 1
        return name if count == 0 else f"{name}__{count}"

    def lookup(self, name: str, node: ast.Node) -> Variable:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise self.error(f"undefined variable {name!r}", node)

    def _typed_const(self, value: int, node: ast.Node) -> Const:
        """Type an integer literal: i32 unless it only fits unsigned."""
        if I32.contains(value):
            return Const(value, I32)
        if U32.contains(value):
            return Const(value, U32)
        raise self.error(f"literal {value} does not fit any 32-bit type", node)

    # -- expressions -----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return self._typed_const(expr.value, expr)
        if isinstance(expr, ast.NameExpr):
            var = self.lookup(expr.name, expr)
            if var.is_array:
                raise self.error(
                    f"array {expr.name!r} used as a scalar value", expr
                )
            return self.builder.emit_load(var)
        if isinstance(expr, ast.IndexExpr):
            var = self.lookup(expr.name, expr)
            if not var.is_array:
                raise self.error(f"indexing scalar {expr.name!r}", expr)
            index = self.lower_expr(expr.index)
            return self.builder.emit_load(var, index)
        if isinstance(expr, ast.UnaryExpr):
            operand = self.lower_expr(expr.operand)
            op = {
                "-": UnaryOpcode.NEG,
                "~": UnaryOpcode.NOT,
                "!": UnaryOpcode.LNOT,
            }[expr.op]
            return self.builder.emit_unop(op, operand)
        if isinstance(expr, ast.BinaryExpr):
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            return self.builder.emit_binop(_BINOPS[expr.op], lhs, rhs)
        if isinstance(expr, ast.LogicalExpr):
            return self._lower_logical(expr)
        if isinstance(expr, ast.CastExpr):
            operand = self.lower_expr(expr.operand)
            return self.builder.emit_move(operand, type_from_name(expr.type_name))
        if isinstance(expr, ast.CallExpr):
            result = self._lower_call(expr)
            if result is None:
                raise self.error(
                    f"void function {expr.name!r} used as a value", expr
                )
            return result
        raise self.error(f"unsupported expression {type(expr).__name__}", expr)

    def _lower_logical(self, expr: ast.LogicalExpr) -> Value:
        """Short-circuit ``&&`` / ``||`` with control flow.

        The 0/1 result lands in a single register written on both paths.
        """
        builder = self.builder
        result = builder.fresh_reg(U8, hint="logic")
        rhs_block = builder.new_block("sc_rhs")
        short_block = builder.new_block("sc_short")
        join_block = builder.new_block("sc_join")

        lhs = self.lower_expr(expr.lhs)
        if expr.op == "&&":
            builder.emit_branch(lhs, rhs_block, short_block)
            short_value = 0
        else:
            builder.emit_branch(lhs, short_block, rhs_block)
            short_value = 1

        builder.position_at(short_block)
        short_block.append(_move_to(result, Const(short_value, U8)))
        builder.emit_jump(join_block)

        builder.position_at(rhs_block)
        rhs = self.lower_expr(expr.rhs)
        normalized = builder.emit_binop(Opcode.NE, rhs, Const(0, U8), type_=U8)
        rhs_exit = builder.block
        assert rhs_exit is not None
        rhs_exit.append(_move_to(result, normalized))
        builder.emit_jump(join_block)

        builder.position_at(join_block)
        return result

    def _lower_call(self, expr: ast.CallExpr) -> Optional[Register]:
        sig = self.signatures.get(expr.name)
        if sig is None:
            raise self.error(f"call to undefined function {expr.name!r}", expr)
        if len(expr.args) != len(sig.params):
            raise self.error(
                f"{expr.name!r} takes {len(sig.params)} arguments, "
                f"{len(expr.args)} given",
                expr,
            )
        args: List[Value] = []
        for arg, param in zip(expr.args, sig.params):
            if param.is_array:
                if not isinstance(arg, ast.NameExpr):
                    raise self.error(
                        f"argument for array parameter {param.name!r} must be "
                        "an array name",
                        expr,
                    )
                var = self.lookup(arg.name, arg)
                if not var.is_array and not var.is_ref:
                    raise self.error(
                        f"{arg.name!r} is not an array (parameter "
                        f"{param.name!r})",
                        expr,
                    )
                # Paper §IV-A pointer rule: anything accessed through a
                # pointer is pinned to NVM.
                var.pinned_nvm = True
                args.append(VarRef(var))
            else:
                args.append(self.lower_expr(arg))
        return self.builder.emit_call(expr.name, args, sig.return_type)

    # -- statements -----------------------------------------------------------

    def lower_body(self, body: List[ast.Stmt]) -> None:
        for stmt in body:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.IncDec):
            self._lower_incdec(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.CallExpr):
                self._lower_call(stmt.expr)
            else:
                self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise self.error("break outside a loop", stmt)
            self.builder.emit_jump(self.loop_stack[-1].break_target)
            self._start_dead_block()
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise self.error("continue outside a loop", stmt)
            self.builder.emit_jump(self.loop_stack[-1].continue_target)
            self._start_dead_block()
        elif isinstance(stmt, ast.Block):
            self.push_scope()
            self.lower_body(stmt.body)
            self.pop_scope()
        elif isinstance(stmt, ast.Atomic):
            self._lower_atomic(stmt)
        else:
            raise self.error(f"unsupported statement {type(stmt).__name__}", stmt)

    _ATOMIC_ALLOWED = (ast.VarDecl, ast.Assign, ast.IncDec)

    def _check_atomic_body(self, body) -> None:
        """Atomic sections must lower to straight-line code in one block:
        no control flow, no calls, no short-circuit operators."""

        def check_expr(expr: ast.Expr) -> None:
            if isinstance(expr, (ast.LogicalExpr, ast.CallExpr)):
                raise self.error(
                    "atomic sections cannot contain calls or &&/|| "
                    "(they would introduce control flow)",
                    expr,
                )
            for field_name in ("lhs", "rhs", "operand", "index", "value"):
                child = getattr(expr, field_name, None)
                if isinstance(child, ast.Expr):
                    check_expr(child)

        for stmt in body:
            if not isinstance(stmt, self._ATOMIC_ALLOWED):
                raise self.error(
                    f"{type(stmt).__name__} not allowed in an atomic section",
                    stmt,
                )
            if isinstance(stmt, ast.VarDecl):
                if stmt.initializer is not None:
                    check_expr(stmt.initializer)
            if isinstance(stmt, ast.Assign):
                if stmt.index is not None:
                    check_expr(stmt.index)
                check_expr(stmt.value)
            if isinstance(stmt, ast.IncDec) and stmt.index is not None:
                check_expr(stmt.index)

    def _lower_atomic(self, stmt: ast.Atomic) -> None:
        """Lower an atomic section and record its instruction range so the
        placement passes never put a checkpoint inside it (paper §VI:
        "atomic sections ... in which checkpoint placement would be
        forbidden")."""
        self._check_atomic_body(stmt.body)
        block = self.builder.block
        assert block is not None
        start = len(block.instructions)
        self.push_scope()
        self.lower_body(stmt.body)
        self.pop_scope()
        end_block = self.builder.block
        assert end_block is block, "atomic body created control flow"
        end = len(block.instructions)
        if end > start:
            func = self.builder.function
            assert func is not None
            func.atomic_ranges.append((block.label, start, end))

    def _start_dead_block(self) -> None:
        """After break/continue/return, park the builder on a fresh block so
        trailing statements don't corrupt the terminated block. The dead
        block is pruned before validation."""
        self.builder.position_at(self.builder.new_block("dead"))

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        backing = self.declare(stmt.name, stmt)
        type_ = type_from_name(stmt.type_name)
        var = self.builder.local(backing, type_, count=stmt.count)
        self.scope[stmt.name] = var
        if stmt.initializer is not None:
            value = self.lower_expr(stmt.initializer)
            self.builder.emit_store(var, value)
        elif stmt.array_init is not None:
            for i, raw in enumerate(stmt.array_init):
                self.builder.emit_store(
                    var, self.builder.const(raw, type_), index=Const(i, U32)
                )

    def _lower_assign(self, stmt: ast.Assign) -> None:
        var = self.lookup(stmt.target_name, stmt)
        if var.is_const:
            raise self.error(f"assignment to const {stmt.target_name!r}", stmt)
        index = self.lower_expr(stmt.index) if stmt.index is not None else None
        if var.is_array and index is None:
            raise self.error(f"assigning to array {stmt.target_name!r}", stmt)
        if not var.is_array and stmt.index is not None:
            raise self.error(f"indexing scalar {stmt.target_name!r}", stmt)
        value = self.lower_expr(stmt.value)
        if stmt.op:
            current = self.builder.emit_load(var, index)
            value = self.builder.emit_binop(_BINOPS[stmt.op], current, value)
        self.builder.emit_store(var, value, index)

    def _lower_incdec(self, stmt: ast.IncDec) -> None:
        var = self.lookup(stmt.target_name, stmt)
        index = self.lower_expr(stmt.index) if stmt.index is not None else None
        current = self.builder.emit_load(var, index)
        op = Opcode.ADD if stmt.op == "+" else Opcode.SUB
        updated = self.builder.emit_binop(op, current, Const(1, var.type))
        self.builder.emit_store(var, updated, index)

    def _lower_if(self, stmt: ast.If) -> None:
        builder = self.builder
        then_block = builder.new_block("then")
        join_block = builder.new_block("endif")
        else_block = builder.new_block("else") if stmt.else_body else join_block

        cond = self.lower_expr(stmt.cond)
        builder.emit_branch(cond, then_block, else_block)

        builder.position_at(then_block)
        self.push_scope()
        self.lower_body(stmt.then_body)
        self.pop_scope()
        if not builder.block.is_terminated:
            builder.emit_jump(join_block)

        if stmt.else_body:
            builder.position_at(else_block)
            self.push_scope()
            self.lower_body(stmt.else_body)
            self.pop_scope()
            if not builder.block.is_terminated:
                builder.emit_jump(join_block)

        builder.position_at(join_block)

    def _lower_while(self, stmt: ast.While) -> None:
        builder = self.builder
        header = builder.new_block("while_head")
        body_block = builder.new_block("while_body")
        exit_block = builder.new_block("while_end")

        builder.emit_jump(header)
        builder.position_at(header)
        cond = self.lower_expr(stmt.cond)
        builder.emit_branch(cond, body_block, exit_block)

        if stmt.maxiter is not None:
            assert self.builder.function is not None
            self.builder.function.loop_maxiter[header.label] = stmt.maxiter

        self.loop_stack.append(_LoopContext(exit_block, header))
        builder.position_at(body_block)
        self.push_scope()
        self.lower_body(stmt.body)
        self.pop_scope()
        if not builder.block.is_terminated:
            builder.emit_jump(header)
        self.loop_stack.pop()

        builder.position_at(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        builder = self.builder
        self.push_scope()  # the for-init declaration scopes over the loop
        if stmt.init is not None:
            self.lower_stmt(stmt.init)

        header = builder.new_block("for_head")
        body_block = builder.new_block("for_body")
        step_block = builder.new_block("for_step")
        exit_block = builder.new_block("for_end")

        builder.emit_jump(header)
        builder.position_at(header)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            builder.emit_branch(cond, body_block, exit_block)
        else:
            builder.emit_jump(body_block)

        maxiter = stmt.maxiter
        if maxiter is None:
            maxiter = _infer_trip_count(stmt)
        if maxiter is not None:
            assert builder.function is not None
            builder.function.loop_maxiter[header.label] = maxiter

        self.loop_stack.append(_LoopContext(exit_block, step_block))
        builder.position_at(body_block)
        self.push_scope()
        self.lower_body(stmt.body)
        self.pop_scope()
        if not builder.block.is_terminated:
            builder.emit_jump(step_block)
        self.loop_stack.pop()

        builder.position_at(step_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        builder.emit_jump(header)

        self.pop_scope()
        builder.position_at(exit_block)

    def _lower_return(self, stmt: ast.Return) -> None:
        sig = self.signatures[self.decl.name]
        if sig.return_type is None:
            if stmt.value is not None:
                raise self.error("void function returns a value", stmt)
            self.builder.emit_ret()
        else:
            if stmt.value is None:
                raise self.error("missing return value", stmt)
            value = self.lower_expr(stmt.value)
            self.builder.emit_ret(value)
        self._start_dead_block()


def _move_to(dest: Register, src: Value):
    """A Move that writes an *existing* register (cross-block result)."""
    from repro.ir.instructions import Move

    return Move(dest, src)


def _as_const_int(expr: Optional[ast.Expr]) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if (
        isinstance(expr, ast.UnaryExpr)
        and expr.op == "-"
        and isinstance(expr.operand, ast.IntLiteral)
    ):
        return -expr.operand.value
    return None


def _infer_trip_count(stmt: ast.For) -> Optional[int]:
    """Infer an iteration bound for ``for (i = a; i <op> b; i += c)`` with
    constant ``a``, ``b``, ``c`` and a loop variable not otherwise assigned.

    Returns a conservative upper bound, or None when the shape is not
    recognized (the user must then annotate with ``@maxiter``). The body is
    scanned for assignments to the counter; any hit disables inference.
    """
    init_value: Optional[int] = None
    counter: Optional[str] = None
    if isinstance(stmt.init, ast.VarDecl) and stmt.init.initializer is not None:
        counter = stmt.init.name
        init_value = _as_const_int(stmt.init.initializer)
    elif isinstance(stmt.init, ast.Assign) and not stmt.init.op:
        if stmt.init.index is None:
            counter = stmt.init.target_name
            init_value = _as_const_int(stmt.init.value)
    if counter is None or init_value is None:
        return None

    if not isinstance(stmt.cond, ast.BinaryExpr):
        return None
    cond = stmt.cond
    if not (isinstance(cond.lhs, ast.NameExpr) and cond.lhs.name == counter):
        return None
    bound = _as_const_int(cond.rhs)
    if bound is None:
        return None

    step: Optional[int] = None
    if isinstance(stmt.step, ast.IncDec) and stmt.step.target_name == counter:
        step = 1 if stmt.step.op == "+" else -1
    elif (
        isinstance(stmt.step, ast.Assign)
        and stmt.step.target_name == counter
        and stmt.step.index is None
        and stmt.step.op in ("+", "-")
    ):
        raw = _as_const_int(stmt.step.value)
        if raw is not None and raw != 0:
            step = raw if stmt.step.op == "+" else -raw
    if step is None or step == 0:
        return None

    if _body_assigns(stmt.body, counter):
        return None

    if cond.op == "<" and step > 0:
        span = bound - init_value
    elif cond.op == "<=" and step > 0:
        span = bound - init_value + 1
    elif cond.op == ">" and step < 0:
        span = init_value - bound
    elif cond.op == ">=" and step < 0:
        span = init_value - bound + 1
    elif cond.op == "!=":
        span = abs(bound - init_value)
    else:
        return None
    if span <= 0:
        return None
    trips = (span + abs(step) - 1) // abs(step)
    return max(trips, 1)


def _body_assigns(body: List[ast.Stmt], name: str) -> bool:
    """True if any statement in ``body`` (recursively) writes ``name``."""
    for stmt in body:
        if isinstance(stmt, (ast.Assign, ast.IncDec)) and stmt.target_name == name:
            return True
        if isinstance(stmt, ast.VarDecl) and stmt.name == name:
            return True
        if isinstance(stmt, ast.If):
            if _body_assigns(stmt.then_body, name) or _body_assigns(
                stmt.else_body, name
            ):
                return True
        if isinstance(stmt, (ast.While, ast.Block)):
            if _body_assigns(stmt.body, name):
                return True
        if isinstance(stmt, ast.For):
            inner = ([stmt.init] if stmt.init else []) + (
                [stmt.step] if stmt.step else []
            )
            if _body_assigns(inner + stmt.body, name):
                return True
    return False


def _prune_dead_blocks(module: Module) -> None:
    """Remove blocks unreachable from each function's entry (created while
    parking the builder after break/continue/return)."""
    for func in module.functions.values():
        reachable = set()
        work = [func.entry.label]
        while work:
            label = work.pop()
            if label in reachable:
                continue
            reachable.add(label)
            work.extend(func.blocks[label].successor_labels())
        for label in [l for l in func.blocks if l not in reachable]:
            del func.blocks[label]
            # A @maxiter recorded for a loop that turned out to be dead
            # must go with its header, or validation would reject the
            # module for annotating a non-existent block.
            func.loop_maxiter.pop(label, None)


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower a parsed MiniC program to a validated IR module."""
    module = Module(name)
    builder = IRBuilder(module)

    for decl in program.globals:
        type_ = type_from_name(decl.type_name)
        init = decl.init
        if init is not None:
            init = [type_.wrap(v) for v in init]
        module.add_global(
            Variable(
                name=decl.name,
                type=type_,
                count=decl.count,
                is_const=decl.is_const,
                init=init,
            )
        )

    signatures: Dict[str, _FuncSig] = {}
    for decl in program.functions:
        if decl.name in signatures:
            raise SemanticError(f"duplicate function {decl.name!r}", decl.line)
        return_type = (
            type_from_name(decl.return_type) if decl.return_type else None
        )
        signatures[decl.name] = _FuncSig(tuple(decl.params), return_type)

    for decl in program.functions:
        sig = signatures[decl.name]
        params = [
            Param(
                name=p.name,
                type=type_from_name(p.type_name),
                is_ref=p.is_array,
            )
            for p in decl.params
        ]
        func = builder.start_function(decl.name, params, sig.return_type)

        lowerer = _FunctionLowerer(builder, decl, signatures, module.globals)
        # Parameter backing variables + prologue.
        for i, param in enumerate(params):
            if param.is_ref:
                var = Variable(
                    name=f"{decl.name}.{param.name}",
                    type=param.type,
                    count=2,  # placeholder element count; binds at call time
                    is_ref=True,
                    pinned_nvm=True,
                )
                func.add_variable(var, bare_name=param.name)
            else:
                var = builder.local(param.name, param.type)
                builder.emit_store(var, func.arg_registers()[i])
            lowerer.scope[param.name] = var

        lowerer.lower_body(decl.body)
        current = builder.block
        assert current is not None
        if not current.is_terminated:
            if sig.return_type is None:
                builder.emit_ret()
            else:
                builder.emit_ret(Const(0, sig.return_type))

    _prune_dead_blocks(module)
    return validate_module(module)


def compile_source(source: str, name: str = "module") -> Module:
    """Parse and lower MiniC source text to a validated IR module."""
    return lower_program(parse(source), name)
