"""The metrics registry: counters, gauges, exact histograms, the
order-independent merge, the process-global handle discipline, and the
Prometheus / table renderers.

The registry's contract is what makes the cross-worker rollup sound:
every merge is commutative and associative, snapshots are name-sorted,
and enabling metrics never changes an evaluation result (bit-identity is
pinned at the interpreter level here and end-to-end in
``tests/test_run_all_metrics.py``).
"""

import dataclasses

import pytest

from repro import telemetry
from repro.telemetry import metrics
from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    MetricsError,
    MetricsRegistry,
    merge_record,
    validate_metric_record,
)
from repro.telemetry.prom import prom_name, render, render_table


@pytest.fixture(autouse=True)
def _no_leak():
    yield
    assert metrics.get() is None, "a test leaked the global registry"
    metrics.disable()


# -- instruments --------------------------------------------------------------


def test_counter_accumulates_and_snapshots():
    reg = MetricsRegistry()
    reg.counter("a.b").add(3)
    reg.counter("a.b").add()
    [rec] = reg.snapshot()
    assert rec == {"kind": "counter", "name": "a.b", "value": 4}


def test_gauge_set_is_last_value_wins_in_process():
    reg = MetricsRegistry()
    g = reg.gauge("vm.peak")
    g.set(10)
    g.set(4)
    [rec] = reg.snapshot()
    assert rec["value"] == 4.0 and rec["agg"] == "max"


def test_gauge_rejects_unknown_aggregation():
    with pytest.raises(MetricsError, match="unknown aggregation"):
        MetricsRegistry().gauge("g", agg="median")


def test_histogram_exact_bucketing():
    reg = MetricsRegistry()
    h = reg.histogram("win")
    for value in (0.5, 3.0, 100.0, 2.0 ** 30):
        h.record(value)
    rec = h.to_json()
    assert rec["count"] == 4
    assert rec["min"] == 0.5 and rec["max"] == 2.0 ** 30
    assert len(rec["buckets"]) == len(DEFAULT_BOUNDS) + 1
    # 0.5 <= 1 -> 0; 3.0 in (2,4] -> 2; 100 in (64,128] -> 7; 2**30
    # exceeds the last bound -> overflow bucket.
    assert rec["buckets"][0] == 1
    assert rec["buckets"][2] == 1
    assert rec["buckets"][7] == 1
    assert rec["buckets"][-1] == 1
    assert sum(rec["buckets"]) == rec["count"]


def test_histogram_rejects_bad_bounds():
    with pytest.raises(MetricsError, match="strictly increasing"):
        MetricsRegistry().histogram("h", bounds=(1.0, 1.0, 2.0))
    with pytest.raises(MetricsError, match="strictly increasing"):
        MetricsRegistry().histogram("h", bounds=())


def test_snapshot_is_name_sorted_by_kind():
    reg = MetricsRegistry()
    reg.histogram("z")
    reg.gauge("m")
    reg.counter("b")
    reg.counter("a")
    names = [r["name"] for r in reg.snapshot()]
    assert names == ["a", "b", "m", "z"]  # counters, gauges, histograms


# -- merge --------------------------------------------------------------------


def _registry_with(counter=0, gauge=None, hist_values=()):
    reg = MetricsRegistry()
    if counter:
        reg.counter("c").add(counter)
    if gauge is not None:
        reg.gauge("g").set(gauge)
    for value in hist_values:
        reg.histogram("h").record(value)
    return reg


def test_merge_is_order_independent():
    parts = [
        _registry_with(counter=2, gauge=5.0, hist_values=(1.0,)).snapshot(),
        _registry_with(counter=3, gauge=9.0, hist_values=(3.0,)).snapshot(),
        _registry_with(counter=7, gauge=1.0, hist_values=(100.0,)).snapshot(),
    ]
    forward = MetricsRegistry()
    for part in parts:
        forward.merge_records(part)
    backward = MetricsRegistry()
    for part in reversed(parts):
        backward.merge_records(part)
    assert forward.snapshot() == backward.snapshot()
    assert forward.counter("c").value == 12
    assert forward.gauge("g").value == 9.0  # max policy
    assert forward.histogram("h").count == 3


def test_merge_gauge_policies():
    for agg, expected in (("max", 9.0), ("min", 2.0), ("sum", 11.0)):
        a = MetricsRegistry()
        a.gauge("g", agg=agg).set(2.0)
        b = MetricsRegistry()
        b.gauge("g", agg=agg).set(9.0)
        a.merge_records(b.snapshot())
        assert a.gauge("g", agg=agg).value == expected, agg


def test_merge_rejects_conflicting_gauge_aggregations():
    a = MetricsRegistry()
    a.gauge("g", agg="max").set(1.0)
    b = MetricsRegistry()
    b.gauge("g", agg="sum").set(1.0)
    with pytest.raises(MetricsError, match="conflicting aggregations"):
        a.merge_records(b.snapshot())


def test_merge_rejects_incompatible_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("h", bounds=(1.0, 2.0)).record(1.0)
    b = MetricsRegistry()
    b.histogram("h", bounds=(1.0, 4.0)).record(1.0)
    with pytest.raises(MetricsError, match="incompatible bucket bounds"):
        a.merge_records(b.snapshot())


def test_merge_folds_histogram_min_max():
    a = MetricsRegistry()
    a.histogram("h").record(5.0)
    b = MetricsRegistry()
    b.histogram("h").record(0.25)
    b.histogram("h").record(900.0)
    a.merge_records(b.snapshot())
    h = a.histogram("h")
    assert h.count == 3 and h.vmin == 0.25 and h.vmax == 900.0


@pytest.mark.parametrize("record", [
    "not-a-dict",
    {"kind": "mystery", "name": "x"},
    {"kind": "counter", "name": ""},
    {"kind": "counter", "name": "c"},  # no value
    {"kind": "counter", "name": "c", "value": True},  # bool is not a count
    {"kind": "gauge", "name": "g", "value": 1.0, "agg": "median"},
    {"kind": "histogram", "name": "h", "count": 1, "total": 1.0,
     "bounds": [1.0]},  # no buckets
    {"kind": "histogram", "name": "h", "count": 1, "total": 1.0,
     "bounds": [1.0], "buckets": [1]},  # must be len(bounds)+1
])
def test_validator_rejects_malformed_records(record):
    with pytest.raises(MetricsError):
        validate_metric_record(record)
    with pytest.raises(MetricsError):
        merge_record(MetricsRegistry(), record)


# -- the process-global handle ------------------------------------------------


def test_module_count_is_a_noop_when_disabled():
    assert metrics.get() is None
    metrics.count("orphan")  # must not raise, must not create anything
    with metrics.enabled() as mm:
        metrics.count("live", 2)
        assert mm.counter("live").value == 2
    assert metrics.get() is None


def test_tracing_implies_metrics_shared_registry():
    with telemetry.enabled() as tm:
        assert metrics.get() is tm.metrics
        metrics.count("via.module")
        tm.counter("via.handle").add(1)
        snapshot = {m["name"] for m in tm.metrics_snapshot()}
    assert {"via.module", "via.handle"} <= snapshot
    assert metrics.get() is None, "telemetry.disable must uninstall"


def test_tracer_disable_does_not_clobber_a_newer_registry():
    tm = telemetry.enable()
    fresh = metrics.enable()  # replaces the tracer's registry
    telemetry.disable()
    assert metrics.get() is fresh
    metrics.disable()


# -- bit-identity: metrics never change results -------------------------------


def test_metrics_do_not_change_interpreter_results_or_loop():
    from repro.emulator.interpreter import run_continuous
    from repro.energy import msp430fr5969_platform
    from repro.programs import get_benchmark

    bench = get_benchmark("crc")
    model = msp430fr5969_platform().model
    plain = run_continuous(
        bench.module, model, inputs=bench.default_inputs()
    )
    with metrics.enabled() as mm:
        metered = run_continuous(
            bench.module, model, inputs=bench.default_inputs()
        )
        counters = {
            r["name"]: r["value"]
            for r in mm.snapshot() if r["kind"] == "counter"
        }
    assert dataclasses.asdict(plain) == dataclasses.asdict(metered)
    # The registry must not disqualify the compiled hot loop.
    assert counters.get("interp.loop.compiled", 0) >= 1
    assert counters.get("interp.runs") == 1


# -- exposition ---------------------------------------------------------------


def test_prom_name_sanitizes():
    assert prom_name("cache.hits") == "repro_cache_hits"
    assert prom_name("staticcheck.family_us.war") == (
        "repro_staticcheck_family_us_war"
    )
    assert prom_name("weird-name!x") == "repro_weird_name_x"


def test_prometheus_exposition_shapes():
    reg = MetricsRegistry()
    reg.counter("cache.hits").add(3)
    reg.gauge("engine.jobs").set(4)
    h = reg.histogram("win", bounds=(1.0, 2.0))
    h.record(0.5)
    h.record(5.0)
    text = render(reg)
    assert "# TYPE repro_cache_hits_total counter" in text
    assert "repro_cache_hits_total 3" in text
    assert "repro_engine_jobs 4" in text
    # Cumulative buckets with +Inf, plus _sum/_count.
    assert 'repro_win_bucket{le="1"} 1' in text
    assert 'repro_win_bucket{le="2"} 1' in text
    assert 'repro_win_bucket{le="+Inf"} 2' in text
    assert "repro_win_sum 5.5" in text
    assert "repro_win_count 2" in text


def test_table_renders_empty_registry():
    assert "no metrics recorded" in render_table(MetricsRegistry())
