"""Reproductions of every table and figure in the paper's evaluation (§IV).

One module per artifact:

- :mod:`repro.experiments.table1_vm_feasibility` — Table I
- :mod:`repro.experiments.table2_exec_time` — Table II
- :mod:`repro.experiments.table3_forward_progress` — Table III
- :mod:`repro.experiments.figure6_energy_breakdown` — Fig. 6 (+ the
  headline "51 % average energy reduction")
- :mod:`repro.experiments.figure7_allocation_quality` — Fig. 7
- :mod:`repro.experiments.figure8_capacitor_size` — Fig. 8
- :mod:`repro.experiments.analysis_cost` — §III-C complexity measurements
- :mod:`repro.experiments.ablations` — design-choice ablations (extension)

Each module exposes ``run(...)`` returning structured results and a
``main()`` that prints the paper-style table. ``python -m
repro.experiments.run_all`` regenerates everything (see EXPERIMENTS.md).
"""

from repro.experiments.common import (
    EvaluationContext,
    TBPF_VALUES,
    eb_for_tbpf,
)

__all__ = ["EvaluationContext", "TBPF_VALUES", "eb_for_tbpf"]
