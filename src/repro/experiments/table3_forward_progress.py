"""Table III — ability to enforce forward progress (§IV-C).

Every technique runs every benchmark under periodic power failures with
TBPF in {1k, 10k, 100k} cycles (EB set to the average energy per interval).
A check mark means the benchmark terminated (with correct outputs).

Expected shape (paper Table III):

- ROCKCLIMB and SCHEMATIC terminate everywhere (their placement adapts to
  the budget and they never roll back);
- MEMENTOS fails most benchmarks at small TBPF (and the over-2KB ones
  always);
- RATCHET and ALFRED fail some benchmarks at TBPF = 1k (their checkpoint
  placement ignores the platform's energy characteristics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import (
    EvaluationContext,
    TBPF_VALUES,
    TECHNIQUE_ORDER,
    check,
)


@dataclass
class Table3Result:
    #: technique -> tbpf -> benchmark -> finished (and correct)
    cells: Dict[str, Dict[int, Dict[str, bool]]]
    benchmarks: List[str]

    def row(self, technique: str, tbpf: int) -> List[bool]:
        return [self.cells[technique][tbpf][b] for b in self.benchmarks]

    def render(self) -> str:
        lines = [
            "Table III: ability to enforce forward progress",
            "benchmarks: " + ", ".join(self.benchmarks),
            f"{'technique':<12}"
            + "".join(f"{f'TBPF={t}':>14}" for t in TBPF_VALUES),
        ]
        for technique in self.cells:
            row = f"{technique:<12}"
            for tbpf in TBPF_VALUES:
                marks = "".join(
                    check(self.cells[technique][tbpf][b])
                    for b in self.benchmarks
                )
                row += f"{marks:>14}"
            lines.append(row)
        return "\n".join(lines)


def run(
    ctx: Optional[EvaluationContext] = None,
    tbpf_values=TBPF_VALUES,
) -> Table3Result:
    ctx = ctx or EvaluationContext()
    cells: Dict[str, Dict[int, Dict[str, bool]]] = {}
    for technique in TECHNIQUE_ORDER:
        cells[technique] = {}
        for tbpf in tbpf_values:
            cells[technique][tbpf] = {}
            for name in ctx.benchmark_names:
                outcome = ctx.run_tbpf(technique, name, tbpf)
                cells[technique][tbpf][name] = outcome.succeeded
    return Table3Result(cells=cells, benchmarks=list(ctx.benchmark_names))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
