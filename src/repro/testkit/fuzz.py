"""Stochastic power-schedule fuzzing (trace-driven RF harvesting model).

Each fuzz case runs one compiled program under a seeded ``STOCHASTIC``
power manager — geometric inter-failure times whose mean is swept across
a range of charge-cycle lengths — and applies the crash-consistency
oracle. Starvation is legitimate under arbitrary harvesting (a window
smaller than a restore's cost can recur forever), so only *anomalies*
(completed with wrong NVM state) are violations; they are replayed as
explicit schedules and shrunk. All-NVM wait-mode runtimes are exempt —
stochastic kills strike them mid-segment, outside their recharge contract
(``anomaly-outside-contract``, see :mod:`repro.testkit.corpus`).

This complements the exhaustive sweep: the sweep nails every single- and
double-failure point, the fuzzer explores long, irregular multi-failure
schedules that compound rollback upon rollback.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.telemetry import metrics
from repro.baselines import CompiledTechnique
from repro.core.verify import run_against_reference
from repro.emulator import PowerManager, run_continuous
from repro.energy import msp430fr5969_platform
from repro.testkit.corpus import ALL_NVM_TECHNIQUES, compile_for, load_program
from repro.testkit.oracle import (
    OUTCOME_ANOMALY,
    OUTCOME_CONTRACT,
    OracleVerdict,
    check_schedule,
    classify,
)
from repro.testkit.shrink import shrink_schedule

DEFAULT_FUZZ_TECHNIQUES = (
    "ratchet", "mementos", "rockclimb", "alfred", "schematic", "allnvm",
)
DEFAULT_FUZZ_PROGRAMS = ("sumloop", "warloop", "branchy", "calls")


@dataclass
class FuzzResult:
    programs: List[str]
    techniques: List[str]
    seeds: int
    mean_cycles: List[float]
    cases: int = 0
    runs: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    violations: List[OracleVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"fuzz: {len(self.programs)} programs x "
            f"{len(self.techniques)} techniques x {self.seeds} seeds x "
            f"means {self.mean_cycles}",
            f"  {self.cases} cases, {self.runs} oracle runs",
        ]
        for outcome, count in sorted(self.outcomes.items()):
            lines.append(f"  {outcome}: {count}")
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    {v.describe()}" for v in self.violations)
        else:
            lines.append("  zero oracle violations")
        return "\n".join(lines)


def run_fuzz(
    programs: Sequence[str] = DEFAULT_FUZZ_PROGRAMS,
    techniques: Sequence[str] = DEFAULT_FUZZ_TECHNIQUES,
    seeds: int = 10,
    mean_cycles: Sequence[float] = (500.0, 2_000.0, 10_000.0),
    eb: float = 3000.0,
    max_instructions: int = 50_000_000,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Fuzz the grid of programs x techniques x seeds x mean windows."""
    result = FuzzResult(
        programs=list(programs),
        techniques=list(techniques),
        seeds=seeds,
        mean_cycles=list(mean_cycles),
    )
    plat = msp430fr5969_platform(eb=eb)
    for program in programs:
        bench = load_program(program)
        inputs = bench.default_inputs()
        reference = run_continuous(
            bench.module, plat.model, inputs=inputs,
            max_instructions=max_instructions,
        )
        for technique in techniques:
            compiled = compile_for(
                technique, bench.module, plat,
                input_generator=bench.input_generator(),
            )
            if not compiled.feasible:
                result.outcomes["infeasible"] = (
                    result.outcomes.get("infeasible", 0) + 1
                )
                continue
            tm = telemetry.get()
            if tm is not None:
                from repro.experiments.common import emit_segment_bounds

                with tm.scope(benchmark=program, technique=technique,
                              eb=round(eb, 3)):
                    emit_segment_bounds(tm, compiled, plat.model, eb)
            for mean in mean_cycles:
                for seed in range(seeds):
                    if progress is not None:
                        progress(
                            f"{program}/{technique} mean={mean:g} seed={seed}"
                        )
                    power = PowerManager.stochastic(
                        mean_cycles=mean, seed=seed, eb=eb
                    )
                    tm = telemetry.get()
                    scope = (
                        tm.scope(benchmark=program, technique=technique,
                                 eb=round(eb, 3), mean=mean, seed=seed)
                        if tm is not None
                        else nullcontext()
                    )
                    with scope:
                        run = run_against_reference(
                            compiled.module, bench.module, plat.model,
                            compiled.policy, power, vm_size=plat.vm_size,
                            inputs=inputs, max_instructions=max_instructions,
                            reference_report=reference,
                        )
                    result.cases += 1
                    result.runs += 1
                    metrics.count("testkit.fuzz.cases")
                    outcome = classify(run, guarantee=False)
                    if (
                        outcome == OUTCOME_ANOMALY
                        and technique in ALL_NVM_TECHNIQUES
                    ):
                        # Mid-segment stochastic kills are outside the
                        # all-NVM wait-mode recharge contract (see
                        # testkit.corpus.ALL_NVM_TECHNIQUES).
                        outcome = OUTCOME_CONTRACT
                    result.outcomes[outcome] = (
                        result.outcomes.get(outcome, 0) + 1
                    )
                    metrics.count(f"testkit.fuzz.outcome.{outcome}")
                    if outcome == OUTCOME_ANOMALY:
                        verdict = OracleVerdict(
                            program=program, technique=technique,
                            power=f"stochastic mean={mean:g} seed={seed}",
                            outcome=outcome,
                            schedule=tuple(run.failure_offsets),
                            power_failures=run.power_failures,
                        )
                        if shrink:
                            verdict.shrunk = _shrink(
                                compiled, reference, plat, inputs,
                                max_instructions, verdict, result,
                            )
                        result.violations.append(verdict)
    return result


def _shrink(
    compiled: CompiledTechnique, reference, plat, inputs,
    max_instructions, verdict: OracleVerdict, result: FuzzResult,
) -> Tuple[int, ...]:
    def still_fails(candidate: Tuple[int, ...]) -> bool:
        run = check_schedule(
            compiled, reference, plat.model, candidate,
            plat.vm_size, inputs, max_instructions,
        )
        return classify(run, guarantee=True) == verdict.outcome

    result.runs += 1
    if not still_fails(verdict.schedule):
        return ()
    shrunk, runs = shrink_schedule(verdict.schedule, still_fails)
    result.runs += runs
    return shrunk
