"""Platform description: memory sizes and the capacitor energy budget."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import EnergyModelError
from repro.energy.model import EnergyModel, msp430fr5969_model


@dataclass(frozen=True)
class Platform:
    """An intermittent-computing platform (paper Fig. 2).

    Attributes:
        model: the per-instruction energy model.
        vm_size: usable volatile memory in bytes (``SVM``). The
            MSP430FR5969 has 2 KB of SRAM.
        nvm_size: non-volatile memory in bytes (64 KB FRAM); assumed large
            enough for all code and data (§II-B), checked when programs load.
        eb: usable capacitor energy budget in nJ (``EB``). Every activity
            between two checkpoints must fit in ``eb``.
    """

    model: EnergyModel
    vm_size: int = 2048
    nvm_size: int = 65536
    eb: float = 10_000.0

    def __post_init__(self) -> None:
        if self.vm_size < 0 or self.nvm_size <= 0:
            raise EnergyModelError("memory sizes must be positive")
        if self.eb <= 0:
            raise EnergyModelError("energy budget EB must be positive")
        min_budget = self.model.save_energy(0) + self.model.restore_energy(0)
        if self.eb <= min_budget:
            raise EnergyModelError(
                f"EB={self.eb} nJ cannot even fund one empty save+restore "
                f"({min_budget} nJ); no checkpointing scheme can make progress"
            )

    def with_eb(self, eb: float) -> "Platform":
        """A copy of this platform with a different capacitor budget."""
        return replace(self, eb=eb)

    def with_vm_size(self, vm_size: int) -> "Platform":
        return replace(self, vm_size=vm_size)


def msp430fr5969_platform(eb: float = 10_000.0) -> Platform:
    """The paper's evaluation platform: 2 KB VM, 64 KB NVM, 16 MHz."""
    return Platform(model=msp430fr5969_model(), eb=eb)
