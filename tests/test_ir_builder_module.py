"""Unit tests for the IRBuilder, BasicBlock, Function and Module."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Const,
    I32,
    IRBuilder,
    Module,
    Opcode,
    Param,
    U8,
    Variable,
)


def build_simple():
    module = Module("m")
    builder = IRBuilder(module)
    func = builder.start_function("main")
    x = builder.local("x", I32)
    builder.emit_store(x, builder.const(4, I32))
    loaded = builder.emit_load(x)
    doubled = builder.emit_binop(Opcode.MUL, loaded, Const(2, I32))
    builder.emit_store(x, doubled)
    builder.emit_ret()
    return module, builder, func


class TestBuilder:
    def test_entry_block_created(self):
        module, _, func = build_simple()
        assert func.entry.label == "entry"
        assert func.entry.is_terminated

    def test_fresh_registers_unique(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        regs = {builder.fresh_reg(I32).name for _ in range(10)}
        assert len(regs) == 10

    def test_cannot_append_after_terminator(self):
        module, builder, func = build_simple()
        with pytest.raises(IRError):
            builder.emit_ret()

    def test_load_array_requires_index(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        arr = builder.local("arr", I32, count=4)
        with pytest.raises(IRError):
            builder.emit_load(arr)

    def test_store_scalar_rejects_index(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        x = builder.local("x", I32)
        with pytest.raises(IRError):
            builder.emit_store(x, Const(1, I32), index=Const(0, I32))

    def test_store_to_const_rejected(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        table = builder.local("t", U8, count=2, is_const=True, init=[1, 2])
        with pytest.raises(IRError):
            builder.emit_store(table, Const(1, U8), index=Const(0, I32))

    def test_comparison_result_is_u8(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        r = builder.emit_binop(Opcode.LT, Const(1, I32), Const(2, I32))
        assert r.type == U8

    def test_local_names_are_mangled(self):
        module, _, func = build_simple()
        assert func.variables["x"].name == "main.x"


class TestBasicBlock:
    def test_successor_labels_branch(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        then = builder.new_block("then")
        done = builder.new_block("done")
        cond = builder.emit_binop(Opcode.EQ, Const(1, I32), Const(1, I32))
        entry = builder.block
        builder.emit_branch(cond, then, done)
        assert set(entry.successor_labels()) == {then.label, done.label}
        builder.position_at(then)
        builder.emit_jump(done)
        assert then.successor_labels() == [done.label]

    def test_branch_same_target_deduplicated(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        target = builder.new_block("t")
        cond = builder.emit_binop(Opcode.EQ, Const(1, I32), Const(1, I32))
        entry = builder.block
        builder.emit_branch(cond, target, target)
        assert entry.successor_labels() == [target.label]


class TestFunction:
    def test_duplicate_block_label_rejected(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("f")
        with pytest.raises(IRError):
            func.add_block("entry")

    def test_duplicate_variable_rejected(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f")
        builder.local("x", I32)
        with pytest.raises(IRError):
            builder.local("x", I32)

    def test_arg_registers_align_with_params(self):
        func_params = [
            Param("a", I32),
            Param("buf", I32, is_ref=True),
            Param("b", U8),
        ]
        from repro.ir import Function

        func = Function("f", func_params)
        regs = func.arg_registers()
        assert regs[0].name == "arg0" and regs[0].type == I32
        assert regs[1] is None
        assert regs[2].name == "arg2" and regs[2].type == U8

    def test_called_functions_deduplicated(self):
        module = Module("m")
        builder = IRBuilder(module)
        callee = builder.start_function("callee", return_type=I32)
        builder.emit_ret(Const(0, I32))
        caller = builder.start_function("caller")
        builder.emit_call("callee", [], I32)
        builder.emit_call("callee", [], I32)
        builder.emit_ret()
        assert caller.called_functions() == ["callee"]


class TestModule:
    def test_duplicate_global_rejected(self):
        module = Module("m")
        module.add_global(Variable("g", I32))
        with pytest.raises(IRError):
            module.add_global(Variable("g", I32))

    def test_data_footprint_counts_globals_and_locals(self):
        module, _, func = build_simple()
        module.add_global(Variable("g", I32, count=10))
        # main.x (4) + g (40)
        assert module.data_footprint_bytes() == 44

    def test_footprint_excludes_ref_params(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("f", [Param("buf", I32, is_ref=True)])
        func.add_variable(
            Variable("f.buf", I32, count=2, is_ref=True), bare_name="buf"
        )
        builder.emit_ret()
        assert module.data_footprint_bytes() == 0

    def test_find_variable(self):
        module, _, _ = build_simple()
        assert module.find_variable("main.x").name == "main.x"
        with pytest.raises(IRError):
            module.find_variable("nope")

    def test_clone_is_deep(self):
        module, _, _ = build_simple()
        clone = module.clone()
        clone.functions["main"].blocks["entry"].instructions.pop()
        original = module.functions["main"].blocks["entry"]
        assert original.is_terminated
