"""Micro-benchmarks of the substrate: interpreter throughput, SCHEMATIC
compile time, and the emulation of one full technique run."""

from conftest import once

from repro.baselines import compile_schematic
from repro.emulator import PowerManager, run_continuous, run_intermittent
from repro.energy import msp430fr5969_model
from repro.programs import get_benchmark

MODEL = msp430fr5969_model()


def test_interpreter_throughput_crc(benchmark, ctx):
    bench = get_benchmark("crc")
    module = bench.module
    inputs = bench.default_inputs()

    def run():
        return run_continuous(module, MODEL, inputs=inputs)

    report = benchmark(run)
    assert report.completed


def test_schematic_compile_crc(benchmark, ctx):
    bench = get_benchmark("crc")
    module = bench.module
    platform = ctx.platform_proto.with_eb(5000.0)
    profile = ctx.profile("crc")

    def compile_once():
        return compile_schematic(module, platform, profile=profile)

    compiled = benchmark(compile_once)
    assert compiled.feasible


def test_intermittent_run_crc(benchmark, ctx):
    eb = ctx.eb_for_tbpf("crc", 10_000)
    compiled = ctx.compile("schematic", "crc", eb)
    bench = get_benchmark("crc")
    inputs = bench.default_inputs()
    platform = ctx.platform_proto.with_eb(eb)

    def run():
        return run_intermittent(
            compiled.module,
            platform.model,
            compiled.policy,
            PowerManager.energy_budget(eb),
            vm_size=platform.vm_size,
            inputs=inputs,
        )

    report = benchmark(run)
    assert report.completed
