"""Regression tests for the loop-safety rules the placement fuzzer
uncovered: checkpoint-free hot paths, latch-specific save sets, and
boundary-save window margins."""

import pytest

from repro.core import Schematic, SchematicConfig
from repro.core.verify import verify_forward_progress
from repro.energy import msp430fr5969_model
from repro.frontend import compile_source
from repro.ir import Checkpoint, CondCheckpoint
from tests.helpers import platform

MODEL = msp430fr5969_model()


def checkpoints_of(module):
    return [
        inst
        for func in module.functions.values()
        for block in func.blocks.values()
        for inst in block
        if isinstance(inst, (Checkpoint, CondCheckpoint))
    ]


class TestCheckpointFreeHotPath:
    SOURCE = """
    u32 out; u32 mode;
    u16 heavy[40];
    void main() {
        u32 acc = 0;
        for (i32 r = 0; r < 50; r++) {
            if (mode == 12345) {
                /* cold arm: expensive enough to need internal splitting */
                for (i32 i = 0; i < 120; i++) {
                    heavy[i % 40] = (u16) acc;
                    acc += (u32) heavy[(i + 3) % 40] * 7;
                }
            } else {
                acc = acc * 3 + (u32) r;  /* hot checkpoint-free arm */
            }
        }
        out = acc;
    }
    """

    def _compile(self, eb=800.0):
        module = compile_source(self.SOURCE)
        plat = platform(eb=eb)
        result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=lambda run: {"mode": [0]}
        )
        return module, plat, result

    def test_hot_path_iterations_are_guarded(self):
        """Even though the cold arm contains internal checkpoints, the hot
        arm is checkpoint-free — iterating it must hit a back-edge guard
        before the budget can overrun."""
        module, plat, result = self._compile()
        for mode in (0, 12345):
            verdict = verify_forward_progress(
                result.module, module, MODEL, plat.eb, plat.vm_size,
                inputs={"mode": [mode]},
            )
            assert verdict.ok, (mode, verdict)

    def test_backedge_guard_present(self):
        module, plat, result = self._compile()
        conds = [
            c for c in checkpoints_of(result.module)
            if isinstance(c, CondCheckpoint)
        ]
        assert conds  # the outer loop needs its conditional guard

    def test_guard_period_scales_with_budget(self):
        periods = {}
        for eb in (800.0, 1600.0):
            module, plat, result = self._compile(eb=eb)
            outer = [
                c.every
                for c in checkpoints_of(result.module)
                if isinstance(c, CondCheckpoint)
            ]
            periods[eb] = max(outer)
        assert periods[1600.0] > periods[800.0]


class TestLatchSpecificSaves:
    SOURCE = """
    u32 out;
    void main() {
        u32 acc = 7;
        @maxiter(400)
        while (acc != 1) {
            if ((acc & 1) != 0) { acc = acc * 3 + 1; } else { acc /= 2; }
            out += 1;
        }
    }
    """

    def test_while_loop_counter_saved_at_backedge(self):
        """A while loop exits through its *header*: the canonical region
        exit is clean there, but the back-edge checkpoint still must save
        the variables mutated each iteration."""
        module = compile_source(self.SOURCE)
        plat = platform(eb=400.0)
        result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=lambda run: {}
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size,
            max_instructions=3_000_000,
        )
        assert verdict.ok, verdict

    def test_collatz_sequence_correct_under_tiny_budget(self):
        module = compile_source(self.SOURCE)
        from repro.emulator import run_continuous

        ref = run_continuous(module, MODEL)
        plat = platform(eb=300.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: {}
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size,
            max_instructions=3_000_000,
        )
        assert verdict.ok
        # Collatz(7) takes 16 steps.
        assert ref.outputs["out"] == [16]


class TestWindowMargins:
    def test_no_liveness_trim_still_compiles_crc(self):
        """The ablated (trim-off) variant stresses boundary-save margins:
        the numit window must reserve the worst exit save, or placements
        become infeasible by fractions of a nanojoule."""
        from repro.experiments.common import EvaluationContext
        from repro.experiments import ablations
        from repro.baselines.common import compile_schematic

        ctx = EvaluationContext(benchmarks=["crc"])
        bench = ctx.benchmark("crc")
        eb = ctx.eb_for_tbpf("crc", 10_000)
        compiled = compile_schematic(
            bench.module,
            ctx.platform_proto.with_eb(eb),
            profile=ctx.profile("crc"),
            config=ablations.VARIANTS["no-liveness-trim"],
        )
        assert compiled.feasible
        verdict = verify_forward_progress(
            compiled.module, bench.module, MODEL, eb,
            ctx.platform_proto.vm_size, inputs=bench.default_inputs(),
        )
        assert verdict.ok
