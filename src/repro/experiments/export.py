"""Export experiment results as machine-readable artifacts (JSON + CSV).

``python -m repro.experiments.export [outdir] [--quick]`` regenerates every
table/figure and writes, per artifact, a ``<name>.json`` (the structured
result) and a flat ``<name>.csv`` for spreadsheet/plotting pipelines, plus
a ``summary.json`` with the headline numbers.
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import (
    ablations,
    figure6_energy_breakdown,
    figure7_allocation_quality,
    figure8_capacitor_size,
    table1_vm_feasibility,
    table2_exec_time,
    table3_forward_progress,
)
from repro.experiments.common import (
    EvaluationContext,
    TBPF_VALUES,
    TECHNIQUE_ORDER,
)


def _write_csv(path: Path, header: List[str], rows: List[List[object]]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def _write_json(path: Path, payload) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def export_table1(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = table1_vm_feasibility.run(ctx)
    payload = {
        "cells": result.cells,
        "footprints": result.footprints,
    }
    _write_json(outdir / "table1_vm_feasibility.json", payload)
    rows = [
        [technique, benchmark, int(ok)]
        for technique, cells in result.cells.items()
        for benchmark, ok in cells.items()
    ]
    _write_csv(
        outdir / "table1_vm_feasibility.csv",
        ["technique", "benchmark", "feasible"],
        rows,
    )
    return payload


def export_table2(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = table2_exec_time.run(ctx)
    payload = {
        row.benchmark: {
            "cycles": row.cycles,
            "paper_cycles": row.paper_cycles,
            "failures": {str(t): n for t, n in row.failures.items()},
        }
        for row in result.rows
    }
    _write_json(outdir / "table2_exec_time.json", payload)
    rows = [
        [row.benchmark, row.cycles, row.paper_cycles]
        + [row.failures[t] for t in TBPF_VALUES]
        for row in result.rows
    ]
    _write_csv(
        outdir / "table2_exec_time.csv",
        ["benchmark", "cycles", "paper_cycles"]
        + [f"failures_tbpf_{t}" for t in TBPF_VALUES],
        rows,
    )
    return payload


def export_table3(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = table3_forward_progress.run(ctx)
    payload = {
        technique: {
            str(tbpf): cells for tbpf, cells in by_tbpf.items()
        }
        for technique, by_tbpf in result.cells.items()
    }
    _write_json(outdir / "table3_forward_progress.json", payload)
    rows = [
        [technique, tbpf, benchmark, int(ok)]
        for technique, by_tbpf in result.cells.items()
        for tbpf, cells in by_tbpf.items()
        for benchmark, ok in cells.items()
    ]
    _write_csv(
        outdir / "table3_forward_progress.csv",
        ["technique", "tbpf", "benchmark", "finished"],
        rows,
    )
    return payload


def export_figure6(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = figure6_energy_breakdown.run(ctx)
    rows = []
    payload: Dict = {"tbpf": result.tbpf, "cells": {}, "reductions": {}}
    for technique, cells in result.cells.items():
        payload["cells"][technique] = {}
        for benchmark, cell in cells.items():
            entry = {"completed": cell.completed}
            if cell.completed and cell.energy is not None:
                entry.update(cell.energy.as_dict())
                rows.append(
                    [
                        technique,
                        benchmark,
                        cell.energy.total,
                        cell.energy.computation,
                        cell.energy.save,
                        cell.energy.restore,
                        cell.energy.reexecution,
                    ]
                )
            payload["cells"][technique][benchmark] = entry
    for baseline in TECHNIQUE_ORDER:
        if baseline != "schematic":
            payload["reductions"][baseline] = result.reduction_vs(baseline)
    payload["average_reduction"] = result.average_reduction()
    _write_json(outdir / "figure6_energy_breakdown.json", payload)
    _write_csv(
        outdir / "figure6_energy_breakdown.csv",
        ["technique", "benchmark", "total_nj", "computation_nj", "save_nj",
         "restore_nj", "reexecution_nj"],
        rows,
    )
    return payload


def export_figure7(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = figure7_allocation_quality.run(ctx)
    rows = []
    for benchmark, variants in result.cells.items():
        for variant, cell in variants.items():
            rows.append(
                [
                    benchmark, variant, int(cell.completed),
                    cell.computation, cell.cpu, cell.vm_access,
                    cell.nvm_access, cell.save, cell.restore,
                    cell.vm_accesses, cell.nvm_accesses,
                ]
            )
    payload = {
        "tbpf": result.tbpf,
        "computation_reduction": result.computation_reduction(),
        "vm_access_share": result.vm_access_share(),
        "vm_energy_share": result.vm_energy_share(),
    }
    _write_json(outdir / "figure7_allocation_quality.json", payload)
    _write_csv(
        outdir / "figure7_allocation_quality.csv",
        ["benchmark", "variant", "completed", "computation_nj", "cpu_nj",
         "vm_access_nj", "nvm_access_nj", "save_nj", "restore_nj",
         "vm_accesses", "nvm_accesses"],
        rows,
    )
    return payload


def export_figure8(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = figure8_capacitor_size.run(ctx)
    rows = []
    payload: Dict = {"benchmark": result.benchmark, "cells": {}}
    for technique, by_tbpf in result.cells.items():
        payload["cells"][technique] = {}
        for tbpf, cell in by_tbpf.items():
            payload["cells"][technique][str(tbpf)] = (
                cell.as_dict() if cell is not None else None
            )
            if cell is not None:
                rows.append(
                    [technique, tbpf, cell.total, cell.computation,
                     cell.save, cell.restore, cell.reexecution,
                     cell.intermittency_management]
                )
    _write_json(outdir / "figure8_capacitor_size.json", payload)
    _write_csv(
        outdir / "figure8_capacitor_size.csv",
        ["technique", "tbpf", "total_nj", "computation_nj", "save_nj",
         "restore_nj", "reexecution_nj", "management_nj"],
        rows,
    )
    return payload


def export_ablations(ctx: EvaluationContext, outdir: Path) -> Dict:
    result = ablations.run(ctx)
    rows = []
    for variant, cells in result.cells.items():
        for benchmark, cell in cells.items():
            rows.append(
                [variant, benchmark, int(cell.completed), cell.total,
                 cell.computation, cell.save, cell.restore, cell.vm_accesses]
            )
    payload = {
        "tbpf": result.tbpf,
        "overheads_vs_full": {
            variant: result.overhead_vs_full(variant)
            for variant in ablations.VARIANTS
            if variant != "full"
        },
    }
    _write_json(outdir / "ablations.json", payload)
    _write_csv(
        outdir / "ablations.csv",
        ["variant", "benchmark", "completed", "total_nj", "computation_nj",
         "save_nj", "restore_nj", "vm_accesses"],
        rows,
    )
    return payload


def export_all(
    outdir: Path, benchmarks: Optional[List[str]] = None
) -> Dict[str, Dict]:
    """Run and export every experiment; returns the summary payload."""
    outdir.mkdir(parents=True, exist_ok=True)
    ctx = EvaluationContext(benchmarks=benchmarks)
    results = {
        "table1": export_table1(ctx, outdir),
        "table2": export_table2(ctx, outdir),
        "table3": export_table3(ctx, outdir),
        "figure6": export_figure6(ctx, outdir),
        "figure7": export_figure7(ctx, outdir),
        "figure8": export_figure8(ctx, outdir),
        "ablations": export_ablations(ctx, outdir),
    }
    summary = {
        "benchmarks": ctx.benchmark_names,
        "figure6_average_reduction": results["figure6"]["average_reduction"],
        "figure7_computation_reduction": results["figure7"][
            "computation_reduction"
        ],
        "ablation_overheads": results["ablations"]["overheads_vs_full"],
    }
    _write_json(outdir / "summary.json", summary)
    return results


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    outdir = Path(paths[0]) if paths else Path("artifacts")
    benchmarks = ["basicmath", "crc", "randmath"] if quick else None
    export_all(outdir, benchmarks=benchmarks)
    print(f"artifacts written to {outdir}/")


if __name__ == "__main__":
    main()
