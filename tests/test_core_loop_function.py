"""Tests for Algorithm 1 (loop analysis) and function-level composition,
exercised through the full Schematic pipeline on targeted programs."""

import pytest

from repro.core import Schematic
from repro.core.placement import SchematicConfig
from repro.core.verify import verify_forward_progress
from repro.emulator import PowerManager, run_continuous, run_intermittent
from repro.emulator.runtime import CheckpointPolicy
from repro.energy import msp430fr5969_model
from repro.frontend import compile_source
from repro.ir import Checkpoint, CondCheckpoint
from tests.helpers import platform

MODEL = msp430fr5969_model()


def compile_for(source, eb, gen=None, vm_size=2048, profile_runs=1):
    module = compile_source(source)
    plat = platform(eb=eb, vm_size=vm_size)
    result = Schematic(plat, SchematicConfig(profile_runs=profile_runs)).compile(
        module, input_generator=gen or (lambda run: {})
    )
    return module, plat, result


def checkpoints_in(module, func_name=None):
    funcs = (
        [module.functions[func_name]] if func_name else module.functions.values()
    )
    return [
        inst
        for func in funcs
        for block in func.blocks.values()
        for inst in block
        if isinstance(inst, (Checkpoint, CondCheckpoint))
    ]


LONG_LOOP = """
u32 out;
void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 200; i++) {
        acc = acc * 3 + (u32) i;
    }
    out = acc;
}
"""


class TestAlgorithm1:
    def test_numit_scales_with_budget(self):
        """numit = floor((EB - save - restore) / E_loop): doubling the
        budget roughly doubles the conditional-checkpoint period."""
        periods = {}
        for eb in (400.0, 800.0):
            module, plat, result = compile_for(LONG_LOOP, eb)
            conds = [
                c
                for c in checkpoints_in(result.module)
                if isinstance(c, CondCheckpoint)
            ]
            assert conds, f"expected a conditional checkpoint at EB={eb}"
            periods[eb] = conds[0].every
        assert 1.5 <= periods[800.0] / periods[400.0] <= 2.6

    def test_no_backedge_checkpoint_when_loop_fits(self):
        module, plat, result = compile_for(LONG_LOOP, eb=1_000_000.0)
        assert not any(
            isinstance(c, CondCheckpoint)
            for c in checkpoints_in(result.module)
        )

    def test_loop_runs_correctly_across_budgets(self):
        reference = run_continuous(compile_source(LONG_LOOP), MODEL)
        for eb in (300.0, 700.0, 5_000.0):
            module, plat, result = compile_for(LONG_LOOP, eb)
            verdict = verify_forward_progress(
                result.module, module, MODEL, eb, plat.vm_size
            )
            assert verdict.ok, (eb, verdict)

    def test_unbounded_loop_always_guarded(self):
        src = """
        u32 out; u32 n;
        void main() {
            u32 acc = 0;
            u32 x = n;
            @maxiter(4096)
            while (x != 0) {
                acc += x & 3;
                x >>= 1;
                acc = acc * 5 + 1;
            }
            out = acc;
        }
        """

        def gen(run):
            return {"n": [0xDEADBEEF ^ run]}

        module = compile_source(src)
        plat = platform(eb=500.0)
        result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=gen
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size,
            inputs={"n": [0x12345678]},
        )
        assert verdict.ok

    def test_nested_loops(self):
        src = """
        u32 out;
        void main() {
            u32 acc = 0;
            for (i32 i = 0; i < 12; i++) {
                for (i32 j = 0; j < 12; j++) {
                    acc += (u32) (i ^ j);
                    acc = acc * 3 + 1;
                }
                acc ^= (u32) i;
            }
            out = acc;
        }
        """
        module = compile_source(src)
        for eb in (600.0, 3_000.0):
            plat = platform(eb=eb)
            result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
                module, input_generator=lambda run: {}
            )
            verdict = verify_forward_progress(
                result.module, module, MODEL, eb, plat.vm_size
            )
            assert verdict.ok, eb


class TestFunctionComposition:
    def test_checkpoint_bearing_callee(self):
        """A callee too big for one charge gets internal checkpoints; the
        caller must still compose safely around the call."""
        src = """
        u32 out;
        u32 grind(u32 seed) {
            u32 acc = seed;
            for (i32 i = 0; i < 150; i++) {
                acc = acc * 1103515245 + 12345;
            }
            return acc;
        }
        void main() {
            u32 total = 0;
            total += grind(1);
            total += grind(2);
            out = total;
        }
        """
        module = compile_source(src)
        plat = platform(eb=700.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: {}
        )
        assert checkpoints_in(result.module, "grind")
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size
        )
        assert verdict.ok

    def test_plain_callee_inlined_into_segments(self):
        """A cheap callee must not force checkpoints around its call sites
        (paper: a checkpoint-free callee is treated like a basic block)."""
        src = """
        u32 out;
        u32 tiny(u32 x) { return x * 2 + 1; }
        void main() {
            u32 acc = 0;
            acc += tiny(1);
            acc += tiny(2);
            out = acc;
        }
        """
        module = compile_source(src)
        plat = platform(eb=100_000.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: {}
        )
        # entry + exit only: the calls fit inside one segment.
        assert result.checkpoints_inserted == 2

    def test_shared_global_allocation_consistent(self):
        """A global that a plain callee uses must have one placement across
        caller and callee (allocation can only change at checkpoints)."""
        src = """
        u32 shared_acc;
        u32 out;
        void bump() {
            for (i32 i = 0; i < 10; i++) { shared_acc += 3; }
        }
        void main() {
            shared_acc = 1;
            for (i32 r = 0; r < 8; r++) {
                bump();
                shared_acc ^= (u32) r;
            }
            out = shared_acc;
        }
        """
        module = compile_source(src)
        plat = platform(eb=100_000.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: {}
        )
        from repro.ir import Load, Store

        spaces = {
            inst.space
            for func in result.module.functions.values()
            for block in func.blocks.values()
            for inst in block
            if isinstance(inst, (Load, Store)) and inst.var.name == "shared_acc"
        }
        assert len(spaces) == 1, spaces
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size
        )
        assert verdict.ok

    def test_multi_exit_function(self):
        src = """
        u32 out;
        u32 classify(u32 x) {
            if (x > 1000) { return 2; }
            if (x > 10) { return 1; }
            return 0;
        }
        void main() {
            u32 acc = 0;
            for (i32 i = 0; i < 30; i++) {
                acc += classify((u32) i * 67);
            }
            out = acc;
        }
        """
        module = compile_source(src)
        plat = platform(eb=1_200.0)
        result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=lambda run: {}
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size
        )
        assert verdict.ok


class TestBreakAndColdPaths:
    def test_break_out_of_guarded_loop(self):
        src = """
        u32 out; u32 needle; u32 haystack[64];
        void main() {
            u32 found = 64;
            for (i32 i = 0; i < 64; i++) {
                out = out * 3 + haystack[i];
                if (haystack[i] == needle) {
                    found = (u32) i;
                    break;
                }
            }
            out = found;
        }
        """
        module = compile_source(src)

        def gen(run):
            import random

            rng = random.Random(run)
            values = [rng.randrange(0, 50) for _ in range(64)]
            return {"haystack": values, "needle": [values[run % 64]]}

        plat = platform(eb=700.0)
        result = Schematic(plat, SchematicConfig(profile_runs=3)).compile(
            module, input_generator=gen
        )
        inputs = gen(7)
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size, inputs=inputs
        )
        assert verdict.ok

    def test_cold_path_still_covered(self):
        """A branch never taken during profiling must still be analyzed
        (coverage paths) and behave correctly when finally taken."""
        src = """
        u32 out; u32 mode;
        void main() {
            u32 acc = 0;
            for (i32 i = 0; i < 40; i++) {
                if (mode == 777) {
                    acc = acc * 7 + 13;   /* never profiled */
                } else {
                    acc += (u32) i;
                }
            }
            out = acc;
        }
        """
        module = compile_source(src)

        def gen(run):
            return {"mode": [run]}  # never 777 during profiling

        plat = platform(eb=600.0)
        result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=gen
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size,
            inputs={"mode": [777]},
        )
        assert verdict.ok
