"""The pre-decoded interpreter loop must be bit-identical to the legacy
undecoded loop, and the id()-keyed cost cache must stay interpreter-local.

``Interpreter._decode_module`` turns every basic block into
``(handler, cost, inst, label)`` tuples once at construction; the legacy
loop (``config.predecode=False``) is kept as the differential reference.
These tests pin down:

- identical :class:`ExecutionReport`s (outputs, energy, cycles, failure
  accounting) on both paths, continuous and intermittent;
- identical ``step_hook`` streams (labels *and* per-step cycle costs),
  which the testkit's boundary recording depends on;
- the ``_costs`` lifetime contract: the id()-keyed cache is only safe
  because it lives and dies with one interpreter holding one module.
"""

import dataclasses

import pytest

from repro.emulator import PowerManager
from repro.emulator.interpreter import (
    Interpreter,
    InterpreterConfig,
    run_continuous,
    run_intermittent,
)
from repro.emulator.runtime import CheckpointPolicy
from repro.energy import msp430fr5969_platform
from repro.ir.instructions import Checkpoint, CondCheckpoint
from repro.testkit.corpus import compile_for, load_program

PLAT = msp430fr5969_platform(eb=3000.0)

CASES = [
    ("sumloop", "schematic"),
    ("warloop", "ratchet"),
    ("branchy", "mementos"),
    ("calls", "rockclimb"),
]


def _report_dict(report):
    return dataclasses.asdict(report)


@pytest.mark.parametrize("program", ["sumloop", "warloop", "branchy", "calls"])
def test_continuous_paths_identical(program):
    bench = load_program(program)
    fast = run_continuous(bench.module, PLAT.model,
                          inputs=bench.default_inputs(), predecode=True)
    slow = run_continuous(bench.module, PLAT.model,
                          inputs=bench.default_inputs(), predecode=False)
    assert _report_dict(fast) == _report_dict(slow)


@pytest.mark.parametrize("program,technique", CASES)
def test_intermittent_paths_identical_with_hooks(program, technique):
    bench = load_program(program)
    compiled = compile_for(
        technique, bench.module, PLAT,
        input_generator=bench.input_generator(),
    )
    assert compiled.feasible

    def run(predecode):
        hooks = []
        report = run_intermittent(
            compiled.module, PLAT.model, compiled.policy,
            PowerManager.energy_budget(3000.0),
            vm_size=PLAT.vm_size, inputs=bench.default_inputs(),
            step_hook=lambda label, cycles: hooks.append((label, cycles)),
            predecode=predecode,
        )
        return report, hooks

    fast_report, fast_hooks = run(True)
    slow_report, slow_hooks = run(False)
    assert _report_dict(fast_report) == _report_dict(slow_report)
    assert fast_hooks == slow_hooks, (
        "step_hook streams diverged — boundary sweeps would record "
        "different injection sites per path"
    )


def _interp(module, predecode):
    return Interpreter(
        module, PLAT.model,
        CheckpointPolicy.rollback_mode("continuous"),
        PowerManager.continuous(),
        InterpreterConfig(predecode=predecode),
    )


def test_decode_covers_every_block_and_flags_checkpoints():
    bench = load_program("sumloop")
    compiled = compile_for(
        "schematic", bench.module, PLAT,
        input_generator=bench.input_generator(),
    )
    interp = _interp(compiled.module, predecode=True)
    expected = {
        (f.name, label)
        for f in compiled.module.functions.values()
        for label in f.blocks
    }
    assert set(interp._code) == expected
    for (fname, label), entries in interp._code.items():
        block = compiled.module.functions[fname].blocks[label]
        assert len(entries) == len(block.instructions)
        for index, (handler, cost, inst, lab) in enumerate(entries):
            assert inst is block.instructions[index], "decode must bind identity"
            assert lab == f"{fname}:{label}:{index}"
            # None handler <=> checkpoint instruction (routed to
            # _do_checkpoint); everything else must have a dispatcher.
            is_ckpt = isinstance(inst, (Checkpoint, CondCheckpoint))
            assert (handler is None) == is_ckpt


def test_cost_cache_is_interpreter_local():
    """The lifetime contract on Interpreter._costs: id()-keyed costs are
    only valid while *this* interpreter keeps the module alive. The cache
    must be per-instance (never shared, never survive the interpreter)
    and the pre-decoded path must not populate it at all — it binds costs
    at construction instead."""
    bench = load_program("sumloop")
    a = _interp(bench.module, predecode=False)
    b = _interp(bench.module, predecode=False)
    assert a._costs is not b._costs
    assert a._costs == {} and b._costs == {}

    a.run()
    assert a._costs, "undecoded run must populate the memo"
    assert b._costs == {}, "a sibling interpreter must be untouched"

    fast = _interp(bench.module, predecode=True)
    fast.run()
    assert fast._costs == {}, (
        "pre-decoded path must never consult the id()-keyed cache"
    )


def test_cost_cache_entries_pin_their_instruction():
    """Regression for the id()-reuse hazard: the cache is keyed by
    ``id(inst)``, and it used to store the bare cost tuple. An
    instruction freed while its entry lived could then hand its recycled
    id to a *different* instruction, which would be served the stale
    cost. Entries now store ``(inst, cost)`` — the held reference keeps
    the keyed object alive, so no live entry's key can ever be recycled.
    """
    import gc

    bench = load_program("sumloop")
    interp = _interp(bench.module, predecode=False)
    func = bench.module.entry_function
    proto = next(
        inst
        for block in func.blocks.values()
        for inst in block.instructions
        if not isinstance(inst, (Checkpoint, CondCheckpoint))
    )

    def cache_temporary():
        # A fresh instruction object cached and immediately dropped —
        # exactly the lifetime the old cache mishandled.
        temp = dataclasses.replace(proto)
        interp._cost(temp)
        return id(temp)

    key = cache_temporary()
    gc.collect()

    entry = interp._costs[key]
    pinned_inst = entry[0]
    assert id(pinned_inst) == key, (
        "the cache entry must hold the instruction it is keyed by"
    )
    # Because the entry pins the object, no newly-allocated instruction
    # can ever collide with a live key: CPython ids are addresses, and
    # the pinned object still occupies this one.
    for _ in range(256):
        assert id(dataclasses.replace(proto)) != key

    # Dropping the entry releases the pin — the id may then be recycled,
    # which is fine precisely because the entry is gone.
    del interp._costs[key], entry, pinned_inst
    gc.collect()
    assert key not in interp._costs


def test_predecode_flag_defaults_on():
    assert InterpreterConfig().predecode is True
