"""Structural validation of IR modules.

``validate_module`` raises :class:`~repro.errors.IRValidationError` on the
first problem found, or returns the module (enabling
``validate_module(lower(...))`` chaining). The checks are the invariants the
rest of the library relies on; every compilation pipeline in this repo runs
the validator after lowering and after each transformation pass.
"""

from __future__ import annotations

from typing import Set

from repro.errors import IRValidationError
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    Checkpoint,
    CondCheckpoint,
    Jump,
    Load,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import VarRef


def _fail(where: str, message: str) -> None:
    raise IRValidationError(f"{where}: {message}")


def _validate_function(
    module: Module, func: Function, module_ckpt_ids: Set[int]
) -> None:
    where = f"@{func.name}"
    if not func.blocks:
        _fail(where, "function has no blocks")

    labels = set(func.blocks)
    known_vars = set(func.variables.values()) | set(module.globals.values())

    # Parameters must have backing variables.
    for param in func.params:
        if param.name not in func.variables:
            _fail(where, f"parameter {param.name!r} has no backing variable")
        backing = func.variables[param.name]
        if param.is_ref and not backing.is_ref:
            _fail(where, f"array parameter {param.name!r} backing is not is_ref")

    defined: Set[str] = set()  # registers defined anywhere in the function
    for reg in func.arg_registers():
        if reg is not None:
            defined.add(reg.name)
    for block in func.blocks.values():
        for inst in block:
            for reg in inst.defs():
                defined.add(reg.name)

    ckpt_ids: Set[int] = set()
    for block in func.blocks.values():
        bwhere = f"{where}/.{block.label}"
        if not block.is_terminated:
            _fail(bwhere, "block has no terminator")
        for i, inst in enumerate(block):
            if inst.is_terminator and i != len(block.instructions) - 1:
                _fail(bwhere, f"terminator {inst} is not the last instruction")

            for reg in inst.uses():
                if reg.name not in defined:
                    _fail(bwhere, f"{inst}: use of undefined register %{reg.name}")

            if isinstance(inst, (Load, Store)):
                if inst.var not in known_vars:
                    _fail(bwhere, f"{inst}: unknown variable @{inst.var.name}")
                if inst.var.is_array and inst.index is None:
                    _fail(bwhere, f"{inst}: array access without index")
                if not inst.var.is_array and inst.index is not None:
                    _fail(bwhere, f"{inst}: scalar access with index")
                if isinstance(inst, Store) and inst.var.is_const:
                    _fail(bwhere, f"{inst}: store to const variable")

            if isinstance(inst, Call):
                if inst.callee not in module.functions:
                    _fail(bwhere, f"{inst}: call to unknown function")
                callee = module.functions[inst.callee]
                if len(inst.args) != len(callee.params):
                    _fail(
                        bwhere,
                        f"{inst}: {len(inst.args)} args, callee expects "
                        f"{len(callee.params)}",
                    )
                for arg, param in zip(inst.args, callee.params):
                    if param.is_ref != isinstance(arg, VarRef):
                        _fail(
                            bwhere,
                            f"{inst}: argument for {param.name!r} must "
                            f"{'be' if param.is_ref else 'not be'} by-reference",
                        )
                if inst.dest is not None and callee.return_type is None:
                    _fail(bwhere, f"{inst}: void callee used as a value")

            if isinstance(inst, Jump):
                if inst.target not in labels:
                    _fail(bwhere, f"{inst}: unknown target")
            if isinstance(inst, Branch):
                for target in (inst.if_true, inst.if_false):
                    if target not in labels:
                        _fail(bwhere, f"{inst}: unknown target .{target}")

            if isinstance(inst, Ret):
                if func.return_type is None and inst.value is not None:
                    _fail(bwhere, f"{inst}: value returned from void function")
                if func.return_type is not None and inst.value is None:
                    _fail(bwhere, f"{inst}: missing return value")

            if isinstance(inst, (Checkpoint, CondCheckpoint)):
                # Uniqueness is module-wide: snapshot ids, testkit step
                # labels ("ckptN:save") and sabotage victim selection all
                # key checkpoints by bare id without a function qualifier.
                if inst.ckpt_id in ckpt_ids or inst.ckpt_id in module_ckpt_ids:
                    _fail(bwhere, f"{inst}: duplicate checkpoint id in module")
                ckpt_ids.add(inst.ckpt_id)

    # Every non-entry block should be reachable from the entry.
    reachable: Set[str] = set()
    work = [func.entry.label]
    while work:
        label = work.pop()
        if label in reachable:
            continue
        reachable.add(label)
        work.extend(func.blocks[label].successor_labels())
    unreachable = set(func.blocks) - reachable
    if unreachable:
        _fail(where, f"unreachable blocks: {sorted(unreachable)}")

    # Loop-bound annotations must name live blocks: an orphaned key means
    # the declared bound silently constrains nothing (the placer and the
    # bound verifier both look bounds up by header label).
    for label, bound in func.loop_maxiter.items():
        if label not in labels:
            _fail(
                where,
                f"loop_maxiter names no block: .{label} (bound {bound})",
            )
        if bound < 1:
            _fail(where, f"loop_maxiter for .{label} must be >= 1, got {bound}")

    module_ckpt_ids |= ckpt_ids
    _check_definite_assignment(func)


def _check_definite_assignment(func: Function) -> None:
    """Every register use must be dominated by a definition.

    The per-instruction check above only proves each used register is
    defined *somewhere* in the function; a definition in a sibling branch
    or later block would satisfy it while the running program reads
    garbage. This pass runs a forward must-dataflow (sets of definitely
    assigned registers, intersection at joins) and re-walks each block
    with the settled in-states.
    """
    # Imported lazily: repro.analysis builds on repro.ir, and importing it
    # at module scope would create a package cycle.
    from repro.analysis.cfg import CFG
    from repro.analysis.dataflow import solve_forward

    entry = frozenset(
        reg.name for reg in func.arg_registers() if reg is not None
    )

    def transfer(label: str, state: frozenset) -> frozenset:
        assigned = set(state)
        for inst in func.blocks[label].instructions:
            for reg in inst.defs():
                assigned.add(reg.name)
        return frozenset(assigned)

    solution = solve_forward(
        CFG(func), entry, transfer, lambda a, b: a & b
    )
    for label, state in solution.block_in.items():
        assigned = set(state)
        bwhere = f"@{func.name}/.{label}"
        for inst in func.blocks[label].instructions:
            for reg in inst.uses():
                if reg.name not in assigned:
                    _fail(
                        bwhere,
                        f"{inst}: use of possibly-undefined register "
                        f"%{reg.name} (no definition on some path from "
                        f"entry)",
                    )
            for reg in inst.defs():
                assigned.add(reg.name)


def validate_module(module: Module) -> Module:
    """Validate a module; raises :class:`IRValidationError` on any problem."""
    if module.entry not in module.functions:
        _fail(f"module {module.name}", f"no entry function @{module.entry}")
    entry = module.functions[module.entry]
    if entry.params:
        _fail(
            f"module {module.name}",
            "entry function must take no parameters "
            "(inputs are provided through global variables)",
        )
    for var in module.all_variables():
        if var.volatile_input and (var.is_const or var.is_ref):
            _fail(
                f"module {module.name}",
                f"variable @{var.name} is volatile_input but also "
                f"{'const' if var.is_const else 'a by-reference formal'}; "
                "environment inputs must be plain mutable variables",
            )
    module_ckpt_ids: Set[int] = set()
    for func in module.functions.values():
        _validate_function(module, func, module_ckpt_ids)
    return module
