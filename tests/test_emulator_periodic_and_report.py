"""Tests for the periodic-cycles failure mode, execution reports and the
IR printer output."""

import pytest

from repro.baselines import compile_mementos, compile_ratchet
from repro.emulator import (
    CheckpointPolicy,
    PowerManager,
    PowerMode,
    run_continuous,
    run_intermittent,
)
from repro.energy import msp430fr5969_model
from repro.frontend import compile_source
from repro.ir import print_function, print_module
from tests.helpers import compile_sum_loop, platform, sum_loop_inputs

MODEL = msp430fr5969_model()


class TestPeriodicMode:
    def test_failures_every_tbpf_cycles(self):
        module = compile_sum_loop()
        inputs = sum_loop_inputs()
        ref = run_continuous(module, MODEL, inputs=inputs)
        compiled = compile_ratchet(module, platform())
        tbpf = 500
        report = run_intermittent(
            compiled.module,
            MODEL,
            compiled.policy,
            PowerManager.periodic(tbpf=tbpf),
            vm_size=2048,
            inputs=inputs,
        )
        assert report.completed
        assert report.outputs == ref.outputs
        # Active cycles grow with re-execution; at least cycles/tbpf
        # failures must have happened.
        assert report.power_failures >= ref.active_cycles // tbpf

    def test_periodic_and_energy_budget_agree_qualitatively(self):
        """Per §IV-C the two failure models are linked by average power:
        both must let mementos finish with comparable failure counts."""
        module = compile_sum_loop()
        inputs = sum_loop_inputs()
        ref = run_continuous(module, MODEL, inputs=inputs)
        avg_power = ref.energy.total / ref.active_cycles
        tbpf = 700
        eb = avg_power * tbpf

        compiled = compile_mementos(module, platform(eb=eb))
        by_energy = run_intermittent(
            compiled.module, MODEL, compiled.policy,
            PowerManager.energy_budget(eb), vm_size=2048, inputs=inputs,
        )
        by_cycles = run_intermittent(
            compiled.module, MODEL, compiled.policy,
            PowerManager.periodic(tbpf=tbpf, eb=eb), vm_size=2048,
            inputs=inputs,
        )
        assert by_energy.completed and by_cycles.completed
        assert by_energy.outputs == by_cycles.outputs == ref.outputs

    def test_mode_enum(self):
        assert PowerManager.continuous().mode is PowerMode.CONTINUOUS
        assert PowerManager.periodic(100).mode is PowerMode.PERIODIC_CYCLES
        assert (
            PowerManager.energy_budget(5.0).mode is PowerMode.ENERGY_BUDGET
        )


class TestExecutionReport:
    def test_summary_mentions_key_fields(self):
        module = compile_sum_loop()
        report = run_continuous(module, MODEL, inputs=sum_loop_inputs())
        text = report.summary()
        assert "completed" in text
        assert "uJ" in text
        assert "cycles" in text

    def test_failed_summary(self):
        module = compile_sum_loop()
        report = run_intermittent(
            module.clone(),
            MODEL,
            CheckpointPolicy.rollback_mode("bare"),
            PowerManager.energy_budget(120.0),
            inputs=sum_loop_inputs(),
        )
        assert "FAILED" in report.summary()

    def test_matches_outputs_helper(self):
        module = compile_sum_loop()
        a = run_continuous(module, MODEL, inputs=sum_loop_inputs(seed=1))
        b = run_continuous(module, MODEL, inputs=sum_loop_inputs(seed=1))
        c = run_continuous(module, MODEL, inputs=sum_loop_inputs(seed=2))
        assert a.matches_outputs(b)
        assert not a.matches_outputs(c)

    def test_total_energy_uj(self):
        module = compile_sum_loop()
        report = run_continuous(module, MODEL, inputs=sum_loop_inputs())
        assert report.total_energy_uj == pytest.approx(
            report.energy.total / 1000.0
        )


class TestPrinter:
    def test_module_dump_roundtrip_structure(self):
        from tests.helpers import CALLS_SRC

        module = compile_source(CALLS_SRC)
        text = print_module(module)
        # Every function and block label appears.
        for name, func in module.functions.items():
            assert f"func @{name}(" in text
            for label in func.blocks:
                assert f".{label}:" in text
        for name in module.globals:
            assert f"@{name}" in text

    def test_const_flag_shown(self):
        module = compile_source(
            "const u8 t[2] = {1, 2}; void main() { u32 x = (u32) t[0]; }"
        )
        assert "[const]" in print_module(module)

    def test_function_dump_contains_params(self):
        module = compile_source(
            "u32 f(u32 a, i32 buf[]) { return a; } void main() { }"
        )
        text = print_function(module.functions["f"])
        assert "a:u32" in text
        assert "&buf:i32" in text

    def test_checkpoints_printed(self):
        from repro.core import Schematic, SchematicConfig
        from tests.helpers import sum_loop_inputs

        result = Schematic(
            platform(eb=250.0), SchematicConfig(profile_runs=1)
        ).compile(
            compile_sum_loop(),
            input_generator=lambda run: sum_loop_inputs(seed=run),
        )
        text = print_module(result.module)
        assert "checkpoint #" in text
        assert "load.vm" in text or "store.vm" in text


class TestFormatMatrix:
    def test_alignment_and_content(self):
        from repro.experiments.common import format_matrix

        text = format_matrix(
            "demo",
            ["row1", "row2"],
            ["colA", "colB"],
            lambda r, c: f"{r[-1]}{c[-1]}",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "colA" in lines[1] and "colB" in lines[1]
        assert "1A" in lines[2] and "2B" in lines[3]
