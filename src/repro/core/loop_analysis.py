"""Loop handling: Algorithm 1 of the paper (§III-B2).

Step 1 analyzes one iteration — the loop body with the back edge removed —
with the ordinary path algorithm. Step 2 decides the back-edge checkpoint:

- if the header and latch memory allocations differ, a checkpoint is needed
  on every back-edge traversal to change allocation (``numit = 1``);
- otherwise save/restore happens once every ``numit`` iterations, where
  ``numit`` is the number of iterations executable within the energy budget
  (we use the safe refinement ``numit = floor((EB - E_save - E_restore) /
  E_loop)`` so the window including the checkpoint traffic itself fits EB);
- when ``numit`` exceeds the loop's maximum trip count, no back-edge
  checkpoint is inserted at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import Loop
from repro.core.allocation import SegmentContext
from repro.core.path_analysis import RegionAnalysis, RegionOutcome
from repro.core.region import InsertPoint, RegionGraph
from repro.core.summaries import CkptBearing, LoopResult, SharedAlloc
from repro.ir.values import MemorySpace

#: Trip-count estimate used only for *cost* weighting when a loop has no
#: known bound (safety never depends on it: unbounded loops always get a
#: conditional back-edge checkpoint). Since the Schematic driver fills
#: ``loop_maxiter`` with proven bounds from the value-range analysis
#: (:func:`repro.analysis.ranges.apply_inferred_bounds`) before any loop
#: is analyzed, this default now applies only to *truly* unbounded loops
#: — data-dependent exits the trip-count deriver cannot bound.
DEFAULT_TRIP_ESTIMATE = 64


def trip_estimate(maxiter: Optional[int]) -> int:
    """The trip count used for cost weighting: the declared-or-inferred
    bound when one exists, :data:`DEFAULT_TRIP_ESTIMATE` otherwise."""
    return maxiter if maxiter is not None else DEFAULT_TRIP_ESTIMATE


@dataclass
class BackedgeCheckpoint:
    """The checkpoint to install on a loop's back edge(s)."""

    every: int  # 1 = checkpoint each iteration; k>1 = conditional
    save_names: Tuple[str, ...]
    restore_names: Tuple[str, ...]
    alloc_after: Dict[str, MemorySpace]
    points: List[InsertPoint]


@dataclass
class LoopAnalysisOutput:
    result: LoopResult
    outcome: RegionOutcome
    backedge: Optional[BackedgeCheckpoint]


def analyze_loop(
    loop: Loop,
    region: RegionGraph,
    paths: List[Tuple[int, ...]],
    ctx: SegmentContext,
    eb: float,
    live_at_edge,
    exit_live,
    force_checkpoint: bool = False,
    max_numit: Optional[int] = None,
) -> LoopAnalysisOutput:
    """Run Algorithm 1 on one loop whose body region is already built."""
    model = ctx.model

    # ---- Step 1: analyze one iteration (back edge removed). -----------------
    analysis = RegionAnalysis(
        region,
        ctx,
        eb,
        live_at_edge=live_at_edge,
        exit_live=exit_live,
        exit_need=model.save_energy(0),
        exit_is_checkpoint=False,
    )
    outcome = analysis.analyze(paths)

    maxiter = loop.maxiter
    back_points = [
        InsertPoint.on_edge(latch, loop.header) for latch in loop.latches
    ]

    entry_alloc = dict(outcome.entry_alloc)
    exit_alloc = dict(outcome.exit_alloc)
    entry_vm = set(outcome.entry_vm)
    exit_vm = set(outcome.exit_vm)

    def latch_vm_set():
        """VM residency at the latch exit(s) — the state the back-edge
        checkpoint actually sees. The canonical region exit may be a
        different (e.g. header) exit with a different allocation."""
        names = set()
        found = False
        for latch in loop.latches:
            if latch in outcome.exit_vm_by_label:
                names |= set(outcome.exit_vm_by_label[latch])
                found = True
        return names if found else set(outcome.exit_vm)

    latch_vm = latch_vm_set()

    def conservative_save(names):
        """The back-edge save set: every non-const VM resident at the
        latch that is live around the loop. Conservative (clean residents
        are saved too) — per-variable dirtiness at a *specific* exit is not
        tracked across paths."""
        return tuple(
            sorted(
                n
                for n in names
                if n in ctx.variables
                and not ctx.variables[n].is_const
                and n in exit_live
            )
        )

    backedge_save = conservative_save(latch_vm)
    save_bytes = sum(ctx.variables[n].size_bytes for n in backedge_save)
    restore_bytes = sum(
        ctx.variables[n].size_bytes
        for n in outcome.entry_restore
        if n in ctx.variables
    )
    save_e = model.save_energy(save_bytes)
    restore_e = model.restore_energy(restore_bytes)

    def worst_boundary_save() -> float:
        """The numit window must leave room for whichever checkpoint ends
        the checkpoint-free span: the back-edge save *or* the enclosing
        checkpoint on any loop-exit edge (which saves that exit's VM
        residents)."""
        worst = save_e
        for names in outcome.exit_vm_by_label.values():
            payload = sum(
                ctx.variables[n].size_bytes
                for n in names
                if n in ctx.variables and not ctx.variables[n].is_const
            )
            worst = max(worst, model.save_energy(payload))
        return worst

    private_reserve = max(
        (
            atom.shared.private_reserve
            for atom in region.atoms.values()
            if atom.shared is not None
        ),
        default=0,
    )

    def shared_summary() -> SharedAlloc:
        # A plain loop shares one allocation region-wide; impose the union
        # of all its atoms' placements (a cold-path-only variable still has
        # a final placement the enclosing segment must match).
        forced = dict(outcome.combined_alloc)
        forced.update(entry_alloc)
        vm_names = tuple(
            sorted(
                {n for n, s in forced.items() if s is MemorySpace.VM}
                | entry_vm
                | exit_vm
            )
        )
        # Dirty set seen by the enclosing segment's ending checkpoint:
        # conservative (every non-const VM resident), since dirtiness at a
        # specific exit is path-dependent.
        dirty = tuple(
            sorted(
                n
                for n in vm_names
                if n in ctx.variables and not ctx.variables[n].is_const
            )
        )
        return SharedAlloc(
            forced=forced,
            vm_names=vm_names,
            restore_names=outcome.entry_restore,
            dirty_names=dirty,
            private_reserve=private_reserve,
        )

    def barrier_summary(
        e_to_first: float, e_from_last: float, internal_energy: float
    ) -> CkptBearing:
        return CkptBearing(
            e_to_first=e_to_first,
            e_from_last=e_from_last,
            internal_energy=internal_energy,
            entry_forced=entry_alloc,
            entry_vm=tuple(sorted(entry_vm)),
            entry_restore=outcome.entry_restore,
            exit_forced=exit_alloc,
            exit_vm=tuple(sorted(exit_vm)),
            exit_dirty=outcome.exit_dirty,
            # Per-exit-point residency: the loop can be left from its
            # header, a break block or its latch, each with a different
            # allocation; checkpoints on the exit edges save accordingly.
            exit_states=dict(outcome.exit_vm_by_label),
            private_reserve=private_reserve,
        )

    trips = trip_estimate(maxiter)
    e_iter = outcome.total_energy

    # ---- Step 2: the back-edge decision. --------------------------------------
    if outcome.plain and eb - worst_boundary_save() - restore_e < e_iter:
        # One iteration plus its back-edge checkpoint traffic does not fit:
        # force checkpoints *inside* the iteration by re-analyzing the body
        # with the back-edge traffic as the exit need.
        analysis = RegionAnalysis(
            region,
            ctx,
            eb,
            live_at_edge=live_at_edge,
            exit_live=exit_live,
            exit_need=save_e + restore_e,
            exit_is_checkpoint=False,
        )
        outcome = analysis.analyze(paths)
        entry_alloc = dict(outcome.entry_alloc)
        exit_alloc = dict(outcome.exit_alloc)
        entry_vm = set(outcome.entry_vm)
        exit_vm = set(outcome.exit_vm)
        latch_vm = latch_vm_set()
        backedge_save = conservative_save(latch_vm)
        save_bytes = sum(ctx.variables[n].size_bytes for n in backedge_save)
        save_e = model.save_energy(save_bytes)
        e_iter = outcome.total_energy

    if outcome.plain:
        allocs_match = entry_vm == latch_vm
        if not allocs_match:
            # Algorithm 1 line 2: allocation changes between latch and
            # header, so a (full) checkpoint every iteration migrates it.
            numit = 1
        else:
            window = eb - worst_boundary_save() - restore_e
            numit = int(window // e_iter) if e_iter > 0 else 1 << 30
            numit = max(numit, 1)
        if max_numit is not None:
            numit = min(numit, max_numit)

        if (
            not force_checkpoint
            and maxiter is not None
            and numit > maxiter
            and allocs_match
        ):
            # No back-edge checkpoint at all (Algorithm 1 lines 7-8).
            total = trips * e_iter
            result = LoopResult(
                header=loop.header,
                maxiter=trips,
                iteration_energy=e_iter,
                numit=None,
                total_energy=total,
                shared=shared_summary(),
            )
            return LoopAnalysisOutput(result=result, outcome=outcome, backedge=None)

        # Conditional (or per-iteration) back-edge checkpoint.
        windows = max((trips + numit - 1) // numit - 1, 0) if numit else 0
        internal = trips * e_iter + windows * (save_e + restore_e)
        e_to_first = min(numit, trips) * e_iter + save_e
        e_from_last = restore_e + min(numit, trips) * e_iter
        result = LoopResult(
            header=loop.header,
            maxiter=trips,
            iteration_energy=e_iter,
            numit=numit,
            total_energy=internal,
            ckpt=barrier_summary(e_to_first, e_from_last, internal),
        )
        backedge = BackedgeCheckpoint(
            every=numit,
            save_names=backedge_save,
            restore_names=outcome.entry_restore,
            alloc_after=entry_alloc,
            points=back_points,
        )
        return LoopAnalysisOutput(result=result, outcome=outcome, backedge=backedge)

    # ---- The body itself contains checkpoints. --------------------------------
    # Can the back edge stay checkpoint-free? Three conditions:
    # (i) allocation is stable across it, (ii) the tail of one iteration
    # plus the head of the next fits the budget, and (iii) *every* path
    # from the header to a latch crosses an internal checkpoint — if some
    # hot path is checkpoint-free, iterating it accumulates energy without
    # bound and no per-junction check can save us.
    chain = outcome.e_from_last + outcome.e_to_first
    if (
        not force_checkpoint
        and entry_vm == latch_vm
        and chain <= eb
        and not _checkpoint_free_latch_path(region, loop, outcome)
    ):
        internal = trips * e_iter
        result = LoopResult(
            header=loop.header,
            maxiter=trips,
            iteration_energy=e_iter,
            numit=None,
            total_energy=internal,
            ckpt=barrier_summary(
                outcome.e_to_first, outcome.e_from_last, internal
            ),
        )
        return LoopAnalysisOutput(result=result, outcome=outcome, backedge=None)

    # Conditional checkpoint on the back edge. The energy window between
    # two back-edge firings only matters along *checkpoint-free* iteration
    # spans — internal checkpoints reset the budget on the paths that cross
    # them. The period therefore derives from the worst checkpoint-free
    # header->latch path, not the full traversal energy.
    e_cf = _checkpoint_free_iteration_energy(region, loop, outcome, ctx)
    if entry_vm != latch_vm:
        numit = 1  # allocation must migrate every iteration
    elif e_cf is None:
        # Every iteration crosses an internal checkpoint; the back edge only
        # needs to break the tail+head junction (chain > eb brought us here).
        numit = 1
    else:
        window = eb - worst_boundary_save() - restore_e
        numit = int(window // e_cf) if e_cf > 0 else 1 << 30
        numit = max(numit, 1)
    if max_numit is not None:
        numit = min(numit, max_numit)

    windows = max((trips + numit - 1) // numit - 1, 0)
    internal = trips * e_iter + windows * (save_e + restore_e)
    # Energy to the first save: either an internal one (outcome.e_to_first)
    # or, along checkpoint-free spans, the back edge after numit iterations.
    cf_span = min(numit, trips) * (e_cf or 0.0)
    e_to_first = max(outcome.e_to_first, cf_span + save_e)
    e_from_last = max(outcome.e_from_last, restore_e + cf_span)
    result = LoopResult(
        header=loop.header,
        maxiter=trips,
        iteration_energy=e_iter,
        numit=numit,
        total_energy=internal,
        ckpt=barrier_summary(e_to_first, e_from_last, internal),
    )
    backedge = BackedgeCheckpoint(
        every=numit,
        save_names=backedge_save,
        restore_names=outcome.entry_restore,
        alloc_after=entry_alloc,
        points=back_points,
    )
    return LoopAnalysisOutput(result=result, outcome=outcome, backedge=backedge)


def _checkpoint_free_edges(region: RegionGraph, outcome: RegionOutcome):
    enabled_edges = {c.edge for c in outcome.checkpoints}

    def successors(uid: int):
        if region.atom(uid).is_barrier:
            return  # crossing a barrier implies internal checkpoints
        for succ in region.succs[uid]:
            if (uid, succ) not in enabled_edges:
                yield succ

    return successors


def _checkpoint_free_latch_path(
    region: RegionGraph, loop: Loop, outcome: RegionOutcome
) -> bool:
    """True if a path from the region entry to a latch exit exists that
    crosses no enabled checkpoint and no barrier atom."""
    successors = _checkpoint_free_edges(region, outcome)
    latch_uids = {region.tail_atom(latch) for latch in loop.latches}
    work = [region.entry_uid]
    seen = set()
    while work:
        uid = work.pop()
        if uid in seen:
            continue
        seen.add(uid)
        if uid in latch_uids and not region.atom(uid).is_barrier:
            return True
        work.extend(successors(uid))
    return False


def _checkpoint_free_iteration_energy(
    region: RegionGraph,
    loop: Loop,
    outcome: RegionOutcome,
    ctx: SegmentContext,
) -> Optional[float]:
    """Worst-case energy of a checkpoint-free header->latch path under the
    final allocations (None when every such path crosses a checkpoint)."""
    successors = _checkpoint_free_edges(region, outcome)
    latch_uids = {region.tail_atom(latch) for latch in loop.latches}

    best: Dict[int, float] = {}
    for uid in region.topological():
        atom = region.atom(uid)
        if atom.is_barrier:
            continue
        if uid == region.entry_uid:
            incoming = 0.0
        else:
            preds = [
                p
                for p in region.preds[uid]
                if p in best and uid in set(successors(p))
            ]
            if not preds:
                continue
            incoming = max(best[p] for p in preds)
        best[uid] = incoming + atom.energy_under(
            ctx.model, outcome.atom_alloc.get(uid, {})
        )
    values = [best[uid] for uid in latch_uids if uid in best]
    return max(values) if values else None
