"""Edge cases of the power-failure model and the energy meter.

The testkit leans hard on PowerManager semantics — inclusive budgets,
one-failure-per-step scheduled injection, replayable failure logs — so
these pin the corners: zero budgets, exhausted schedules,
``remaining_fraction`` in every mode, and the meter's conservation and
monotonicity invariants under arbitrary operation sequences.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.meter import EnergyMeter
from repro.emulator.power import PowerManager, PowerMode


# -- zero budgets ------------------------------------------------------------


def test_eb_zero_fails_on_first_positive_consumption():
    power = PowerManager.energy_budget(0.0)
    # Zero-energy steps consume exactly the (zero) budget: inclusive, safe.
    assert not power.consume(0.0, 1)
    assert power.remaining == 0.0
    assert power.consume(0.001, 1)
    assert power.failures == 1


def test_tbpf_zero_means_no_periodic_failures():
    power = PowerManager.periodic(0)
    for _ in range(100):
        assert not power.consume(1.0, 7)
    assert power.failures == 0
    assert power.remaining == float("inf")
    assert power.remaining_fraction == 1.0


# -- remaining_fraction in all five modes ------------------------------------


def test_remaining_fraction_continuous():
    power = PowerManager.continuous()
    power.consume(1e9, 10**9)
    assert power.remaining == float("inf")
    assert power.remaining_fraction == 1.0


def test_remaining_fraction_energy_budget():
    power = PowerManager.energy_budget(100.0)
    assert power.remaining_fraction == 1.0
    power.consume(25.0, 1)
    assert math.isclose(power.remaining_fraction, 0.75)
    power.consume(75.0, 1)
    assert power.remaining_fraction == 0.0
    power.recharge_full()
    assert power.remaining_fraction == 1.0
    # Infinite budget: the fraction must not become nan.
    assert PowerManager.energy_budget(float("inf")).remaining_fraction == 1.0


def test_remaining_fraction_periodic():
    power = PowerManager.periodic(100)
    power.consume(0.0, 40)
    assert math.isclose(power.remaining_fraction, 0.60)
    power.consume(0.0, 60)
    assert power.remaining_fraction == 0.0


def test_remaining_fraction_scheduled_drains_toward_next_offset():
    power = PowerManager.scheduled([100])
    assert power.remaining_fraction == 1.0
    power.consume(0.0, 50)
    assert math.isclose(power.remaining_fraction, 0.5)
    power.consume(0.0, 50)  # timeline == offset: inclusive, no failure
    assert power.failures == 0
    assert power.remaining_fraction == 0.0
    assert power.consume(0.0, 1)
    power.recharge_full()
    # Schedule exhausted: supply is effectively continuous again.
    assert power.next_scheduled is None
    assert power.remaining_fraction == 1.0


def test_remaining_fraction_stochastic():
    power = PowerManager.stochastic(mean_cycles=1_000.0, seed=3)
    window = power._window
    assert window >= 1
    power.consume(0.0, window)
    assert power.remaining_fraction == 0.0  # exactly the window: still alive
    assert power.failures == 0


# -- scheduled injection semantics -------------------------------------------


def test_scheduled_one_failure_per_step():
    """Two offsets inside one step still cost two *separate* failures: the
    second fires on the next consume call (a failure during recovery)."""
    power = PowerManager.scheduled([10, 11])
    assert not power.consume(0.0, 10)  # reaches 10 exactly: safe
    assert power.consume(0.0, 5)  # crosses both 10 and 11
    assert power.failures == 1
    assert power.consume(0.0, 1)  # the second offset fires here
    assert power.failures == 2
    assert not power.consume(0.0, 1)


def _drive(power: PowerManager, steps):
    """Run ``power`` through ``steps`` with interpreter-style recharges;
    return the indices of the failing steps."""
    failed = []
    for i, (energy, cycles) in enumerate(steps):
        if power.consume(energy, cycles):
            failed.append(i)
            power.recharge_full()
    return failed


def test_failure_log_replays_as_a_scheduled_run():
    """The invariant the shrinker relies on: replaying a run's failure_log
    through PowerManager.scheduled reproduces the same failure points."""
    steps = [(1.0, 7)] * 40
    original = PowerManager.periodic(50)
    original_failed = _drive(original, steps)
    assert original.failures > 0

    replay = PowerManager.scheduled(original.failure_log)
    assert _drive(replay, steps) == original_failed
    assert replay.failure_log == original.failure_log


def test_recording_run_never_fails_and_logs_boundaries():
    power = PowerManager.recording()
    for _ in range(5):
        assert not power.consume(1.0, 3)
    assert power.failures == 0
    assert power.record == [0, 3, 6, 9, 12]  # pre-step timeline offsets


# -- stochastic mode ----------------------------------------------------------


def test_stochastic_is_deterministic_per_seed():
    def trace(seed):
        power = PowerManager.stochastic(mean_cycles=200.0, seed=seed)
        out = []
        for i in range(2_000):
            if power.consume(1.0, 1):
                out.append(i)
                power.recharge_full()
        return out

    a, b = trace(42), trace(42)
    assert a == b
    assert a  # mean 200 over 2000 cycles: failures certain
    assert trace(7) != a  # astronomically unlikely to collide


def test_stochastic_redraws_window_on_recharge():
    power = PowerManager.stochastic(mean_cycles=500.0, seed=0)
    windows = set()
    for _ in range(32):
        windows.add(power._window)
        power.recharge_full()
    assert len(windows) > 1


def test_stochastic_requires_positive_mean():
    try:
        PowerManager(mode=PowerMode.STOCHASTIC, mean_cycles=0.0)
    except ValueError:
        pass
    else:
        raise AssertionError("mean_cycles=0 must be rejected")


# -- EnergyMeter invariants under hypothesis ----------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("compute"),
            st.floats(0.0, 100.0),
            st.floats(0.0, 50.0),
            st.booleans(),
            st.booleans(),
        ),
        st.tuples(st.just("save"), st.floats(0.0, 100.0)),
        st.tuples(st.just("restore"), st.floats(0.0, 100.0)),
        st.tuples(st.just("commit")),
        st.tuples(st.just("rollback")),
    ),
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(_OPS)
def test_energy_meter_monotone_and_conserving(ops):
    """Total energy (committed + pending) never decreases, no category
    ever goes negative, and every charged nanojoule lands in exactly one
    of computation / re-execution / save / restore."""
    meter = EnergyMeter()
    charged_compute = charged_save = charged_restore = 0.0
    prev_total = 0.0
    for op in ops:
        if op[0] == "compute":
            _, energy, access, is_vm, has_access = op
            access = min(access, energy)
            meter.charge_compute(
                energy, access_energy=access,
                access_is_vm=is_vm, has_access=has_access,
            )
            charged_compute += energy
        elif op[0] == "save":
            meter.charge_save(op[1])
            charged_save += op[1]
        elif op[0] == "restore":
            meter.charge_restore(op[1])
            charged_restore += op[1]
        elif op[0] == "commit":
            meter.commit()
        else:
            meter.rollback()
        total = meter.total_with_pending
        assert total >= prev_total - 1e-9
        prev_total = total

    b = meter.breakdown
    for value in (b.computation, b.save, b.restore, b.reexecution,
                  b.cpu, b.vm_access, b.nvm_access):
        assert value >= -1e-9
    # Conservation: committed computation + re-execution + still-pending
    # computation account for every charged compute nanojoule.
    assert math.isclose(
        b.computation + b.reexecution + meter.pending.computation,
        charged_compute, rel_tol=1e-9, abs_tol=1e-6,
    )
    assert math.isclose(b.save, charged_save, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(b.restore, charged_restore, rel_tol=1e-9, abs_tol=1e-6)
    # The Fig. 7 split partitions committed computation.
    assert math.isclose(
        b.cpu + b.vm_access + b.nvm_access, b.computation,
        rel_tol=1e-9, abs_tol=1e-6,
    )
