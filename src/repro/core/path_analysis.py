"""Region analysis: iterate over paths, solve RCGs, commit final decisions.

Implements §III-A3: paths are analyzed by decreasing frequency; only the
not-yet-analyzed segments of each new path are explored; decisions are
final; after each path the *energy left* (``eavail_after``) and *energy to
leave* (``eneed_before``) bounds are recomputed and constrain later runs.

A final *consistency pass* handles region edges that no analyzed path
traversed: if the VM-resident sets of the two endpoint atoms differ, a
migration checkpoint is enabled on the edge (allocation may only change at
checkpoints); barrier atoms get enabled checkpoints on every incident edge.
An independent safety check then recomputes worst-case energy-since-last-
checkpoint over the whole region and verifies it never exceeds ``EB``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.core.allocation import SegmentContext
from repro.core.rcg import RCG, Boundary, CheckpointSpec, RCGInfeasibleError, RunResult
from repro.core.region import Atom, InsertPoint, RegionGraph
from repro.errors import InfeasibleBudgetError, PlacementError
from repro.ir.values import MemorySpace


@dataclass
class PlacedCheckpoint:
    """A checkpoint committed on a region edge (or at a region exit)."""

    points: List[InsertPoint]
    save_names: Tuple[str, ...]
    restore_names: Tuple[str, ...]
    alloc_after: Dict[str, MemorySpace]
    #: (src_uid, dst_uid); dst_uid == -1 for an exit checkpoint.
    edge: Tuple[int, int]


@dataclass
class RegionOutcome:
    """Everything the enclosing analysis needs about an analyzed region."""

    checkpoints: List[PlacedCheckpoint]
    atom_alloc: Dict[int, Dict[str, MemorySpace]]
    #: VM residency at each exit atom, keyed by its block label (loop-body
    #: regions expose this so exit-edge checkpoints can save per exit point).
    exit_vm_by_label: Dict[str, Tuple[str, ...]]
    #: Union of every atom's allocation. For *plain* regions this is the
    #: single region-wide allocation that must be imposed on the enclosing
    #: segment (a variable only touched on a cold path still has a final
    #: placement that the outside world must respect).
    combined_alloc: Dict[str, MemorySpace]
    entry_vm: Tuple[str, ...]
    entry_restore: Tuple[str, ...]
    entry_alloc: Dict[str, MemorySpace]
    exit_alloc: Dict[str, MemorySpace]
    exit_vm: Tuple[str, ...]
    exit_dirty: Tuple[str, ...]
    e_to_first: float
    e_from_last: float
    total_energy: float
    vm_bytes_peak: int

    @property
    def plain(self) -> bool:
        return not self.checkpoints


class RegionAnalysis:
    """Analyzes one region (function body or loop body)."""

    def __init__(
        self,
        region: RegionGraph,
        ctx: SegmentContext,
        eb: float,
        live_at_edge: Callable[[int, int], Set[str]],
        exit_live: Set[str],
        exit_need: float,
        exit_is_checkpoint: bool,
    ):
        """``live_at_edge(src_uid, dst_uid)`` returns the variables live on
        a region edge; ``exit_live`` those live when the region exits.
        ``exit_is_checkpoint`` marks the entry function, whose region exit
        is a mandatory checkpoint (the program-end flush)."""
        self.region = region
        self.ctx = ctx
        self.model = ctx.model
        self.eb = eb
        self.live_at_edge = live_at_edge
        self.exit_live = exit_live
        self.exit_need = exit_need
        self.exit_is_checkpoint = exit_is_checkpoint

        self.analyzed: Set[int] = set()
        self.atom_alloc: Dict[int, Dict[str, MemorySpace]] = {}
        self.eavail_after: Dict[int, float] = {}
        self.eneed_before: Dict[int, float] = {}
        #: (src_uid, dst_uid) -> checkpoints on that edge (one per
        #: insertion point when a barrier loop exit needs per-point saves)
        self.enabled: Dict[Tuple[int, int], List[PlacedCheckpoint]] = {}
        self.disabled: Set[Tuple[int, int]] = set()
        self.entry_vm: Tuple[str, ...] = ()
        self.entry_restore: Tuple[str, ...] = ()
        self.entry_alloc: Dict[str, MemorySpace] = {}
        self.exit_alloc: Optional[Dict[str, MemorySpace]] = None
        self.exit_vm: Tuple[str, ...] = ()
        self.exit_dirty: Tuple[str, ...] = ()
        self._exit_checkpoints: List[PlacedCheckpoint] = []

    # ------------------------------------------------------------------ public

    def analyze(self, paths: Sequence[Sequence[int]]) -> RegionOutcome:
        """Analyze paths (most frequent first), then reconcile leftovers."""
        for path in paths:
            self._analyze_path(list(path))
        self._cover_remaining()
        self._consistency_pass()
        self._recompute_bounds()
        return self._outcome()

    # ------------------------------------------------------------- path walk

    def _analyze_path(self, path: List[int]) -> None:
        region = self.region
        if not path or path[0] != region.entry_uid:
            raise PlacementError(
                f"region {region.region_id}: path must start at the entry atom"
            )
        i = 0
        changed = False
        while i < len(path):
            if path[i] in self.analyzed:
                i += 1
                continue
            j = i
            while j < len(path) and path[j] not in self.analyzed:
                j += 1
            self._analyze_run(path, i, j)
            changed = True
            i = j
        if changed:
            self._recompute_bounds()

    def _analyze_run(self, path: List[int], i: int, j: int) -> None:
        region = self.region
        run_uids = path[i:j]
        atoms = [region.atom(uid) for uid in run_uids]
        m = len(atoms)

        # Left boundary.
        if i == 0:
            left = Boundary(
                kind="fresh",
                energy=self.eb,
                alloc=dict(self.entry_alloc) if self.entry_alloc else None,
                has_edge=False,
            )
        else:
            prev = path[i - 1]
            prev_atom = region.atom(prev)
            left = Boundary(
                kind="atom",
                energy=self.eavail_after.get(prev, 0.0),
                alloc=dict(self.atom_alloc.get(prev, {})),
                has_edge=True,
                # A barrier loop's exit residency differs per exit edge, so
                # flowing through the boundary without a checkpoint is not
                # allowed: the edge checkpoint resolves the save per point.
                mandatory_ckpt=prev_atom.is_barrier,
            )

        # Right boundary.
        at_exit = j == len(path)
        if at_exit:
            right = Boundary(
                kind="fresh",
                energy=self.exit_need,
                alloc=dict(self.exit_alloc) if self.exit_alloc else None,
                has_edge=self.exit_is_checkpoint,
                mandatory_ckpt=self.exit_is_checkpoint,
            )
        else:
            nxt = path[j]
            nxt_atom = region.atom(nxt)
            if nxt_atom.is_barrier:
                # A barrier requires a checkpoint on its entry edge.
                alloc_after = dict(nxt_atom.ckpt.entry_forced)  # type: ignore[union-attr]
                for name in nxt_atom.ckpt.entry_vm:  # type: ignore[union-attr]
                    alloc_after[name] = MemorySpace.VM
                right = Boundary(
                    kind="atom",
                    energy=0.0,
                    alloc=alloc_after,
                    has_edge=True,
                    mandatory_ckpt=True,
                )
            else:
                right = Boundary(
                    kind="atom",
                    energy=self.eneed_before.get(nxt, 0.0),
                    alloc=dict(self.atom_alloc.get(nxt, {})),
                    has_edge=True,
                )

        def live_at_position(p: int) -> Set[str]:
            if p <= 0:
                if i == 0:
                    return self.live_at_edge(-1, run_uids[0])
                return self.live_at_edge(path[i - 1], run_uids[0])
            if p >= m:
                if at_exit:
                    return set(self.exit_live)
                return self.live_at_edge(run_uids[-1], path[j])
            return self.live_at_edge(run_uids[p - 1], run_uids[p])

        rcg = RCG(self.ctx, self.eb, atoms, left, right, live_at_position)
        try:
            result = rcg.solve()
        except RCGInfeasibleError as exc:
            raise InfeasibleBudgetError(
                f"region {self.region.region_id}: {exc}"
            ) from exc
        finally:
            tm = telemetry.get()
            if tm is not None:
                tm.counter("placer.rcg.runs").add(1)
                tm.counter("placer.rcg.nodes").add(rcg.stat_nodes)
                tm.counter("placer.rcg.edges").add(rcg.stat_edges)
                tm.counter("placer.rcg.edges_rejected_eb").add(
                    rcg.stat_edges_rejected_eb
                )
                tm.counter("placer.rcg.plans_evaluated").add(rcg.stat_plans)
                tm.counter("placer.rcg.dijkstra_pushes").add(rcg.stat_pushes)
                tm.histogram("placer.rcg.atoms_per_run").record(m)
        self._commit(path, i, j, run_uids, atoms, result, at_exit)

    # --------------------------------------------------------------- commit

    def _commit(
        self,
        path: List[int],
        i: int,
        j: int,
        run_uids: List[int],
        atoms: List[Atom],
        result: RunResult,
        at_exit: bool,
    ) -> None:
        region = self.region
        m = len(atoms)

        # Atom allocations from segment plans.
        for seg in result.segments:
            for uid in seg.atom_uids:
                self.atom_alloc[uid] = dict(seg.plan.alloc)
                self.analyzed.add(uid)
        # Barrier atoms: record their exit-side allocation.
        for atom in atoms:
            if atom.is_barrier:
                assert atom.ckpt is not None
                alloc = dict(atom.ckpt.exit_forced)
                for name in atom.ckpt.exit_vm:
                    alloc[name] = MemorySpace.VM
                self.atom_alloc[atom.uid] = alloc
                self.analyzed.add(atom.uid)
        # Any atom of the run not covered by a segment plan (can happen for
        # the single-atom-run edge cases) gets an all-NVM allocation.
        for uid in run_uids:
            if uid not in self.analyzed:
                self.atom_alloc[uid] = {}
                self.analyzed.add(uid)

        # Entry/exit canonical state.
        if i == 0 and not self.entry_alloc:
            self.entry_alloc = dict(result.entry_alloc)
            self.entry_vm = result.entry_vm
            self.entry_restore = result.entry_restore
        if at_exit and self.exit_alloc is None:
            self.exit_alloc = dict(result.exit_alloc)
            self.exit_vm = result.exit_vm
            self.exit_dirty = result.exit_dirty

        # Enabled checkpoints.
        enabled_set = set(result.enabled_positions)
        for spec in result.checkpoints:
            self._commit_checkpoint(path, i, j, run_uids, spec, at_exit)
        # Disabled positions: every interior edge of the run not enabled.
        for p in range(1, m):
            if p not in enabled_set:
                self.disabled.add((run_uids[p - 1], run_uids[p]))
        if i > 0 and 0 not in enabled_set:
            self.disabled.add((path[i - 1], run_uids[0]))
        if not at_exit and m not in enabled_set:
            self.disabled.add((run_uids[-1], path[j]))

    def _commit_checkpoint(
        self,
        path: List[int],
        i: int,
        j: int,
        run_uids: List[int],
        spec: CheckpointSpec,
        at_exit: bool,
    ) -> None:
        region = self.region
        m = len(run_uids)
        p = spec.position
        save_names = spec.save_names
        restore_names = spec.restore_names
        alloc_after = dict(spec.alloc_after)

        if p == 0:
            if i == 0:
                return  # fresh region entry has no edge (cannot happen)
            edge = (path[i - 1], run_uids[0])
            points = region.edge_points(*edge)
        elif p == m:
            if at_exit:
                # Mandatory exit checkpoint of the entry function: insert
                # before the exit atom's terminator.
                exit_atom = region.atom(run_uids[-1])
                block = region.function.blocks[exit_atom.label]
                point = InsertPoint.at_instruction(
                    exit_atom.label, len(block.instructions) - 1
                )
                self._exit_checkpoints.append(
                    PlacedCheckpoint(
                        points=[point],
                        save_names=save_names,
                        restore_names=(),
                        alloc_after={},
                        edge=(run_uids[-1], -1),
                    )
                )
                return
            edge = (run_uids[-1], path[j])
            points = region.edge_points(*edge)
            nxt_atom = region.atom(path[j])
            if not alloc_after:
                alloc_after = dict(self.atom_alloc.get(path[j], {}))
            if not restore_names:
                restore_names = tuple(
                    sorted(
                        n
                        for n, s in alloc_after.items()
                        if s is MemorySpace.VM
                    )
                )
        else:
            edge = (run_uids[p - 1], run_uids[p])
            points = region.edge_points(*edge)

        self.enabled[edge] = self._placed_for_edge(
            edge, save_names, restore_names, alloc_after
        )

    # ----------------------------------------------------------- coverage

    def _cover_remaining(self) -> None:
        """Analyze paths through every atom no traced path reached
        (§III-A3: "Paths are formed from these never-executed codes ... and
        are analyzed at the end of the algorithm to ensure complete code
        coverage")."""
        pending = [
            uid for uid in self.region.topological() if uid not in self.analyzed
        ]
        guard = 0
        while pending:
            guard += 1
            if guard > len(self.region.atoms) + 8:
                raise PlacementError(
                    f"region {self.region.region_id}: coverage loop failed "
                    "to converge"
                )
            target = pending[0]
            path = self._path_through(target)
            self._analyze_path(path)
            pending = [
                uid
                for uid in self.region.topological()
                if uid not in self.analyzed
            ]

    def _path_through(self, target: int) -> List[int]:
        """A region path entry -> target -> exit (BFS both ways)."""
        region = self.region

        def bfs(start: int, goal_test, neighbors) -> List[int]:
            from collections import deque

            queue = deque([[start]])
            seen = {start}
            while queue:
                current = queue.popleft()
                node = current[-1]
                if goal_test(node):
                    return current
                for nxt in neighbors(node):
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(current + [nxt])
            raise PlacementError(
                f"region {region.region_id}: atom {target} unreachable"
            )

        prefix = bfs(
            target,
            lambda n: n == region.entry_uid,
            lambda n: region.preds[n],
        )
        prefix.reverse()
        suffix = bfs(
            target,
            lambda n: n in region.exit_uids or not region.succs[n],
            lambda n: region.succs[n],
        )
        return prefix + suffix[1:]

    # ------------------------------------------------------ consistency pass

    def _vm_set(self, uid: int) -> Tuple[str, ...]:
        alloc = self.atom_alloc.get(uid, {})
        return tuple(
            sorted(n for n, s in alloc.items() if s is MemorySpace.VM)
        )

    def _consistency_pass(self) -> None:
        """Enable migration checkpoints on edges no analyzed path used when
        the two endpoint allocations disagree, and on every edge incident to
        a barrier atom."""
        region = self.region
        for src, dst in region.edges():
            edge = (src, dst)
            dst_atom = region.atom(dst)
            src_atom = region.atom(src)
            if edge in self.enabled:
                continue
            needs_ckpt = False
            if dst_atom.is_barrier or src_atom.is_barrier:
                needs_ckpt = True
            elif edge in self.disabled:
                if self._vm_set(src) != self._vm_set(dst):
                    # Both endpoints were analyzed on different paths with
                    # different residency: migrate here.
                    needs_ckpt = True
                else:
                    continue
            else:
                # Edge never traversed by an analyzed path.
                if self._vm_set(src) == self._vm_set(dst):
                    self.disabled.add(edge)
                    continue
                needs_ckpt = True
            if not needs_ckpt:
                continue
            self.disabled.discard(edge)
            self.enabled[edge] = self._migration_checkpoint(src, dst)


    def _migration_checkpoint(self, src: int, dst: int) -> List[PlacedCheckpoint]:
        region = self.region
        dst_atom = region.atom(dst)
        live = self.live_at_edge(src, dst)
        src_vm = self._vm_set(src)
        save_names = tuple(
            sorted(
                n
                for n in src_vm
                if n in live and not self.ctx.variables[n].is_const
            )
        )
        if dst_atom.is_barrier:
            assert dst_atom.ckpt is not None
            alloc_after = dict(dst_atom.ckpt.entry_forced)
            for name in dst_atom.ckpt.entry_vm:
                alloc_after[name] = MemorySpace.VM
            restore_names = tuple(dst_atom.ckpt.entry_restore)
        else:
            alloc_after = dict(self.atom_alloc.get(dst, {}))
            restore_names = self._vm_set(dst)
        return self._placed_for_edge(
            (src, dst), save_names, restore_names, alloc_after
        )

    def _placed_for_edge(
        self,
        edge: Tuple[int, int],
        save_names: Tuple[str, ...],
        restore_names: Tuple[str, ...],
        alloc_after: Dict[str, MemorySpace],
    ) -> List[PlacedCheckpoint]:
        """Checkpoints for one region edge. When the edge leaves a barrier
        loop, the VM residency differs per internal exit point, so each
        insertion point gets its own checkpoint saving exactly what is
        resident there (CkptBearing.exit_states)."""
        src, dst = edge
        region = self.region
        points = region.edge_points(src, dst)
        src_atom = region.atom(src)
        states = {}
        default_vm: Tuple[str, ...] = ()
        if src_atom.is_barrier and src_atom.ckpt is not None:
            states = src_atom.ckpt.exit_states
            default_vm = src_atom.ckpt.exit_vm
        if not states:
            return [
                PlacedCheckpoint(
                    points=list(points),
                    save_names=save_names,
                    restore_names=restore_names,
                    alloc_after=dict(alloc_after),
                    edge=edge,
                )
            ]
        live = self.live_at_edge(src, dst)
        result = []
        for point in points:
            label = point.src if point.kind == "edge" else point.label
            vm = states.get(label, default_vm)
            save = tuple(
                sorted(
                    n
                    for n in vm
                    if n in live and not self.ctx.variables[n].is_const
                )
            )
            result.append(
                PlacedCheckpoint(
                    points=[point],
                    save_names=save,
                    restore_names=restore_names,
                    alloc_after=dict(alloc_after),
                    edge=edge,
                )
            )
        return result

    def _edge_save_cost(self, ckpts: List[PlacedCheckpoint]) -> float:
        return max(self._save_cost(c) for c in ckpts)

    def _edge_restore_cost(self, ckpts: List[PlacedCheckpoint]) -> float:
        return max(self._restore_cost(c) for c in ckpts)

    # ------------------------------------------------------------- bounds

    def _atom_energy(self, uid: int) -> float:
        atom = self.region.atom(uid)
        if atom.is_barrier:
            return atom.ckpt.internal_energy  # type: ignore[union-attr]
        return atom.energy_under(self.model, self.atom_alloc.get(uid, {}))

    def _save_cost(self, ckpt: PlacedCheckpoint) -> float:
        payload = sum(
            self.ctx.variables[n].size_bytes for n in ckpt.save_names
        )
        return self.model.save_energy(payload)

    def _restore_cost(self, ckpt: PlacedCheckpoint) -> float:
        payload = sum(
            self.ctx.variables[n].size_bytes for n in ckpt.restore_names
        )
        return self.model.restore_energy(payload)

    def _recompute_bounds(self) -> None:
        """Fixpoint-free DAG passes for eavail_after and eneed_before,
        restricted to analyzed atoms (§III-A3: "The energy left and energy
        to leave are recomputed and propagated after each new path analysis.
        ... the energy left can only decrease while the energy to leave can
        only increase")."""
        region = self.region
        order = [u for u in region.topological() if u in self.analyzed]
        model = self.model

        entry_restore_cost = model.restore_energy(
            sum(self.ctx.variables[n].size_bytes for n in self.entry_restore)
        )

        avail: Dict[int, float] = {}
        for uid in order:
            atom = region.atom(uid)
            in_avail: Optional[float] = None
            if uid == region.entry_uid:
                in_avail = self.eb - entry_restore_cost
            for pred in region.preds[uid]:
                if pred not in self.analyzed:
                    continue
                edge = (pred, uid)
                if edge in self.enabled:
                    candidate = self.eb - self._edge_restore_cost(self.enabled[edge])
                elif edge in self.disabled:
                    candidate = avail.get(pred, self.eb)
                else:
                    continue
                in_avail = candidate if in_avail is None else min(in_avail, candidate)
            if in_avail is None:
                in_avail = self.eb
            if atom.is_barrier:
                assert atom.ckpt is not None
                avail[uid] = self.eb - atom.ckpt.e_from_last
            else:
                avail[uid] = in_avail - self._atom_energy(uid)
        self.eavail_after = avail

        need: Dict[int, float] = {}
        for uid in reversed(order):
            atom = region.atom(uid)
            out_need = 0.0
            is_exit = uid in region.exit_uids or not region.succs[uid]
            if is_exit:
                if self.exit_is_checkpoint:
                    exit_ckpts = [
                        c for c in self._exit_checkpoints if c.edge[0] == uid
                    ]
                    out_need = max(
                        (self._save_cost(c) for c in exit_ckpts),
                        default=model.save_energy(0),
                    )
                else:
                    out_need = self.exit_need
            for succ in region.succs[uid]:
                if succ not in self.analyzed:
                    continue
                edge = (uid, succ)
                if edge in self.enabled:
                    candidate = self._edge_save_cost(self.enabled[edge])
                elif edge in self.disabled:
                    candidate = need.get(succ, 0.0)
                else:
                    continue
                out_need = max(out_need, candidate)
            if atom.is_barrier:
                assert atom.ckpt is not None
                entry_cost = model.restore_energy(
                    sum(
                        self.ctx.variables[n].size_bytes
                        for n in atom.ckpt.entry_restore
                        if n in self.ctx.variables
                    )
                )
                need[uid] = entry_cost + atom.ckpt.e_to_first
            else:
                need[uid] = self._atom_energy(uid) + out_need
        self.eneed_before = need

    # ------------------------------------------------------------- outcome

    def _outcome(self) -> RegionOutcome:
        region = self.region
        model = self.model

        # Safety: every analyzed atom must satisfy avail >= need-after-it...
        # the canonical check: worst energy-since-checkpoint never exceeds EB.
        worst = self._worst_since_checkpoint()
        for uid, value in worst.items():
            if value > self.eb + 1e-6:
                raise InfeasibleBudgetError(
                    f"region {region.region_id}: atom {region.atom(uid)} can "
                    f"accumulate {value:.1f} nJ since the last checkpoint, "
                    f"exceeding EB={self.eb:.1f} nJ"
                )

        e_to_first = self.eneed_before.get(region.entry_uid, 0.0)
        e_from_last = max(
            (worst[uid] for uid in region.exit_uids if uid in worst),
            default=max(worst.values(), default=0.0),
        )
        total = self._total_energy()
        combined_alloc: Dict[str, MemorySpace] = {}
        for uid, alloc in self.atom_alloc.items():
            for name, space in alloc.items():
                previous = combined_alloc.get(name, space)
                if previous is not space and not self.enabled:
                    raise PlacementError(
                        f"region {self.region.region_id}: conflicting final "
                        f"placements for @{name} in a checkpoint-free region"
                    )
                # In regions *with* checkpoints the allocation legitimately
                # differs per segment; combined_alloc is only consumed for
                # plain regions, so keep the first decision.
                combined_alloc.setdefault(name, space)
        exit_vm_by_label = {
            self.region.atom(uid).label: self._vm_set(uid)
            for uid in self.region.exit_uids
        }
        checkpoints = [
            ckpt for group in self.enabled.values() for ckpt in group
        ] + self._exit_checkpoints
        vm_peak = 0
        for alloc in self.atom_alloc.values():
            used = sum(
                self.ctx.variables[n].size_bytes
                for n, s in alloc.items()
                if s is MemorySpace.VM and n in self.ctx.variables
            )
            vm_peak = max(vm_peak, used)
        return RegionOutcome(
            checkpoints=checkpoints,
            atom_alloc=dict(self.atom_alloc),
            exit_vm_by_label=exit_vm_by_label,
            combined_alloc=combined_alloc,
            entry_vm=self.entry_vm,
            entry_restore=self.entry_restore,
            entry_alloc=dict(self.entry_alloc),
            exit_alloc=dict(self.exit_alloc or self.entry_alloc),
            exit_vm=self.exit_vm,
            exit_dirty=self.exit_dirty,
            e_to_first=e_to_first,
            e_from_last=e_from_last,
            total_energy=total,
            vm_bytes_peak=vm_peak,
        )

    def _worst_since_checkpoint(self) -> Dict[int, float]:
        """Worst-case energy accumulated since the last completed checkpoint,
        measured *after* executing each atom."""
        region = self.region
        model = self.model
        entry_restore_cost = model.restore_energy(
            sum(self.ctx.variables[n].size_bytes for n in self.entry_restore)
        )
        worst: Dict[int, float] = {}
        for uid in region.topological():
            if uid not in self.analyzed:
                continue
            atom = region.atom(uid)
            incoming = 0.0
            has_in = False
            if uid == region.entry_uid:
                incoming = entry_restore_cost
                has_in = True
            for pred in region.preds[uid]:
                if pred not in self.analyzed:
                    continue
                edge = (pred, uid)
                if edge in self.enabled:
                    ckpts = self.enabled[edge]
                    candidate = self._edge_restore_cost(ckpts)
                    # The save before the sleep must also fit the previous
                    # window; checked below via the save constraint.
                    prev_total = worst.get(pred, 0.0) + self._edge_save_cost(
                        ckpts
                    )
                    if prev_total > self.eb + 1e-6:
                        raise InfeasibleBudgetError(
                            f"region {region.region_id}: save at edge "
                            f"{edge} overruns EB"
                        )
                else:
                    candidate = worst.get(pred, 0.0)
                incoming = max(incoming, candidate)
                has_in = True
            if not has_in:
                incoming = 0.0
            if atom.is_barrier:
                assert atom.ckpt is not None
                if incoming + atom.ckpt.e_to_first > self.eb + 1e-6:
                    raise InfeasibleBudgetError(
                        f"region {region.region_id}: barrier {atom} entry "
                        "overruns EB"
                    )
                worst[uid] = atom.ckpt.e_from_last
            else:
                worst[uid] = incoming + self._atom_energy(uid)
        return worst

    def _total_energy(self) -> float:
        """Worst-case energy of one region traversal (checkpoint overheads
        included) — the longest path through the analyzed DAG."""
        region = self.region
        total: Dict[int, float] = {}
        for uid in region.topological():
            if uid not in self.analyzed:
                continue
            best_in = 0.0
            for pred in region.preds[uid]:
                if pred not in self.analyzed:
                    continue
                edge = (pred, uid)
                extra = 0.0
                if edge in self.enabled:
                    ckpts = self.enabled[edge]
                    extra = self._edge_save_cost(ckpts) + self._edge_restore_cost(
                        ckpts
                    )
                best_in = max(best_in, total.get(pred, 0.0) + extra)
            total[uid] = best_in + self._atom_energy(uid)
        return max(total.values(), default=0.0)
