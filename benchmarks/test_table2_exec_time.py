"""Bench target regenerating Table II (execution time, minimal failures)."""

from conftest import once

from repro.experiments import table2_exec_time


def test_table2_exec_time(benchmark, ctx):
    result = once(benchmark, lambda: table2_exec_time.run(ctx))
    print()
    print(result.render())
    for row in result.rows:
        # Within 2x of the paper's measured cycle counts.
        assert 0.5 <= row.cycles / row.paper_cycles <= 2.0, row.benchmark
        assert row.failures[1_000] >= row.failures[100_000]
