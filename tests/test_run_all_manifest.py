"""The ``run_all`` CLI plumbing: the ``--json`` run manifest and the
``--trace``/``--trace-dir`` artifact pair.

The real experiment sections take minutes, so these tests swap
``SECTIONS`` for a stub that still exercises the shared context — it
touches the artifact cache and emits a telemetry span — and assert on
the machine-readable outputs end to end.
"""

import json

import pytest

from repro import telemetry
from repro.experiments import run_all
from repro.runner.cache import ArtifactCache
from repro.telemetry.exporters import read_jsonl


class _FakeResult:
    def render(self):
        return "fake section body"


class _FakeSection:
    """Stands in for a table/figure module: ``run(ctx)`` -> renderable."""

    @staticmethod
    def run(ctx):
        if ctx.cache is not None:
            key = ArtifactCache.key("fake")
            ctx.cache.get("run", key)  # miss
            ctx.cache.put("run", key, 42)
            ctx.cache.get("run", key)  # hit
        telemetry.count("fake.sections")
        return _FakeResult()


@pytest.fixture(autouse=True)
def _stub_sections(monkeypatch):
    monkeypatch.setattr(run_all, "SECTIONS", [("Fake", _FakeSection)])
    yield
    assert telemetry.get() is None, "run_all leaked the telemetry handle"
    telemetry.disable()


def test_json_manifest_without_tracing(tmp_path, capfd):
    manifest_path = tmp_path / "out" / "manifest.json"
    run_all.main([
        "--benchmarks", "crc",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(manifest_path),
    ])
    out = capfd.readouterr()
    assert "fake section body" in out.out
    assert "manifest:" in out.err

    manifest = json.loads(manifest_path.read_text())
    assert manifest["schema_version"] == run_all.MANIFEST_SCHEMA
    assert manifest["tool"] == "repro.experiments.run_all"
    assert manifest["benchmarks"] == ["crc"]
    assert manifest["jobs"] == 1
    assert manifest["failure_model"] == "energy"
    assert manifest["trace"] is None
    assert manifest["metrics"] is None, "no metrics rollup without --metrics"

    [section] = manifest["sections"]
    assert section["title"] == "Fake"
    assert section["seconds"] >= 0
    assert manifest["total_seconds"] >= section["seconds"]

    fp = manifest["fingerprints"]
    assert set(fp["modules"]) == {"crc"} and set(fp["inputs"]) == {"crc"}
    assert isinstance(fp["platform"], str) and fp["platform"]

    cache = manifest["cache"]
    assert cache["hits"] == 1 and cache["misses"] == 1
    assert cache["categories"]["run"]["stores"] == 1


def test_trace_dir_implies_tracing_and_writes_artifacts(tmp_path, capfd):
    trace_dir = tmp_path / "traces"
    manifest_path = tmp_path / "manifest.json"
    run_all.main([
        "--benchmarks", "crc",
        "--no-cache",
        "--trace-dir", str(trace_dir),
        "--json", str(manifest_path),
    ])
    err = capfd.readouterr().err
    assert "trace (events):" in err

    records = read_jsonl(trace_dir / "run_all.jsonl")
    assert records[0]["meta"]["tool"] == "repro.experiments.run_all"
    spans = [r for r in records if r.get("kind") == "span"]
    assert any(
        r["name"] == "experiments.section"
        and r["attrs"]["section"] == "Fake"
        for r in spans
    )
    metrics = {
        m["name"]: m["value"] for m in records[-1]["metrics"]
        if m["kind"] == "counter"
    }
    assert metrics["fake.sections"] == 1

    chrome = json.loads((trace_dir / "run_all.chrome.json").read_text())
    assert chrome["traceEvents"]

    manifest = json.loads(manifest_path.read_text())
    assert manifest["cache"] is None
    assert manifest["trace"] == {
        "jsonl": str(trace_dir / "run_all.jsonl"),
        "chrome": str(trace_dir / "run_all.chrome.json"),
    }


def test_cache_counters_are_mirrored_into_the_trace(tmp_path):
    trace_dir = tmp_path / "traces"
    run_all.main([
        "--benchmarks", "crc",
        "--cache-dir", str(tmp_path / "cache"),
        "--trace-dir", str(trace_dir),
    ])
    records = read_jsonl(trace_dir / "run_all.jsonl")
    metrics = {
        m["name"]: m["value"] for m in records[-1]["metrics"]
        if m["kind"] == "counter"
    }
    assert metrics["cache.hits"] == 1
    assert metrics["cache.misses"] == 1
    assert metrics["cache.stores"] == 1
