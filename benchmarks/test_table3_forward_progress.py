"""Bench target regenerating Table III (forward-progress matrix)."""

from conftest import once

from repro.experiments import table3_forward_progress


def test_table3_forward_progress(benchmark, ctx):
    result = once(benchmark, lambda: table3_forward_progress.run(ctx))
    print()
    print(result.render())
    # Paper shape: ROCKCLIMB and SCHEMATIC always terminate.
    for technique in ("rockclimb", "schematic"):
        for tbpf, cells in result.cells[technique].items():
            assert all(cells.values()), (technique, tbpf)
    # MEMENTOS cannot survive the smallest budget everywhere.
    assert not all(result.cells["mementos"][1_000].values())
