"""Unit tests for the generic forward dataflow solver."""

import pytest

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import solve_forward
from repro.errors import AnalysisError
from repro.ir import I32, IRBuilder, Module


def diamond_function():
    """entry -> {left, right} -> join -> ret, plus an unreachable block.

    Returns (func, labels) with labels for left/right/join/dead.
    """
    module = Module("m")
    builder = IRBuilder(module)
    func = builder.start_function("main")
    x = builder.local("x", I32)
    left = builder.new_block("left")
    right = builder.new_block("right")
    join = builder.new_block("join")
    dead = builder.new_block("dead")
    cond = builder.emit_load(x)
    builder.emit_branch(cond, left, right)
    builder.position_at(left)
    builder.emit_jump(join)
    builder.position_at(right)
    builder.emit_jump(join)
    builder.position_at(join)
    builder.emit_ret()
    builder.position_at(dead)
    builder.emit_ret()
    labels = {
        "left": left.label,
        "right": right.label,
        "join": join.label,
        "dead": dead.label,
    }
    return func, labels


def loop_function():
    """entry -> header -> {body -> header, exit}."""
    module = Module("m")
    builder = IRBuilder(module)
    func = builder.start_function("main")
    x = builder.local("x", I32)
    header = builder.new_block("header")
    body = builder.new_block("body")
    exit_ = builder.new_block("exit")
    builder.emit_jump(header)
    builder.position_at(header)
    cond = builder.emit_load(x)
    builder.emit_branch(cond, body, exit_)
    builder.position_at(body)
    builder.emit_jump(header)
    builder.position_at(exit_)
    builder.emit_ret()
    labels = {"header": header.label, "body": body.label, "exit": exit_.label}
    return func, labels


def collect_labels(label, state):
    """Transfer that appends the block's own label to a frozenset state."""
    return state | {label}


class TestSolveForward:
    def test_may_join_collects_both_branches(self):
        func, labels = diamond_function()
        solution = solve_forward(
            CFG(func), frozenset(), collect_labels, lambda a, b: a | b
        )
        join = labels["join"]
        assert solution.block_in[join] == {
            "entry", labels["left"], labels["right"]
        }
        assert solution.block_out[join] == solution.block_in[join] | {join}

    def test_must_join_keeps_only_common_facts(self):
        func, labels = diamond_function()
        solution = solve_forward(
            CFG(func), frozenset(), collect_labels, lambda a, b: a & b
        )
        # Neither branch block is on *every* path into the join.
        assert solution.block_in[labels["join"]] == {"entry"}

    def test_unreachable_block_receives_no_state(self):
        func, labels = diamond_function()
        calls = []

        def transfer(label, state):
            calls.append(label)
            return state | {label}

        solution = solve_forward(
            CFG(func), frozenset(), transfer, lambda a, b: a | b
        )
        assert labels["dead"] not in solution.block_in
        assert labels["dead"] not in solution.block_out
        assert labels["dead"] not in calls

    def test_loop_reaches_fixpoint(self):
        func, labels = loop_function()
        solution = solve_forward(
            CFG(func), frozenset(), collect_labels, lambda a, b: a | b
        )
        # The back edge feeds body facts into the header.
        assert solution.block_in[labels["header"]] == {
            "entry", labels["header"], labels["body"]
        }
        assert solution.passes >= 2  # at least one extra sweep for the loop

    def test_entry_state_seeds_the_entry_block(self):
        func, labels = diamond_function()
        solution = solve_forward(
            CFG(func),
            frozenset({"seed"}),
            collect_labels,
            lambda a, b: a | b,
        )
        assert "seed" in solution.block_in["entry"]
        assert "seed" in solution.block_in[labels["join"]]

    def test_infinite_chain_raises_instead_of_spinning(self):
        func, labels = loop_function()

        def transfer(label, state):
            # Monotone but over an infinite-height lattice: the loop grows
            # the counter forever.
            return state + 1 if label == labels["header"] else state

        with pytest.raises(AnalysisError, match="did not converge"):
            solve_forward(CFG(func), 0, transfer, max)
