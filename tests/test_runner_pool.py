"""Edge cases for the process-pool fan-out helpers.

``resolve_jobs`` parses user-facing ``--jobs`` values and must reject
nonsense loudly (a silently-wrong worker count skews every timing
manifest); ``available_cpus`` must respect scheduler affinity, not the
raw machine size; ``parallel_map`` must behave identically in its
serial and pooled modes (ordering, initializer semantics, exception
propagation).
"""

import os

import pytest

from repro.runner.pool import available_cpus, parallel_map, resolve_jobs


class TestAvailableCpus:
    def test_positive(self):
        assert available_cpus() >= 1

    def test_respects_affinity_mask(self):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("no sched_getaffinity on this platform")
        assert available_cpus() == len(os.sched_getaffinity(0))

    def test_never_exceeds_machine(self):
        assert available_cpus() <= (os.cpu_count() or 1)


class TestResolveJobs:
    def test_none_and_empty_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs("") == 1

    def test_plain_ints_and_numeric_strings(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("4") == 4

    def test_whitespace_and_case_insensitive_auto(self):
        assert resolve_jobs("auto") == available_cpus()
        assert resolve_jobs("  AuTo  ") == available_cpus()

    def test_auto_matches_affinity_not_machine(self):
        # The point of the fix: "auto" follows the affinity mask, so a
        # cgroup-restricted container never oversubscribes.
        assert resolve_jobs("auto") == available_cpus()

    def test_zero_and_negative_rejected(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            resolve_jobs("0")
        with pytest.raises(ValueError, match="must be >= 1"):
            resolve_jobs(0)
        with pytest.raises(ValueError, match="must be >= 1"):
            resolve_jobs(-2)

    def test_floats_rejected(self):
        # int("1.5") raises — a fractional worker count must not be
        # silently truncated.
        with pytest.raises(ValueError):
            resolve_jobs("1.5")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs("many")


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise RuntimeError(f"boom at {x}")
    return x


_WORKER_BIAS = 0


def _init_bias(value):
    global _WORKER_BIAS
    _WORKER_BIAS = value


def _biased(x):
    return x + _WORKER_BIAS


class TestParallelMap:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_empty_items(self, jobs):
        assert parallel_map(_square, [], jobs=jobs) == []

    def test_empty_items_never_spawn_pool(self):
        # jobs > 1 with no items must not pay pool startup; the
        # initializer contract still holds (invoked locally).
        calls = []
        assert parallel_map(
            _square, [], jobs=8, initializer=calls.append, initargs=(1,)
        ) == []
        assert calls == [1]

    def test_preserves_order_serial(self):
        assert parallel_map(_square, range(6), jobs=1) == [
            0, 1, 4, 9, 16, 25
        ]

    def test_preserves_order_pooled(self):
        assert parallel_map(_square, range(6), jobs=2) == [
            0, 1, 4, 9, 16, 25
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exception_propagates(self, jobs):
        with pytest.raises(RuntimeError, match="boom at 3"):
            parallel_map(_raise_on_three, range(6), jobs=jobs)

    def test_initializer_equivalence(self):
        # The serial path must run the initializer too, so functions
        # reading process globals see the same state as pool workers.
        serial = parallel_map(
            _biased, range(4), jobs=1, initializer=_init_bias, initargs=(10,)
        )
        pooled = parallel_map(
            _biased, range(4), jobs=2, initializer=_init_bias, initargs=(10,)
        )
        assert serial == pooled == [10, 11, 12, 13]

    def test_single_item_runs_inline(self):
        # One item never justifies a pool: min(jobs, len(items)) == 1.
        assert parallel_map(_square, [7], jobs=4) == [49]
