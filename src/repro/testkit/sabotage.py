"""Deliberately broken placements, used to prove the oracle has teeth.

A testkit that only ever reports "zero violations" is indistinguishable
from one that checks nothing. :func:`strip_checkpoint` removes one
checkpoint from a transformed module — re-creating exactly the class of
bug the oracles exist for: an inter-checkpoint segment whose worst-case
energy exceeds the budget (forward-progress violation under the energy
budget) and/or a non-idempotent re-execution window (memory anomaly under
injected faults).

The memory-consistency battery extends the idea to the CONS rule family
(:mod:`repro.staticcheck.consistency`), one generator per failure class:

- :func:`delete_restore` empties a checkpoint's ``restore_vars`` while
  leaving its VM allocation in place (CONS003/CONS004 — live volatile
  state the restore provably misses);
- :func:`inject_repeated_read` marks a pure-input global as a volatile
  environment input, turning its existing in-region reads into repeated
  samples (CONS002);
- :func:`dirty_nv_write` plants a read-increment-write of an NVM scalar
  right after an existing exposed read, creating a definite
  non-idempotent replay window (CONS001).

All three follow :func:`strip_checkpoint`'s candidate-order + validate
idiom, so callers pick victims that are *interesting* (statically
convictable and dynamically latent) rather than trivially broken.

The translation-validation battery extends it again, to the TV rule
family (:mod:`repro.staticcheck.transval`) — each generator re-creates a
*transform* bug (a placement pass that changed continuous-power
semantics while inserting checkpoints), so the sabotaged module both
fails the static refinement proof and diverges from the reference even
on the guarantee schedule:

- :func:`reorder_observable_store` moves a store past a dependent load
  and a later observable effect (TV002 — same effects, wrong order);
- :func:`leak_privatized_local` privatizes one block's accesses to a
  global into an unsynchronized function-local copy (TV003 — the
  correspondence is violated, the private value leaks);
- :func:`drop_store` deletes a store outright, as if checkpoint motion
  swallowed it (TV001 — a source effect with no counterpart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.ir.instructions import (
    BinOp,
    Checkpoint,
    CondCheckpoint,
    Load,
    Opcode,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Const, MemorySpace, Register, Variable


@dataclass
class CheckpointSite:
    """Location of one checkpoint instruction in a module."""

    function: str
    block: str
    index: int
    ckpt_id: int
    is_boot: bool  # first instruction of the entry function
    is_exit: bool  # immediately before a return


def find_checkpoints(module: Module) -> List[CheckpointSite]:
    """All checkpoint instructions, in deterministic module order."""
    sites: List[CheckpointSite] = []
    entry = module.entry_function
    for func in module.functions.values():
        for block in func.blocks.values():
            for index, inst in enumerate(block.instructions):
                if not isinstance(inst, (Checkpoint, CondCheckpoint)):
                    continue
                nxt = (
                    block.instructions[index + 1]
                    if index + 1 < len(block.instructions)
                    else None
                )
                sites.append(
                    CheckpointSite(
                        function=func.name,
                        block=block.label,
                        index=index,
                        ckpt_id=inst.ckpt_id,
                        is_boot=(
                            func.name == entry.name
                            and block.label == entry.entry.label
                            and index == 0
                        ),
                        is_exit=isinstance(nxt, Ret),
                    )
                )
    return sites


def _strip_at(module: Module, site: CheckpointSite) -> Module:
    broken = module.clone()
    block = broken.functions[site.function].blocks[site.block]
    del block.instructions[site.index]
    return broken


def strip_checkpoint(
    module: Module,
    ckpt_id: Optional[int] = None,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, CheckpointSite]:
    """Return a clone of ``module`` with one checkpoint removed.

    ``ckpt_id`` selects the victim; by default the first checkpoint that
    is neither the boot checkpoint (whose removal just changes the restart
    point) nor an exit checkpoint (whose flush the emulator backstops) —
    i.e. a load-bearing mid-program placement. Raises ``ValueError`` when
    no checkpoint qualifies.

    Some checkpoints do double duty: a SCHEMATIC ``alloc_after`` migration
    rides on a checkpoint, so removing it leaves later VM accesses with no
    residency and the program crashes even on continuous power — a bug the
    oracle flags trivially, but not the subtle kind the sweep exists for.
    ``validate`` filters for the interesting victims: candidates are tried
    in order and the first whose broken module still passes ``validate``
    (e.g. runs cleanly under continuous power) is chosen, falling back to
    the first candidate when none passes.
    """
    sites = find_checkpoints(module)
    if ckpt_id is not None:
        matches = [s for s in sites if s.ckpt_id == ckpt_id]
        if not matches:
            raise ValueError(f"no checkpoint with id {ckpt_id}")
        return _strip_at(module, matches[0]), matches[0]
    candidates = [s for s in sites if not s.is_boot and not s.is_exit]
    candidates += [s for s in sites if not s.is_boot and s.is_exit]
    if not candidates:
        raise ValueError("module has no removable checkpoint")
    if validate is not None:
        for site in candidates:
            broken = _strip_at(module, site)
            if validate(broken):
                return broken, site
    return _strip_at(module, candidates[0]), candidates[0]


# -- memory-consistency battery -------------------------------------------


def delete_restore(
    module: Module,
    ckpt_id: Optional[int] = None,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, CheckpointSite, Tuple[str, ...]]:
    """Return a clone with one checkpoint's ``restore_vars`` emptied.

    The VM allocation (``alloc_after``) is left untouched, so the module
    still runs — under the emulator's forgiving ``"image"`` restore the
    bug is even invisible, which is the point: only the strict
    ``"metadata"`` restore semantics (and the CONS003/CONS004 rules)
    convict it. Candidates are checkpoints whose restore set intersects
    their VM allocation; returns the broken module, the victim site and
    the restore set that was deleted.
    """
    sites = find_checkpoints(module)

    def removable(site: CheckpointSite) -> Tuple[str, ...]:
        inst = (
            module.functions[site.function]
            .blocks[site.block]
            .instructions[site.index]
        )
        vm_after = {
            name
            for name, space in inst.alloc_after.items()
            if space is MemorySpace.VM
        }
        return tuple(n for n in inst.restore_vars if n in vm_after)

    def break_at(site: CheckpointSite) -> Module:
        broken = module.clone()
        inst = (
            broken.functions[site.function]
            .blocks[site.block]
            .instructions[site.index]
        )
        inst.restore_vars = ()
        return broken

    if ckpt_id is not None:
        matches = [s for s in sites if s.ckpt_id == ckpt_id]
        if not matches:
            raise ValueError(f"no checkpoint with id {ckpt_id}")
        return break_at(matches[0]), matches[0], removable(matches[0])
    candidates = [s for s in sites if removable(s)]
    if not candidates:
        raise ValueError("no checkpoint restores any VM-resident variable")
    if validate is not None:
        for site in candidates:
            broken = break_at(site)
            if validate(broken):
                return broken, site, removable(site)
    site = candidates[0]
    return break_at(site), site, removable(site)


def mark_volatile_input(module: Module, name: str) -> Module:
    """Return a clone with global ``name`` flagged as a volatile
    environment input. Apply the *same* marking to the reference module
    when convicting dynamically — both runs must sample the same world.
    """
    marked = module.clone()
    if name not in marked.globals:
        raise ValueError(f"no global named {name!r}")
    var = marked.globals[name]
    if var.is_const:
        raise ValueError(f"global @{name} is const; cannot be an input")
    var.volatile_input = True
    return marked


def inject_repeated_read(
    module: Module,
    var_name: Optional[str] = None,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, str]:
    """Return a clone where one pure-input global (loaded somewhere,
    stored nowhere) is a volatile environment input.

    Every existing read of it becomes an environment sample; any such
    read inside a re-executable region is a repeated-input-read bug
    (CONS002) that a replayed schedule convicts dynamically. Candidates
    are tried in module order through ``validate``.
    """
    loaded: List[str] = []
    stored = set()
    for func in module.functions.values():
        for block in func.blocks.values():
            for inst in block.instructions:
                if isinstance(inst, Load):
                    if (
                        inst.var.name in module.globals
                        and inst.var.name not in loaded
                    ):
                        loaded.append(inst.var.name)
                elif isinstance(inst, Store):
                    stored.add(inst.var.name)
    candidates = [
        name
        for name in loaded
        if name not in stored and not module.globals[name].is_const
    ]
    if var_name is not None:
        if var_name not in candidates:
            raise ValueError(
                f"global @{var_name} is not a pure input "
                f"(candidates: {candidates})"
            )
        candidates = [var_name]
    if not candidates:
        raise ValueError("module has no pure-input global to mark")
    if validate is not None:
        for name in candidates:
            marked = mark_volatile_input(module, name)
            if validate(marked):
                return marked, name
    return mark_volatile_input(module, candidates[0]), candidates[0]


def dirty_nv_write(
    module: Module,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, str]:
    """Return a clone with a read-increment-write of an NVM scalar
    planted immediately after an existing NVM read of it.

    The injected triplet re-creates the canonical WAR bug *after* the
    placement pass ran, so no checkpoint separates the existing read
    from the new write: the region is definitely non-idempotent
    (CONS001) and a power failure inside it double-increments. Placing
    the write after an *exposed* read matters — injected after a
    definite write it would be statically shadowed and dynamically
    self-healing. Returns the broken module and a ``function/block``
    description of the injection site.
    """
    candidates: List[Tuple[str, str, int, str]] = []
    for func in module.functions.values():
        for block in func.blocks.values():
            for index, inst in enumerate(block.instructions):
                if not isinstance(inst, Load):
                    continue
                var = inst.var
                if (
                    inst.space is MemorySpace.NVM
                    and not var.is_array
                    and not var.is_ref
                    and not var.is_const
                    and not var.volatile_input
                    and var.name in module.globals
                ):
                    candidates.append(
                        (func.name, block.label, index, var.name)
                    )
    if not candidates:
        raise ValueError("module has no NVM scalar read to dirty")

    def break_at(site: Tuple[str, str, int, str]) -> Module:
        fname, label, index, name = site
        broken = module.clone()
        var = broken.globals[name]
        t_read = Register("__dirty_r", var.type)
        t_inc = Register("__dirty_w", var.type)
        block = broken.functions[fname].blocks[label]
        block.instructions[index + 1:index + 1] = [
            Load(dest=t_read, var=var, space=MemorySpace.NVM),
            BinOp(
                op=Opcode.ADD, dest=t_inc, lhs=t_read,
                rhs=Const(1, var.type),
            ),
            Store(var=var, index=None, value=t_inc, space=MemorySpace.NVM),
        ]
        return broken

    if validate is not None:
        for site in candidates:
            broken = break_at(site)
            if validate(broken):
                return broken, f"{site[0]}/.{site[1]}[{site[2]}]@{site[3]}"
    site = candidates[0]
    return break_at(site), f"{site[0]}/.{site[1]}[{site[2]}]@{site[3]}"


# -- translation-validation battery ----------------------------------------


def _observable_scalar(var, module: Module) -> bool:
    """A store/load target whose accesses are observable effects for the
    translation validator: a non-const, non-ref global scalar."""
    return (
        var.name in module.globals
        and not var.is_array
        and not var.is_ref
        and not var.is_const
        and not var.volatile_input
    )


def _redefines(inst, reg) -> bool:
    return isinstance(reg, Register) and reg in getattr(inst, "defs", list)()


def reorder_observable_store(
    module: Module,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, str]:
    """Return a clone with one observable store moved later in its block,
    past a dependent load and past another observable effect.

    This is the transform bug a store-motion pass with a broken
    dependence check would produce: the moved store still happens, with
    the same value, but (a) an intervening load of the same variable now
    observes the *old* value — the continuous-power outputs change, so
    the dynamic oracle convicts on any schedule — and (b) the block's
    observable effects occur in a different order than the source's, so
    translation validation convicts the pair as TV002.
    """
    candidates: List[Tuple[str, str, int, int, str]] = []
    for func in module.functions.values():
        for block in func.blocks.values():
            insts = block.instructions
            for i, first in enumerate(insts):
                if not isinstance(first, Store) or first.index is not None:
                    continue
                if not _observable_scalar(first.var, module):
                    continue
                saw_load = None
                for k in range(i + 1, len(insts)):
                    inst = insts[k]
                    # The motion must not change the moved store's value.
                    if _redefines(inst, first.value):
                        break
                    if (
                        isinstance(inst, Load)
                        and inst.var.name == first.var.name
                        and inst.index is None
                    ):
                        saw_load = k
                        continue
                    if isinstance(inst, Store) and inst.var.name == first.var.name:
                        break  # a second store to @X would change the multiset
                    if (
                        saw_load is not None
                        and isinstance(inst, Store)
                        and _observable_scalar(inst.var, module)
                    ):
                        candidates.append(
                            (func.name, block.label, i, k, first.var.name)
                        )
                        break

    if not candidates:
        raise ValueError(
            "module has no store/dependent-load/store pattern to reorder"
        )

    def break_at(site: Tuple[str, str, int, int, str]) -> Module:
        fname, label, i, k, _name = site
        broken = module.clone()
        insts = broken.functions[fname].blocks[label].instructions
        moved = insts.pop(i)
        insts.insert(k, moved)  # after the k-th instruction, post-pop
        return broken

    def describe(site: Tuple[str, str, int, int, str]) -> str:
        fname, label, i, k, name = site
        return f"{fname}/.{label}: store @{name} moved from [{i}] past [{k}]"

    if validate is not None:
        for site in candidates:
            broken = break_at(site)
            if validate(broken):
                return broken, describe(site)
    return break_at(candidates[0]), describe(candidates[0])


def leak_privatized_local(
    module: Module,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, str]:
    """Return a clone where one block's accesses to a global scalar are
    redirected to a fresh, never-synchronized function-local copy.

    This is the bug a privatization/renaming pass would plant by
    forgetting both the init-copy and the writeback: the block reads the
    private copy (zero, not the global's live value) and its stores never
    reach the global. Translation validation convicts the variable
    correspondence (TV003 — the private value leaks into observable
    effects / the privatized local's stores vanish), and the continuous
    outputs change, so the dynamic oracle convicts on any schedule.
    """
    candidates: List[Tuple[str, str, str]] = []
    seen = set()
    for func in module.functions.values():
        for block in func.blocks.values():
            for inst in block.instructions:
                if not isinstance(inst, Load) or inst.index is not None:
                    continue
                if not _observable_scalar(inst.var, module):
                    continue
                key = (func.name, block.label, inst.var.name)
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)
    if not candidates:
        raise ValueError("module has no global scalar load to privatize")

    def break_at(site: Tuple[str, str, str]) -> Module:
        fname, label, name = site
        broken = module.clone()
        func = broken.functions[fname]
        source = broken.globals[name]
        priv = Variable(
            name=f"{fname}.{name}__priv",
            type=source.type,
            count=source.count,
        )
        func.add_variable(priv, bare_name=f"{name}__priv")
        for inst in func.blocks[label].instructions:
            if isinstance(inst, (Load, Store)) and inst.var.name == name:
                inst.var = priv
                # A local copy in NVM keeps residency rules out of the
                # picture — the leak is purely a correspondence bug.
                inst.space = MemorySpace.NVM
        return broken

    def describe(site: Tuple[str, str, str]) -> str:
        fname, label, name = site
        return f"{fname}/.{label}: @{name} privatized without writeback"

    if validate is not None:
        for site in candidates:
            broken = break_at(site)
            if validate(broken):
                return broken, describe(site)
    return break_at(candidates[0]), describe(candidates[0])


def drop_store(
    module: Module,
    validate: Optional[Callable[[Module], bool]] = None,
) -> Tuple[Module, str]:
    """Return a clone with one observable store deleted outright — the
    bug checkpoint motion would plant by hoisting a checkpoint over a
    store and dropping the store on the way.

    Candidates that share a block with a checkpoint are tried first (the
    checkpoint-motion shape proper); translation validation convicts the
    vanished effect as TV001, and the final NVM state misses the store,
    so the dynamic oracle convicts on any completed schedule.
    """
    near_ckpt: List[Tuple[str, str, int, str]] = []
    rest: List[Tuple[str, str, int, str]] = []
    for func in module.functions.values():
        for block in func.blocks.values():
            has_ckpt = any(
                isinstance(inst, (Checkpoint, CondCheckpoint))
                for inst in block.instructions
            )
            for index, inst in enumerate(block.instructions):
                if not isinstance(inst, Store) or inst.index is not None:
                    continue
                if not _observable_scalar(inst.var, module):
                    continue
                site = (func.name, block.label, index, inst.var.name)
                (near_ckpt if has_ckpt else rest).append(site)
    candidates = near_ckpt + rest
    if not candidates:
        raise ValueError("module has no observable store to drop")

    def break_at(site: Tuple[str, str, int, str]) -> Module:
        fname, label, index, _name = site
        broken = module.clone()
        del broken.functions[fname].blocks[label].instructions[index]
        return broken

    def describe(site: Tuple[str, str, int, str]) -> str:
        fname, label, index, name = site
        return f"{fname}/.{label}[{index}]: store @{name} dropped"

    if validate is not None:
        for site in candidates:
            broken = break_at(site)
            if validate(broken):
                return broken, describe(site)
    return break_at(candidates[0]), describe(candidates[0])
