"""Summaries exchanged between analyzed sub-structures.

SCHEMATIC analyzes loops bottom-up and functions callee-first; once a loop or
callee is analyzed, its decisions are *final* and are imposed on the
enclosing analysis (§III-B). Two shapes of summary exist:

- **plain** (:class:`SharedAlloc`): the sub-structure contains no checkpoint,
  so all of it shares one memory allocation and it can participate in an
  enclosing segment like a single basic block ("we can treat the function
  call to f_callee as a single basic block", §III-B1). It imposes the
  placement of the variables it accesses (``forced``) on the segment.
- **checkpoint-bearing** (:class:`CkptBearing`): the sub-structure contains
  internal checkpoints, so the enclosing analysis must respect the energy to
  its first internal checkpoint and the energy from its last one
  ("we must take into account the memory allocation and energy required to
  execute f_callee up to the first checkpoint(s) ... as well as the memory
  allocation and remaining energy when exiting", §III-B1). This repo places
  enabled checkpoints on both sides of such an atom, a conservative
  simplification documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.accesses import AccessCounts
from repro.ir.values import MemorySpace


@dataclass
class SharedAlloc:
    """Constraints a *plain* (checkpoint-free) atom imposes on its segment.

    Attributes:
        forced: variable -> placement decided by the inner analysis. The
            enclosing segment must use the same placement for these
            variables (allocation can only change at checkpoints).
        vm_names: the forced variables placed in VM (they occupy SVM).
        restore_names: forced-VM variables whose first inner access reads
            their value — the segment's starting checkpoint must restore
            them.
        dirty_names: forced-VM variables written inside — the segment's
            ending checkpoint must save them if live.
        private_reserve: additional VM bytes used transiently inside (e.g.
            a callee's callees), reserved from the segment's capacity.
    """

    forced: Dict[str, MemorySpace] = field(default_factory=dict)
    vm_names: Tuple[str, ...] = ()
    restore_names: Tuple[str, ...] = ()
    dirty_names: Tuple[str, ...] = ()
    private_reserve: int = 0


@dataclass
class CkptBearing:
    """Summary of an atom with internal checkpoints (a barrier atom).

    ``e_to_first`` is the worst-case energy from atom entry through the
    completion of the first internal save (or to atom exit on
    checkpoint-free internal paths); ``e_from_last`` the worst-case energy
    accumulated since the last internal checkpoint when the atom exits.

    ``entry_vm``/``entry_restore``/``entry_forced`` describe the memory
    allocation the atom expects when it starts (the checkpoint placed just
    before the atom applies it); the ``exit_*`` fields describe the state
    the checkpoint just after the atom must save.
    """

    e_to_first: float
    e_from_last: float
    internal_energy: float  # total energy of one traversal (for edge costs)
    entry_forced: Dict[str, MemorySpace] = field(default_factory=dict)
    entry_vm: Tuple[str, ...] = ()
    entry_restore: Tuple[str, ...] = ()
    exit_forced: Dict[str, MemorySpace] = field(default_factory=dict)
    exit_vm: Tuple[str, ...] = ()
    exit_dirty: Tuple[str, ...] = ()
    #: For loop barriers: VM residency at each internal exit point, keyed by
    #: the exiting block's label. A loop can be left from its header (zero
    #: more iterations to run), from a break, or past its latch — each with
    #: a different allocation; the checkpoint on each exit edge must save
    #: exactly what is resident *there*. Empty for call barriers (functions
    #: enforce a single exit allocation, §III-B1).
    exit_states: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    private_reserve: int = 0


@dataclass
class FunctionResult:
    """Final analysis result for one function, consumed by its callers.

    Attributes:
        name: function name.
        base_energy: energy of one call that does not depend on the caller's
            allocation choices: instruction cycles plus accesses to the
            function's own (privately allocated) variables, under the
            function's final allocation. Worst-case (loop bounds).
        shared_counts: caller-visible access counts (globals + ref-param
            formals), used when the caller aggregates segment counts.
        shared: plain summary, or None when the function has checkpoints.
        ckpt: barrier summary, or None when the function is plain.
        vm_reserved: peak VM bytes used by the function's private variables
            (incl. its callees) while it runs.
    """

    name: str
    base_energy: float
    shared_counts: AccessCounts
    shared: Optional[SharedAlloc] = None
    ckpt: Optional[CkptBearing] = None
    vm_reserved: int = 0

    @property
    def has_checkpoints(self) -> bool:
        return self.ckpt is not None


@dataclass
class LoopResult:
    """Final analysis result for one loop, consumed by the enclosing region.

    Same two shapes as :class:`FunctionResult`. ``numit`` is Algorithm 1's
    conditional-checkpoint period (None when no back-edge checkpoint is
    needed); ``iteration_energy`` is the worst-case energy of one iteration
    under the loop's final allocation.
    """

    header: str
    maxiter: int
    iteration_energy: float
    numit: Optional[int]
    total_energy: float
    shared: Optional[SharedAlloc] = None
    ckpt: Optional[CkptBearing] = None

    @property
    def has_checkpoints(self) -> bool:
        return self.ckpt is not None
