"""Tests for the transformation pass (edge splitting, space rewriting) and
the dynamic forward-progress verifier."""

import pytest

from repro.core.transform import _CheckpointFactory, _split_edge
from repro.core.verify import verify_forward_progress
from repro.emulator import run_continuous
from repro.energy import msp430fr5969_model
from repro.errors import PlacementError
from repro.frontend import compile_source
from repro.ir import (
    Branch,
    Checkpoint,
    CondCheckpoint,
    Jump,
    MemorySpace,
    validate_module,
)
from tests.helpers import SUM_LOOP_SRC, platform, sum_loop_inputs

MODEL = msp430fr5969_model()


class TestCheckpointFactory:
    def test_unique_ids(self):
        factory = _CheckpointFactory()
        a = factory.make((), (), {})
        b = factory.make((), (), {})
        assert a.ckpt_id != b.ckpt_id

    def test_full_vs_conditional(self):
        factory = _CheckpointFactory()
        full = factory.make((), (), {}, every=1)
        cond = factory.make((), (), {}, every=4)
        assert isinstance(full, Checkpoint)
        assert isinstance(cond, CondCheckpoint) and cond.every == 4

    def test_sets_sorted(self):
        factory = _CheckpointFactory()
        ckpt = factory.make(("b", "a"), ("z", "y"), {})
        assert ckpt.save_vars == ("a", "b")
        assert ckpt.restore_vars == ("y", "z")

    def test_skippable_flag(self):
        factory = _CheckpointFactory()
        assert factory.make((), (), {}).skippable
        assert not factory.make((), (), {}, skippable=False).skippable


class TestEdgeSplitting:
    def _module(self):
        return compile_source(
            """
            u32 out; u32 sel;
            void main() {
                if (sel != 0) { out = 1; } else { out = 2; }
            }
            """
        )

    def test_split_jump_edge(self):
        module = self._module()
        func = module.functions["main"]
        then_label = next(l for l in func.blocks if l.startswith("then"))
        join_label = func.blocks[then_label].successor_labels()[0]
        ckpt = Checkpoint(99)
        _split_edge(func, then_label, join_label, ckpt)
        new_target = func.blocks[then_label].successor_labels()[0]
        assert new_target != join_label
        new_block = func.blocks[new_target]
        assert new_block.instructions[0] is ckpt
        assert isinstance(new_block.terminator, Jump)
        validate_module(module)

    def test_split_branch_edge(self):
        module = self._module()
        func = module.functions["main"]
        entry = func.entry
        term = entry.terminator
        assert isinstance(term, Branch)
        target = term.if_true
        _split_edge(func, entry.label, target, Checkpoint(50))
        assert term.if_true != target
        validate_module(module)

    def test_split_wrong_edge_rejected(self):
        module = self._module()
        func = module.functions["main"]
        with pytest.raises(PlacementError):
            _split_edge(func, func.entry.label, "nonexistent", Checkpoint(1))

    def test_semantics_preserved_after_split(self):
        module = self._module()
        ref = run_continuous(module.clone(), MODEL, inputs={"sel": [1]})
        func = module.functions["main"]
        entry = func.entry
        term = entry.terminator
        ckpt = Checkpoint(7)
        _split_edge(func, entry.label, term.if_true, ckpt)
        for block in func.blocks.values():
            for inst in block:
                if hasattr(inst, "space") and inst.space is MemorySpace.AUTO:
                    inst.space = MemorySpace.NVM
        report = run_continuous(module, MODEL, inputs={"sel": [1]})
        assert report.outputs == ref.outputs


class TestVerifier:
    def test_ok_on_correct_placement(self):
        from repro.core import Schematic
        from repro.core.placement import SchematicConfig

        module = compile_source(SUM_LOOP_SRC)
        plat = platform(eb=1_000.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: sum_loop_inputs(seed=run)
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size,
            inputs=sum_loop_inputs(),
        )
        assert verdict.ok
        assert verdict.power_failures == 0

    def test_detects_undersized_budget(self):
        """Compiling for a large budget but *running* on a small one must
        be flagged: the guarantee is budget-specific."""
        from repro.core import Schematic
        from repro.core.placement import SchematicConfig

        module = compile_source(SUM_LOOP_SRC)
        plat = platform(eb=100_000.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: sum_loop_inputs(seed=run)
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, 150.0, plat.vm_size,
            inputs=sum_loop_inputs(),
        )
        assert not verdict.ok

    def test_detects_output_divergence(self):
        """A deliberately corrupted transform (checkpoint dropping a dirty
        VM variable) must be caught by the output comparison."""
        from repro.core import Schematic
        from repro.core.placement import SchematicConfig

        module = compile_source(SUM_LOOP_SRC)
        plat = platform(eb=250.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: sum_loop_inputs(seed=run)
        )
        # Corrupt: clear every checkpoint's save set.
        broken = result.module.clone()
        saw_saves = False
        for func in broken.functions.values():
            for block in func.blocks.values():
                for inst in block:
                    if isinstance(inst, (Checkpoint, CondCheckpoint)):
                        if inst.save_vars:
                            saw_saves = True
                        inst.save_vars = ()
        if not saw_saves:
            pytest.skip("placement has no variable saves to corrupt")
        # A never-saved VM loop counter resets at every checkpoint window,
        # so the corrupted program may loop forever; the instruction budget
        # bounds the run and reports it as not completed.
        verdict = verify_forward_progress(
            broken, module, MODEL, plat.eb, plat.vm_size,
            inputs=sum_loop_inputs(),
            max_instructions=2_000_000,
        )
        assert not verdict.ok
