"""Unit tests for the MiniC parser (AST shapes and diagnostics)."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse
from repro.frontend import ast_nodes as ast


class TestTopLevel:
    def test_global_scalar(self):
        program = parse("u32 counter;")
        (decl,) = program.globals
        assert decl.name == "counter" and decl.count == 1
        assert decl.init is None

    def test_global_scalar_with_init(self):
        (decl,) = parse("i16 x = -5;").globals
        assert decl.init == [-5]

    def test_global_array(self):
        (decl,) = parse("u8 buf[10];").globals
        assert decl.count == 10

    def test_global_array_with_init(self):
        (decl,) = parse("u8 t[3] = {1, 2, 3};").globals
        assert decl.init == [1, 2, 3]

    def test_array_splat_initializer(self):
        (decl,) = parse("u8 t[4] = {7};").globals
        assert decl.init == [7, 7, 7, 7]

    def test_array_initializer_length_mismatch(self):
        with pytest.raises(ParseError):
            parse("u8 t[3] = {1, 2};")

    def test_const_requires_initializer(self):
        with pytest.raises(ParseError):
            parse("const u8 t[3];")

    def test_const_array(self):
        (decl,) = parse("const u16 t[2] = {1, 2};").globals
        assert decl.is_const

    def test_const_size_expression_folded(self):
        (decl,) = parse("u8 t[4 * 8];").globals
        assert decl.count == 32

    def test_function_with_params(self):
        program = parse("u32 f(u32 a, i32 buf[]) { return a; }")
        (func,) = program.functions
        assert func.params[0].name == "a" and not func.params[0].is_array
        assert func.params[1].is_array

    def test_void_function(self):
        (func,) = parse("void f() { }").functions
        assert func.return_type is None


class TestStatements:
    def _body(self, stmts: str):
        return parse(f"void main() {{ {stmts} }}").functions[0].body

    def test_var_decl_with_init(self):
        (stmt,) = self._body("u32 x = 4;")
        assert isinstance(stmt, ast.VarDecl)
        assert isinstance(stmt.initializer, ast.IntLiteral)

    def test_local_array_with_init(self):
        (stmt,) = self._body("u8 t[2] = {1, 2};")
        assert stmt.array_init == [1, 2]

    def test_assignment_ops(self):
        for op_text, op in [
            ("+=", "+"), ("-=", "-"), ("*=", "*"), ("/=", "/"),
            ("%=", "%"), ("&=", "&"), ("|=", "|"), ("^=", "^"),
            ("<<=", "<<"), (">>=", ">>"), ("=", ""),
        ]:
            (stmt,) = self._body(f"x {op_text} 1;")
            assert isinstance(stmt, ast.Assign)
            assert stmt.op == op

    def test_array_assignment(self):
        (stmt,) = self._body("a[3] = 1;")
        assert isinstance(stmt.index, ast.IntLiteral)

    def test_incdec(self):
        inc, dec = self._body("i++; j--;")
        assert isinstance(inc, ast.IncDec) and inc.op == "+"
        assert dec.op == "-"

    def test_if_else(self):
        (stmt,) = self._body("if (x) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_braces(self):
        (stmt,) = self._body("if (x) y = 1;")
        assert len(stmt.then_body) == 1

    def test_while_with_maxiter(self):
        (stmt,) = self._body("@maxiter(8) while (x) { x -= 1; }")
        assert isinstance(stmt, ast.While)
        assert stmt.maxiter == 8

    def test_maxiter_requires_loop(self):
        with pytest.raises(ParseError, match="maxiter"):
            self._body("@maxiter(8) x = 1;")

    def test_for_full(self):
        (stmt,) = self._body("for (i32 i = 0; i < 4; i++) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.step, ast.IncDec)

    def test_for_empty_clauses(self):
        (stmt,) = self._body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue_return(self):
        stmts = self._body("for (;;) { break; } return;")
        assert isinstance(stmts[1], ast.Return)

    def test_call_statement(self):
        (stmt,) = self._body("f(1, 2);")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.CallExpr)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            self._body("x = 1")


class TestExpressions:
    def _expr(self, text: str):
        (stmt,) = parse(f"void main() {{ x = {text}; }}").functions[0].body
        return stmt.value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_shift_under_compare(self):
        expr = self._expr("a << 2 < b")
        assert expr.op == "<"
        assert expr.lhs.op == "<<"

    def test_precedence_bitor_loosest(self):
        expr = self._expr("a | b & c")
        assert expr.op == "|"
        assert expr.rhs.op == "&"

    def test_parentheses(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_logical_short_circuit_nodes(self):
        expr = self._expr("a && b || c")
        assert isinstance(expr, ast.LogicalExpr) and expr.op == "||"
        assert isinstance(expr.lhs, ast.LogicalExpr) and expr.lhs.op == "&&"

    def test_unary_chain(self):
        expr = self._expr("-~!a")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_cast(self):
        expr = self._expr("(u8) x")
        assert isinstance(expr, ast.CastExpr)
        assert expr.type_name == "u8"

    def test_cast_binds_tighter_than_binop(self):
        expr = self._expr("(u8) x + 1")
        assert expr.op == "+"
        assert isinstance(expr.lhs, ast.CastExpr)

    def test_call_in_expression(self):
        expr = self._expr("f(a) + 1")
        assert isinstance(expr.lhs, ast.CallExpr)

    def test_index_expression(self):
        expr = self._expr("buf[i + 1]")
        assert isinstance(expr, ast.IndexExpr)
        assert expr.index.op == "+"

    def test_left_associativity(self):
        expr = self._expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"
