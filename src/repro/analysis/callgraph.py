"""Call graph construction and the callee-first analysis order.

SCHEMATIC analyzes "functions through a traversal of the function call
graph, in reverse topological order, such that every function is always
analyzed before its caller", and "currently handles non-recursive functions
only" (§III-B1). Recursion raises :class:`RecursionUnsupportedError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import RecursionUnsupportedError
from repro.ir.module import Module


class CallGraph:
    """Static call graph of a module."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, List[str]] = {
            name: func.called_functions()
            for name, func in module.functions.items()
        }
        self.callers: Dict[str, List[str]] = {name: [] for name in self.callees}
        for caller, callees in self.callees.items():
            for callee in callees:
                self.callers[callee].append(caller)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {name: WHITE for name in self.callees}

        def visit(name: str, stack: List[str]) -> None:
            color[name] = GRAY
            stack.append(name)
            for callee in self.callees[name]:
                if color[callee] == GRAY:
                    cycle = stack[stack.index(callee):] + [callee]
                    raise RecursionUnsupportedError(
                        "recursive call chain: " + " -> ".join(cycle)
                    )
                if color[callee] == WHITE:
                    visit(callee, stack)
            stack.pop()
            color[name] = BLACK

        for name in self.callees:
            if color[name] == WHITE:
                visit(name, [])

    def reverse_topological(self) -> List[str]:
        """Callee-first order: every function appears after all functions it
        calls (leaf functions first). Unreachable functions are included."""
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for callee in self.callees[name]:
                visit(callee)
            order.append(name)

        # Start from the entry so its subtree gets a natural order, then
        # sweep up anything unreachable.
        if self.module.entry in self.callees:
            visit(self.module.entry)
        for name in self.callees:
            visit(name)
        return order

    def leaf_functions(self) -> List[str]:
        return [name for name, callees in self.callees.items() if not callees]

    def reachable_from_entry(self) -> Set[str]:
        seen: Set[str] = set()
        work = [self.module.entry]
        while work:
            name = work.pop()
            if name in seen or name not in self.callees:
                continue
            seen.add(name)
            work.extend(self.callees[name])
        return seen

    def __repr__(self) -> str:
        return f"CallGraph({len(self.callees)} functions)"
