"""basicmath — integer square/cube roots and angle conversions
(MiBench2 ``basicmath``, integer-only re-expression).

The original computes cubic roots, integer square roots and degree/radian
conversions; we do the same in fixed point: a bit-by-bit ``isqrt``, a
Newton ``icbrt`` and Q12 angle conversions over an input vector.
"""

from __future__ import annotations

from repro.programs.base import Benchmark

N = 64
PASSES = 2

SOURCE = f"""
u32 values[{N}];
u32 out_sqrt[{N}];
u32 out_cbrt[{N}];
i32 out_deg[{N}];
u32 total;

u32 isqrt(u32 x) {{
    u32 op = x;
    u32 res = 0;
    u32 one = 0x40000000;
    @maxiter(16)
    while (one > op) {{
        one >>= 2;
    }}
    @maxiter(16)
    while (one != 0) {{
        if (op >= res + one) {{
            op -= res + one;
            res = (res >> 1) + one;
        }} else {{
            res >>= 1;
        }}
        one >>= 2;
    }}
    return res;
}}

u32 icbrt(u32 x) {{
    if (x == 0) {{
        return 0;
    }}
    u32 guess = x;
    if (guess > 1625) {{
        guess = 1625;  /* cbrt(2^32) upper bound */
    }}
    @maxiter(64)
    while (guess * guess * guess > x) {{
        u32 next = (2 * guess + x / (guess * guess)) / 3;
        if (next >= guess) {{
            break;
        }}
        guess = next;
    }}
    return guess;
}}

/* Q12 fixed point: 180/pi = 57.2958 -> 234684/4096, pi/180 -> 71.57/4096 */
i32 rad_to_deg_q12(i32 rad_q12) {{
    return (i32) (((rad_q12 * 14668) >> 8));
}}

i32 deg_to_rad_q12(i32 deg_q12) {{
    return (i32) ((deg_q12 * 71) >> 12);
}}

void main() {{
    u32 acc = 0;
    for (i32 pass = 0; pass < {PASSES}; pass++) {{
        for (i32 i = 0; i < {N}; i++) {{
            u32 v = values[i] + (u32) pass * 977;
            u32 s = isqrt(v);
            u32 c = icbrt(v);
            i32 d = rad_to_deg_q12((i32) (v & 0x3fff));
            i32 r = deg_to_rad_q12(d);
            out_sqrt[i] = s;
            out_cbrt[i] = c;
            out_deg[i] = d - r;
            acc += s + c + (u32) d;
        }}
    }}
    total = acc;
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="basicmath",
        source=SOURCE,
        input_vars={"values": 1 << 26},
        output_vars=["out_sqrt", "out_cbrt", "out_deg", "total"],
    )
