"""Unit tests for the IR validator."""

import pytest

from repro.errors import IRValidationError
from repro.frontend import compile_source
from repro.ir import (
    Branch,
    Call,
    Const,
    I32,
    IRBuilder,
    Jump,
    Load,
    Module,
    Register,
    Ret,
    Store,
    Variable,
    validate_module,
)


def minimal_module() -> Module:
    module = Module("m")
    builder = IRBuilder(module)
    builder.start_function("main")
    builder.emit_ret()
    return module


class TestValidateModule:
    def test_minimal_passes(self):
        validate_module(minimal_module())

    def test_missing_entry_function(self):
        module = Module("m", entry="nope")
        with pytest.raises(IRValidationError, match="entry"):
            validate_module(module)

    def test_entry_with_params_rejected(self):
        from repro.ir import Param

        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main", [Param("x", I32)])
        func.add_variable(Variable("main.x", I32), bare_name="x")
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="entry function"):
            validate_module(module)

    def test_unterminated_block(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("main")
        # no terminator
        with pytest.raises(IRValidationError, match="terminator"):
            validate_module(module)

    def test_unknown_jump_target(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        func.entry.append(Jump("missing"))
        with pytest.raises(IRValidationError, match="unknown target"):
            validate_module(module)

    def test_undefined_register_use(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        func.entry.append(Ret(None))
        ghost = Register("ghost", I32)
        func.entry.instructions.insert(0, Store(Variable("x", I32), None, ghost))
        func.add_variable(Variable("x", I32), bare_name="x")
        # fix the store's variable to be the registered one
        func.entry.instructions[0] = Store(func.variables["x"], None, ghost)
        with pytest.raises(IRValidationError, match="undefined register"):
            validate_module(module)

    def test_unknown_variable(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        stray = Variable("stray", I32)
        func.entry.append(Store(stray, None, Const(1, I32)))
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="unknown variable"):
            validate_module(module)

    def test_call_arity_mismatch(self):
        module = Module("m")
        builder = IRBuilder(module)
        from repro.ir import Param

        callee = builder.start_function("callee", [Param("a", I32)], I32)
        callee.add_variable(Variable("callee.a", I32), bare_name="a")
        builder.emit_store(callee.variables["a"], callee.arg_registers()[0])
        builder.emit_ret(Const(0, I32))
        builder.start_function("main")
        builder.block.append(Call(None, "callee", []))
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="args"):
            validate_module(module)

    def test_call_unknown_function(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("main")
        builder.block.append(Call(None, "ghost", []))
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="unknown function"):
            validate_module(module)

    def test_void_return_with_value(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("main")
        builder.block.append(Ret(Const(1, I32)))
        with pytest.raises(IRValidationError, match="void"):
            validate_module(module)

    def test_missing_return_value(self):
        module = Module("m")
        builder = IRBuilder(module)
        builder.start_function("f", return_type=I32)
        builder.block.append(Ret(None))
        builder.start_function("main")
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="missing return value"):
            validate_module(module)

    def test_unreachable_block(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        builder.emit_ret()
        orphan = func.add_block("orphan")
        orphan.append(Ret(None))
        with pytest.raises(IRValidationError, match="unreachable"):
            validate_module(module)

    def test_terminator_mid_block(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        func.entry.instructions.append(Ret(None))
        func.entry.instructions.append(Ret(None))
        with pytest.raises(IRValidationError):
            validate_module(module)

    def test_frontend_output_validates(self):
        from tests.helpers import CALLS_SRC

        module = compile_source(CALLS_SRC, "calls")
        validate_module(module)


class TestDefiniteAssignment:
    """A register use must be dominated by a definition — a definition
    somewhere in the function is not enough."""

    def test_definition_on_one_branch_only_rejected(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        x = builder.local("x", I32)
        y = builder.local("y", I32)
        left = builder.new_block("left")
        right = builder.new_block("right")
        join = builder.new_block("join")
        cond = builder.emit_load(x)
        builder.emit_branch(cond, left, right)
        builder.position_at(left)
        t = builder.emit_load(x)  # %t defined on this path only
        builder.emit_jump(join)
        builder.position_at(right)
        builder.emit_jump(join)
        builder.position_at(join)
        builder.emit_store(y, t)
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="possibly-undefined"):
            validate_module(module)

    def test_definition_on_both_branches_accepted(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        x = builder.local("x", I32)
        y = builder.local("y", I32)
        left = builder.new_block("left")
        right = builder.new_block("right")
        join = builder.new_block("join")
        cond = builder.emit_load(x)
        builder.emit_branch(cond, left, right)
        builder.position_at(left)
        builder.emit_store(y, builder.emit_load(x))
        builder.emit_jump(join)
        builder.position_at(right)
        builder.emit_store(y, builder.emit_load(x))
        builder.emit_jump(join)
        builder.position_at(join)
        builder.emit_ret()
        validate_module(module)

    def test_definition_before_loop_covers_the_body(self):
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        x = builder.local("x", I32)
        y = builder.local("y", I32)
        header = builder.new_block("header")
        body = builder.new_block("body")
        exit_ = builder.new_block("exit")
        t = builder.emit_load(x)  # dominates the loop
        builder.emit_jump(header)
        builder.position_at(header)
        cond = builder.emit_load(x)
        builder.emit_branch(cond, body, exit_)
        builder.position_at(body)
        builder.emit_store(y, t)
        builder.emit_jump(header)
        builder.position_at(exit_)
        builder.emit_ret()
        validate_module(module)

    def test_loop_carried_definition_rejected(self):
        # The body uses a register the body itself defines *later*: fine
        # on the second trip, garbage on the first.
        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        x = builder.local("x", I32)
        y = builder.local("y", I32)
        header = builder.new_block("header")
        body = builder.new_block("body")
        exit_ = builder.new_block("exit")
        builder.emit_jump(header)
        builder.position_at(header)
        cond = builder.emit_load(x)
        builder.emit_branch(cond, body, exit_)
        builder.position_at(body)
        t = builder.fresh_reg(I32)
        func.blocks[builder.block.label].append(Store(y, None, t))
        func.blocks[builder.block.label].append(Load(t, x, None))
        builder.emit_jump(header)
        builder.position_at(exit_)
        builder.emit_ret()
        with pytest.raises(IRValidationError, match="possibly-undefined"):
            validate_module(module)


class TestModuleWideCheckpointIds:
    """Checkpoint ids key snapshots, testkit labels and sabotage victims
    by bare id — uniqueness must hold across the whole module."""

    def _two_functions(self, first_id: int, second_id: int) -> Module:
        from repro.ir import Checkpoint

        module = Module("m")
        builder = IRBuilder(module)
        helper = builder.start_function("helper")
        builder.emit_ret()
        helper.entry.instructions.insert(0, Checkpoint(ckpt_id=first_id))
        builder.start_function("main")
        builder.emit_call("helper")
        builder.emit_ret()
        main = module.functions["main"]
        main.entry.instructions.insert(0, Checkpoint(ckpt_id=second_id))
        return module

    def test_duplicate_id_across_functions_rejected(self):
        module = self._two_functions(7, 7)
        with pytest.raises(IRValidationError, match="duplicate checkpoint id"):
            validate_module(module)

    def test_duplicate_id_within_one_function_rejected(self):
        from repro.ir import Checkpoint

        module = Module("m")
        builder = IRBuilder(module)
        func = builder.start_function("main")
        builder.emit_ret()
        func.entry.instructions.insert(0, Checkpoint(ckpt_id=3))
        func.entry.instructions.insert(1, Checkpoint(ckpt_id=3))
        with pytest.raises(IRValidationError, match="duplicate checkpoint id"):
            validate_module(module)

    def test_distinct_ids_accepted(self):
        validate_module(self._two_functions(1, 2))
