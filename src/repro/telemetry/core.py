"""The telemetry core: spans, events and a metrics registry.

One process-global :class:`Telemetry` handle collects everything a traced
run produces:

- **spans** — named, timed phases (the placer pipeline, exporter work),
  stamped on the real-time clock in microseconds since :func:`enable`;
- **events** — instantaneous structured records (checkpoint saves,
  power failures, certified segment bounds), stamped either on the real
  clock or on an *emulated* time axis the caller supplies (the
  interpreter passes its :class:`~repro.emulator.power.PowerManager`
  timeline, in cycles);
- **metrics** — cheap named counters, gauges and histograms (RCG sizes,
  cache hits, Dijkstra pops), owned by a
  :class:`~repro.telemetry.metrics.MetricsRegistry` the handle carries.
  Enabling tracing installs that registry as the process-global metrics
  registry too (``metrics.get()``), so a trace always embeds its
  aggregated numbers; metrics can also be enabled *without* tracing via
  :func:`repro.telemetry.metrics.enable` for sidecar-only runs.

Zero overhead when disabled, by construction: the handle is ``None``
until :func:`enable` is called, every instrumentation site guards with
``tm = telemetry.get()`` / ``if tm is not None``, and the emulator's hot
loop is not instrumented at all (only the cold checkpoint/power-failure
paths are). ``tests/test_telemetry_identity.py`` pins the bit-identity
of emulator output with telemetry off, and ``tools/bench_engine.py``
the wall-clock.

Scoped attributes (:meth:`Telemetry.scope`) attach evaluation-grid
coordinates — benchmark, technique, EB — to every span and event emitted
inside the ``with`` block, so one trace of a full grid stays
self-describing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from . import metrics as metrics_mod
from .metrics import (  # noqa: F401 - re-exported for compatibility
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Version stamped into every trace header; bump when the event schema
#: changes incompatibly (readers reject newer traces they cannot parse).
#: v2: metric records moved to the fixed-bucket registry shape
#: (histograms carry explicit ``bounds`` + dense ``buckets`` lists).
SCHEMA_VERSION = 2

#: The two standard tracks. Spans default to the compiler track (real
#: time, µs); runtime events carry emulated cycles on their own track.
TRACK_COMPILER = "compiler"
TRACK_RUNTIME = "runtime"
TRACK_STATIC = "static"


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-value-wins named measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Min/max/sum/count plus power-of-two buckets of observed values."""

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        #: bucket index b counts values in (2**(b-1), 2**b]; b=0 holds
        #: everything <= 1.
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        bucket = 0
        v = value
        while v > 1.0:
            v /= 2.0
            bucket += 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class _Span:
    """A live span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tm", "name", "track", "attrs", "start_us")

    def __init__(self, tm: "Telemetry", name: str, track: str,
                 attrs: Dict[str, Any]):
        self._tm = tm
        self.name = name
        self.track = track
        self.attrs = attrs
        self.start_us = 0

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after it opened."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.start_us = self._tm.now_us()
        return self

    def __exit__(self, *exc) -> bool:
        self._tm._record_span(self)
        return False


class _NullSpan:
    """The shared do-nothing span returned by the module helpers when
    telemetry is disabled — call sites need no branching."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Telemetry:
    """One trace in the making: events + metrics + scope stack."""

    def __init__(self, meta: Optional[Dict[str, Any]] = None,
                 clock_ns: Optional[Callable[[], int]] = None):
        """``clock_ns`` overrides the real-time source (tests use a fake
        clock for deterministic golden traces)."""
        self._clock_ns = clock_ns or time.perf_counter_ns
        self._t0_ns = self._clock_ns()
        self.meta: Dict[str, Any] = dict(meta or {})
        self.events: List[Dict[str, Any]] = []
        #: The aggregated-numbers half of the trace. ``enable`` installs
        #: this registry as the process-global one, so ``metrics.get()``
        #: and the tracing handle always agree on where counts land.
        self.metrics: MetricsRegistry = MetricsRegistry(meta=self.meta)
        #: Stack of merged scope-attribute dicts; the top applies to every
        #: span/event recorded while it is pushed.
        self._scopes: List[Dict[str, Any]] = []
        self._run_seq = 0

    # ------------------------------------------------------------- time

    def now_us(self) -> int:
        """Microseconds of real time since this handle was created."""
        return (self._clock_ns() - self._t0_ns) // 1000

    # ------------------------------------------------------------- scopes

    @contextmanager
    def scope(self, **attrs: Any) -> Iterator[None]:
        """Attach ``attrs`` to everything recorded inside the block."""
        merged = dict(self._scopes[-1]) if self._scopes else {}
        merged.update(attrs)
        self._scopes.append(merged)
        try:
            yield
        finally:
            self._scopes.pop()

    def scope_attrs(self) -> Dict[str, Any]:
        return self._scopes[-1] if self._scopes else {}

    # ------------------------------------------------------------- spans

    def span(self, name: str, track: str = TRACK_COMPILER,
             **attrs: Any) -> _Span:
        return _Span(self, name, track, attrs)

    def _record_span(self, span: _Span) -> None:
        record: Dict[str, Any] = {
            "kind": "span",
            "track": span.track,
            "name": span.name,
            "ts": span.start_us,
            "dur": max(self.now_us() - span.start_us, 0),
        }
        attrs = dict(self.scope_attrs())
        attrs.update(span.attrs)
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    # ------------------------------------------------------------- events

    def event(self, name: str, track: str = TRACK_COMPILER,
              ts: Optional[int] = None, **fields: Any) -> None:
        """Record an instantaneous event. ``ts`` defaults to real time;
        runtime emitters pass their emulated-cycles timeline instead."""
        record: Dict[str, Any] = {
            "kind": "event",
            "track": track,
            "name": name,
            "ts": self.now_us() if ts is None else int(ts),
        }
        attrs = dict(self.scope_attrs())
        attrs.update(fields)
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def next_run_id(self) -> int:
        """A fresh id for one emulation run: runtime timelines restart at
        zero per run, so each run gets its own sub-track."""
        self._run_seq += 1
        return self._run_seq

    # ------------------------------------------------------------- metrics

    # All metric storage lives in the registry; these delegates keep the
    # historical ``tm.counter(...)`` call sites working unchanged.

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str, agg: str = "max") -> Gauge:
        return self.metrics.gauge(name, agg=agg)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    def metrics_snapshot(self) -> List[Dict[str, Any]]:
        return self.metrics.snapshot()


# ---------------------------------------------------------------- global


_ACTIVE: Optional[Telemetry] = None


def enable(meta: Optional[Dict[str, Any]] = None,
           clock_ns: Optional[Callable[[], int]] = None) -> Telemetry:
    """Install (and return) the process-global handle. Re-enabling
    replaces the previous handle. The handle's metrics registry is
    installed as the process-global one too (tracing implies metrics)."""
    global _ACTIVE
    _ACTIVE = Telemetry(meta=meta, clock_ns=clock_ns)
    metrics_mod._install(_ACTIVE.metrics)
    return _ACTIVE


def disable() -> Optional[Telemetry]:
    """Uninstall the global handle; returns it so callers can export.
    The shared metrics registry is uninstalled only if it is still the
    active one (a later, unrelated ``metrics.enable`` wins)."""
    global _ACTIVE
    tm = _ACTIVE
    _ACTIVE = None
    if tm is not None:
        metrics_mod._uninstall(tm.metrics)
    return tm


def get() -> Optional[Telemetry]:
    """The active handle, or None when telemetry is off. Instrumentation
    sites bind this once per compile/run and guard every emission."""
    return _ACTIVE


@contextmanager
def enabled(meta: Optional[Dict[str, Any]] = None,
            clock_ns: Optional[Callable[[], int]] = None) -> Iterator[Telemetry]:
    """``with telemetry.enabled() as tm:`` — enable for a block (tests)."""
    tm = enable(meta=meta, clock_ns=clock_ns)
    try:
        yield tm
    finally:
        disable()


def span(name: str, track: str = TRACK_COMPILER, **attrs: Any):
    """Module-level convenience: a real span when enabled, the shared
    no-op span otherwise. One dict-build + None-check when disabled."""
    tm = _ACTIVE
    if tm is None:
        return NULL_SPAN
    return tm.span(name, track=track, **attrs)


def count(name: str, n: int = 1) -> None:
    tm = _ACTIVE
    if tm is not None:
        tm.counter(name).add(n)
