"""Threaded-code compilation of pre-decoded basic blocks.

PR 3's pre-decode removed per-step type dispatch from the hot loop; this
module removes the loop itself. Each basic block's pre-decoded
``(handler, cost, inst, label)`` entries are compiled once, at decode
time, into *segments*: maximal straight-line runs of non-checkpoint
instructions. A segment carries

- a handful of *superinstruction* closures (``ops``) — consecutive
  simple instructions are fused into one generated Python function that
  shares a single ``frame.registers`` load and a single (zero-cost on
  CPython 3.11) ``try`` frame, with operand kinds, AUTO-space
  resolution, wrap masks and constant operands all resolved at compile
  time; a comparison feeding the block's terminating branch becomes a
  single compare-and-branch superinstruction;
- the aggregate accounting the interpreter charges *per segment*
  instead of per step: total cycles plus the per-instruction energy
  lists whose left-folds reproduce the per-step ``+=`` sequences
  bit-identically (see :meth:`repro.emulator.power.PowerManager.
  peek_block` for why batching cannot move a failure point);
- enough metadata (``widths``, ``costs``, ``start``) to reconcile the
  exact per-step state when a fused op raises mid-segment
  (:meth:`repro.emulator.interpreter.Interpreter.
  _reconcile_segment_fault`).

Bit-identity ground rules the generated code obeys:

- Register values are always stored wrapped to the destination
  register's type, so a copy between same-typed storage elides the wrap
  (``wrap`` is the identity on in-range values). Comparison results
  (0/1) are never wrapped, matching ``IntType.wrap``'s identity there.
- Error behaviour is byte-identical: register reads convert ``KeyError``
  into the interpreter's exact uninitialized-register message
  (``raise ... from None``), and all memory traffic goes through the
  live ``MemoryState.read``/``write`` bound methods so bounds checks,
  unknown-variable and VM-residency diagnostics are the interpreter's
  own.
- Evaluation order within an instruction (lhs before rhs, index before
  value) and across fused instructions is the interpreter's order, so a
  mid-segment exception fires at the same sub-instruction with the same
  partial effects.

Generated sources are cached process-wide by their text: two blocks
with the same *shape* (instruction kinds, operand forms, type widths)
share one compiled factory and differ only in the bound constants, so
per-interpreter compilation is mostly dict lookups after warm-up.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import EmulationError
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Move,
    Opcode,
    Ret,
    Store,
    UnOp,
    UnaryOpcode,
)
from repro.ir.values import Const, Register, VarRef

__all__ = ["Segment", "compile_blocks"]

_CMP_OPS = frozenset(
    (Opcode.EQ, Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE)
)
_CMP_SYM = {
    Opcode.EQ: "==",
    Opcode.NE: "!=",
    Opcode.LT: "<",
    Opcode.LE: "<=",
    Opcode.GT: ">",
    Opcode.GE: ">=",
}
_ARITH_SYM = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
}

#: Maximum number of IR instructions fused into one generated closure.
FUSE_LIMIT = 10


def _cdiv(a: int, b: int) -> int:
    """C-style truncating division (the interpreter's DIV semantics)."""
    if b == 0:
        raise EmulationError("division by zero")
    result = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        result = -result
    return result


def _crem(a: int, b: int) -> int:
    """C-style remainder paired with :func:`_cdiv`."""
    if b == 0:
        raise EmulationError("remainder by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return a - quotient * b


class Segment:
    """One compiled straight-line run of a basic block."""

    __slots__ = (
        "start",
        "end_index",
        "n",
        "cycles",
        "energies",
        "cpu",
        "vm_e",
        "nvm_e",
        "vm_n",
        "nvm_n",
        "run",
        "ops",
        "widths",
        "costs",
    )

    def __init__(self, start, end_index, ops, widths, costs):
        self.start = start
        #: Index the frame resumes at when the segment ends without a
        #: control transfer (None when the last op set block/index itself).
        self.end_index = end_index
        self.ops = ops
        self.widths = widths
        self.costs = costs
        self.n = sum(widths)
        self.cycles = sum(c[0] for c in costs)
        # Per-instruction energy streams: the interpreter folds these
        # with sum(list, start) — the same left-to-right C-double adds
        # the per-step loop performs — so batched accounting is
        # bit-identical to stepping (floats are not associative; the
        # *order* is what these tuples preserve).
        self.energies = tuple(float(c[1]) for c in costs)
        self.cpu = tuple(
            float(c[1] - c[2]) if c[4] else float(c[1]) for c in costs
        )
        self.vm_e = tuple(float(c[2]) for c in costs if c[4] and c[3])
        self.nvm_e = tuple(float(c[2]) for c in costs if c[4] and not c[3])
        self.vm_n = len(self.vm_e)
        self.nvm_n = len(self.nvm_e)
        self.run = _make_runner(ops)


# -- generated-code caches ---------------------------------------------------

_CHUNK_CACHE: Dict[str, Callable] = {}
_RUNNER_CACHE: Dict[int, Callable] = {}

_EXEC_GLOBALS = {
    "_E": EmulationError,
    "_int": int,
    "_cdiv": _cdiv,
    "_crem": _crem,
    "KeyError": KeyError,
    "BaseException": BaseException,
    "__builtins__": {},
}


def _make_runner(ops):
    """Unrolled segment driver: calls each op in order, tagging the op
    position on any escaping exception (``_seg_pos``) so the interpreter
    can reconcile exact per-step accounting for the completed prefix."""
    n = len(ops)
    if n == 1:
        return ops[0]
    make = _RUNNER_CACHE.get(n)
    if make is None:
        names = [f"_op{i}" for i in range(n)]
        lines = [f"def _make({', '.join(names)}):", " def _run(frame):"]
        for i, name in enumerate(names):
            lines.append(f"  try: {name}(frame)")
            lines.append("  except BaseException as _x:")
            lines.append(f"   _x._seg_pos = {i}; raise")
        lines.append(" return _run")
        namespace: dict = {}
        exec("\n".join(lines), dict(_EXEC_GLOBALS), namespace)
        make = namespace["_make"]
        _RUNNER_CACHE[n] = make
    return make(*ops)


# -- micro-op code generation ------------------------------------------------


class _Ctx:
    """Accumulates generated source lines and their runtime bindings for
    one fused chunk."""

    def __init__(self):
        self.lines: List[str] = []
        self.names: List[str] = []
        self.values: List[object] = []

    def bind(self, value) -> str:
        name = f"_b{len(self.names)}"
        self.names.append(name)
        self.values.append(value)
        return name


def _wrap_expr(expr: str, type_) -> str:
    """Inline ``IntType.wrap`` around a generated expression."""
    mask = (1 << type_.bits) - 1
    if type_.signed:
        half = 1 << (type_.bits - 1)
        full = 1 << type_.bits
        return f"(_s - {full} if (_s := {expr} & {mask}) >= {half} else _s)"
    return f"({expr} & {mask})"


def _reg_tok(ctx: _Ctx, name: str) -> str:
    return f"r[{ctx.bind(name)}]"


def _operand_tok(ctx: _Ctx, operand) -> str:
    if isinstance(operand, Register):
        return _reg_tok(ctx, operand.name)
    return ctx.bind(operand.value)  # Const: raw (in-range) value


def _name_expr(ctx: _Ctx, interp, inst) -> str:
    """Variable-name expression with the by-reference resolution the
    interpreter performs; non-ref variables can never appear in
    ``ref_bindings`` (binding keys are exactly the callee's ref formal
    names), so the dict probe is elided for them."""
    tok = ctx.bind(inst.var.name)
    if inst.var.is_ref:
        return f"frame.ref_bindings.get({tok}, {tok})"
    return tok


def _index_expr(ctx: _Ctx, inst) -> str:
    if inst.index is None:
        return "0"
    if isinstance(inst.index, Const):
        return ctx.bind(inst.index.value)
    return _reg_tok(ctx, inst.index.name)


def _can_gen(inst) -> bool:
    """Can this instruction be expressed by the chunk code generator?
    (Anything else falls back to the interpreter's reference handler.)"""
    scalar = (Register, Const)
    if type(inst) is BinOp:
        if not (
            isinstance(inst.lhs, scalar) and isinstance(inst.rhs, scalar)
        ):
            return False
        # Const-const pairs are left to the reference handler: the
        # frontend folds them, and division-by-zero must still raise at
        # execution time, not at compile time.
        return isinstance(inst.lhs, Register) or isinstance(
            inst.rhs, Register
        )
    if type(inst) is UnOp:
        return isinstance(inst.src, Register)
    if type(inst) is Move:
        return isinstance(inst.src, scalar)
    if type(inst) in (Load, Store):
        if inst.index is not None and not isinstance(inst.index, scalar):
            return False
        if type(inst) is Store and not isinstance(inst.value, scalar):
            return False
        return True
    if type(inst) is Jump:
        return True
    if type(inst) is Branch:
        return isinstance(inst.cond, scalar)
    return False


def _emit_binop(ctx: _Ctx, inst: BinOp) -> None:
    op = inst.op
    at = _operand_tok(ctx, inst.lhs)
    if op in (Opcode.SHL, Opcode.SHR):
        sym = "<<" if op is Opcode.SHL else ">>"
        if isinstance(inst.rhs, Const):
            expr = f"({at} {sym} {ctx.bind(inst.rhs.value & 31)})"
        else:
            expr = f"({at} {sym} ({_operand_tok(ctx, inst.rhs)} & 31))"
    elif op in _ARITH_SYM:
        expr = f"({at} {_ARITH_SYM[op]} {_operand_tok(ctx, inst.rhs)})"
    elif op is Opcode.DIV:
        expr = f"_cdiv({at}, {_operand_tok(ctx, inst.rhs)})"
    elif op is Opcode.REM:
        expr = f"_crem({at}, {_operand_tok(ctx, inst.rhs)})"
    else:  # comparison: 0/1 result, wrap is the identity
        expr = f"_int({at} {_CMP_SYM[op]} {_operand_tok(ctx, inst.rhs)})"
        ctx.lines.append(f"r[{ctx.bind(inst.dest.name)}] = {expr}")
        return
    wrapped = _wrap_expr(expr, inst.dest.type)
    ctx.lines.append(f"r[{ctx.bind(inst.dest.name)}] = {wrapped}")


def _emit_unop(ctx: _Ctx, inst: UnOp) -> None:
    at = _reg_tok(ctx, inst.src.name)
    dtok = ctx.bind(inst.dest.name)
    if inst.op is UnaryOpcode.LNOT:  # 0/1: wrap is the identity
        ctx.lines.append(f"r[{dtok}] = _int({at} == 0)")
        return
    expr = f"(-{at})" if inst.op is UnaryOpcode.NEG else f"(~{at})"
    ctx.lines.append(f"r[{dtok}] = {_wrap_expr(expr, inst.dest.type)}")


def _emit_move(ctx: _Ctx, inst: Move) -> None:
    dtok = ctx.bind(inst.dest.name)
    if isinstance(inst.src, Const):
        ctx.lines.append(
            f"r[{dtok}] = {ctx.bind(inst.dest.type.wrap(inst.src.value))}"
        )
        return
    src = _reg_tok(ctx, inst.src.name)
    if inst.src.type == inst.dest.type:  # stored values are in-range
        ctx.lines.append(f"r[{dtok}] = {src}")
    else:
        ctx.lines.append(f"r[{dtok}] = {_wrap_expr(src, inst.dest.type)}")


def _emit_load(ctx: _Ctx, interp, inst: Load) -> None:
    read = ctx.bind(interp.memory.read)
    space = ctx.bind(interp._space_of(inst))
    name = _name_expr(ctx, interp, inst)
    index = _index_expr(ctx, inst)
    dtok = ctx.bind(inst.dest.name)
    if inst.var.volatile_input:
        counts = ctx.bind(interp._env_counts)
        ctx.lines.append(f"_n = {name}")
        ctx.lines.append(f"_v = {read}(_n, {index}, {space})")
        ctx.lines.append(f"_c = {counts}.get(_n, 0)")
        ctx.lines.append(f"{counts}[_n] = _c + 1")
        ctx.lines.append(
            f"r[{dtok}] = {_wrap_expr('(_v + _c)', inst.dest.type)}"
        )
        return
    expr = f"{read}({name}, {index}, {space})"
    if inst.dest.type == inst.var.type:  # stored values are in-range
        ctx.lines.append(f"r[{dtok}] = {expr}")
    else:
        ctx.lines.append(f"r[{dtok}] = {_wrap_expr(expr, inst.dest.type)}")


def _emit_store(ctx: _Ctx, interp, inst: Store) -> None:
    write = ctx.bind(interp.memory.write)
    space = ctx.bind(interp._space_of(inst))
    name = _name_expr(ctx, interp, inst)
    index = _index_expr(ctx, inst)
    if isinstance(inst.value, Const):
        value = ctx.bind(inst.var.type.wrap(inst.value.value))
    else:
        value = _reg_tok(ctx, inst.value.name)
        if inst.value.type != inst.var.type:
            value = _wrap_expr(value, inst.var.type)
    ctx.lines.append(f"{write}({name}, {index}, {value}, {space})")


def _emit_jump(ctx: _Ctx, inst: Jump) -> None:
    ctx.lines.append(f"frame.block = {ctx.bind(inst.target)}")
    ctx.lines.append("frame.index = 0")


def _emit_branch(ctx: _Ctx, inst: Branch) -> None:
    ttok = ctx.bind(inst.if_true)
    ftok = ctx.bind(inst.if_false)
    if isinstance(inst.cond, Const):
        target = ttok if inst.cond.value != 0 else ftok
        ctx.lines.append(f"frame.block = {target}")
    else:
        cond = _reg_tok(ctx, inst.cond.name)
        ctx.lines.append(f"frame.block = {ttok} if {cond} != 0 else {ftok}")
    ctx.lines.append("frame.index = 0")


def _emit_cmp_branch(ctx: _Ctx, cmp: BinOp, br: Branch) -> None:
    """The compare-and-branch superinstruction: one closure computes the
    comparison, stores the (unwrapped 0/1) result register — it may be
    read later — and transfers control."""
    at = _operand_tok(ctx, cmp.lhs)
    bt = _operand_tok(ctx, cmp.rhs)
    ctx.lines.append(f"_v = _int({at} {_CMP_SYM[cmp.op]} {bt})")
    ctx.lines.append(f"r[{ctx.bind(cmp.dest.name)}] = _v")
    ttok = ctx.bind(br.if_true)
    ftok = ctx.bind(br.if_false)
    ctx.lines.append(f"frame.block = {ttok} if _v else {ftok}")
    ctx.lines.append("frame.index = 0")


def _gen_chunk(units, interp):
    """Generate one fused superinstruction closure from consecutive
    code-generatable units. ``_i`` tracks the sub-instruction index so a
    mid-chunk exception can be attributed to its exact instruction."""
    ctx = _Ctx()
    sub = 0
    for unit in units:
        if sub:
            ctx.lines.append(f"_i = {sub}")
        kind, payload = unit
        if kind == "cmpbr":
            _emit_cmp_branch(ctx, payload[0], payload[1])
            sub += 2
            continue
        inst = payload
        if type(inst) is BinOp:
            _emit_binop(ctx, inst)
        elif type(inst) is UnOp:
            _emit_unop(ctx, inst)
        elif type(inst) is Move:
            _emit_move(ctx, inst)
        elif type(inst) is Load:
            _emit_load(ctx, interp, inst)
        elif type(inst) is Store:
            _emit_store(ctx, interp, inst)
        elif type(inst) is Jump:
            _emit_jump(ctx, inst)
        else:
            _emit_branch(ctx, inst)
        sub += 1

    body = "\n".join("            " + line for line in ctx.lines)
    unpack = ", ".join(ctx.names) + ("," if len(ctx.names) == 1 else "")
    src = (
        f"def _make(_B):\n"
        f"    ({unpack}) = _B\n"
        f"    def _op(frame):\n"
        f"        r = frame.registers\n"
        f"        _i = 0\n"
        f"        try:\n"
        f"{body}\n"
        f"        except KeyError as _k:\n"
        f"            _e = _E('read of uninitialized register %'\n"
        f"                    + _k.args[0] + ' in @'\n"
        f"                    + frame.function.name)\n"
        f"            _e._seg_sub = _i\n"
        f"            raise _e from None\n"
        f"        except BaseException as _x:\n"
        f"            _x._seg_sub = _i\n"
        f"            raise\n"
        f"    return _op\n"
    )
    make = _CHUNK_CACHE.get(src)
    if make is None:
        namespace: dict = {}
        exec(src, dict(_EXEC_GLOBALS), namespace)
        make = namespace["_make"]
        _CHUNK_CACHE[src] = make
    return make(tuple(ctx.values))


# -- non-generated micro-ops -------------------------------------------------


def _ref_op(handler, inst):
    """Fallback for shapes the generator does not express: delegate to
    the interpreter's own handler. Safe mid-segment for everything but
    Call, because only Call derives new state from ``frame.index`` (the
    relative bump these handlers perform lands on a stale index that the
    segment driver overwrites)."""

    def _op(frame):
        handler(frame, inst)

    return _op


def _make_call(inst: Call, interp, next_index: int, frame_cls):
    """Call micro-op with the argument-marshalling plan precomputed and
    the post-return index applied absolutely (the reference handler's
    ``frame.index += 1`` would act on a stale mid-segment index)."""
    callee = interp.module.function(inst.callee)
    entry_label = callee.entry.label
    ret_name = inst.dest.name if inst.dest is not None else None
    plans: List[tuple] = []
    arg_regs = callee.arg_registers()
    for i, (arg, param) in enumerate(zip(inst.args, callee.params)):
        if isinstance(arg, VarRef):
            formal = callee.variables[param.name]
            plans.append(("ref", formal.name, arg.variable.name))
        else:
            reg = arg_regs[i]
            assert reg is not None
            if isinstance(arg, Const):
                plans.append(("const", reg.name, reg.type.wrap(arg.value)))
            else:
                same = arg.type == reg.type
                plans.append(("reg", reg.name, arg.name, reg.type.wrap, same))

    def _op(frame):
        registers: Dict[str, int] = {}
        ref_bindings: Dict[str, str] = {}
        for plan in plans:
            kind = plan[0]
            if kind == "reg":
                _, rname, aname, wrap, same = plan
                try:
                    value = frame.registers[aname]
                except KeyError:
                    raise EmulationError(
                        f"read of uninitialized register %{aname} in "
                        f"@{frame.function.name}"
                    ) from None
                registers[rname] = value if same else wrap(value)
            elif kind == "const":
                registers[plan[1]] = plan[2]
            else:
                ref_bindings[plan[1]] = frame.ref_bindings.get(
                    plan[2], plan[2]
                )
        frame.index = next_index  # resume after the call on return
        interp.frames.append(
            frame_cls(
                callee,
                entry_label,
                registers=registers,
                ref_bindings=ref_bindings,
                ret_target=ret_name,
            )
        )

    return _op


def _make_ret(inst: Ret, interp):
    """Return micro-op. Reads ``interp.frames`` at call time — the
    interpreter rebinds the frames list on run()/restore_snapshot()."""
    if inst.value is None:

        def _op(frame):
            interp.frames.pop()

        return _op
    if isinstance(inst.value, Const):
        const = inst.value.value

        def _op(frame):
            frames = interp.frames
            frames.pop()
            ret_target = frame.ret_target
            if frames and ret_target is not None:
                frames[-1].registers[ret_target] = const

        return _op
    if not isinstance(inst.value, Register):
        return _ref_op(interp._do_ret, inst)
    name = inst.value.name

    def _op(frame):
        try:
            value = frame.registers[name]
        except KeyError:
            raise EmulationError(
                f"read of uninitialized register %{name} in "
                f"@{frame.function.name}"
            ) from None
        frames = interp.frames
        frames.pop()
        ret_target = frame.ret_target
        if frames and ret_target is not None:
            frames[-1].registers[ret_target] = value

    return _op


# -- block compilation -------------------------------------------------------


def _build_segment(start, insts, interp, frame_cls) -> Segment:
    """Compile one straight-line run (``insts`` is a list of
    ``(inst, cost, handler)`` triples; a control instruction can only be
    last)."""
    # Classify into units: generated chunks absorb consecutive 'gen'
    # units up to FUSE_LIMIT instructions; everything else is a
    # standalone op of width 1 (2 for the fused compare-and-branch).
    units: List[tuple] = []
    for inst, cost, handler in insts:
        if type(inst) is Call:
            units.append(("call", inst))
        elif type(inst) is Ret:
            units.append(("ret", inst))
        elif _can_gen(inst):
            units.append(("gen", inst))
        else:
            units.append(("ref", (inst, handler)))
    # Fuse a comparison into the branch it feeds.
    if (
        len(units) >= 2
        and units[-1][0] == "gen"
        and type(units[-1][1]) is Branch
        and isinstance(units[-1][1].cond, Register)
        and units[-2][0] == "gen"
        and type(units[-2][1]) is BinOp
        and units[-2][1].op in _CMP_OPS
        and units[-2][1].dest.name == units[-1][1].cond.name
    ):
        cmpbr = ("cmpbr", (units[-2][1], units[-1][1]))
        units[-2:] = [cmpbr]

    ops: List[Callable] = []
    widths: List[int] = []
    pending: List[tuple] = []
    pending_width = 0

    def flush():
        nonlocal pending_width
        if pending:
            ops.append(_gen_chunk(pending, interp))
            widths.append(pending_width)
            pending.clear()
            pending_width = 0

    position = start
    for unit in units:
        kind, payload = unit
        if kind in ("gen", "cmpbr"):
            width = 2 if kind == "cmpbr" else 1
            if pending_width + width > FUSE_LIMIT:
                flush()
            pending.append(unit)
            pending_width += width
            position += width
            continue
        flush()
        if kind == "call":
            ops.append(_make_call(payload, interp, position + 1, frame_cls))
        elif kind == "ret":
            ops.append(_make_ret(payload, interp))
        else:
            ops.append(_ref_op(payload[1], payload[0]))
        widths.append(1)
        position += 1
    flush()

    last = insts[-1][0]
    ends_with_control = type(last) in (Jump, Branch, Call, Ret)
    end_index = None if ends_with_control else start + len(insts)
    costs = tuple(cost for _, cost, _ in insts)
    return Segment(start, end_index, ops, widths, costs)


def compile_blocks(interp, frame_cls):
    """Compile every pre-decoded block of ``interp`` into its segment
    map: ``{(function, label): {start_index: Segment}}``. Indices not in
    a block's map (checkpoints, mid-segment resume points) are executed
    by the interpreter's per-step path."""
    ccode: Dict[Tuple[str, str], Dict[int, Segment]] = {}
    for key, entries in interp._code.items():
        seg_map: Dict[int, Segment] = {}
        i = 0
        n = len(entries)
        while i < n:
            if entries[i][0] is None:  # checkpoints: cold path only
                i += 1
                continue
            insts = []
            j = i
            while j < n and entries[j][0] is not None:
                handler, cost, inst, _label = entries[j]
                insts.append((inst, cost, handler))
                j += 1
                if type(inst) in (Jump, Branch, Call, Ret):
                    break
            seg_map[i] = _build_segment(i, insts, interp, frame_cls)
            i = j
        ccode[key] = seg_map
    return ccode
