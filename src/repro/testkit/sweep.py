"""Exhaustive boundary sweeps: inject a failure at every step of a run.

The engine first performs a *recording* run — a never-failing
``SCHEDULED`` power manager whose :attr:`record` list captures the
pre-step timeline of every atomic energy-consuming step, while the
interpreter's ``step_hook`` labels each step with its static site
(``function:block:index`` for instructions, ``ckptN:save`` /
``ckptN:voltcheck`` / ``restore`` for runtime steps). Each recorded
boundary is then attacked: the program is re-run with a failure scheduled
exactly there, and the crash-consistency oracle compares the final NVM
state against the continuous-power reference.

Granularities:

- ``all`` — every *dynamic* step (exhaustive; meant for the small corpus
  programs, cost is O(boundaries x run length));
- ``static`` — the first dynamic occurrence of every *static* site, i.e.
  every instruction boundary of the transformed module (the default for
  the MiBench2 benchmarks).

``failures=2`` additionally injects a second failure a few cycles after
the first (``second_gaps``), exercising torn recoveries: a failure during
the restore or immediately after resumption. Double injection stays below
the interpreter's stuck-detection threshold (two attempts per snapshot),
so completion remains guaranteed for finite schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.telemetry import metrics
from repro.baselines import CompiledTechnique
from repro.emulator import PowerManager, run_intermittent
from repro.emulator.report import ExecutionReport
from repro.energy import msp430fr5969_platform
from repro.energy.platform import Platform
from repro.core.verify import run_against_reference
from repro.emulator.interpreter import run_continuous
from repro.errors import EmulationError
from repro.ir.module import Module
from repro.testkit.corpus import (
    WAIT_MODE_TECHNIQUES,
    compile_for,
    load_program,
)
from repro.testkit.oracle import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_PROGRESS,
    OracleVerdict,
    check_schedule,
    classify,
)
from repro.runner.pool import parallel_map
from repro.testkit.sabotage import strip_checkpoint
from repro.testkit.shrink import shrink_schedule


@dataclass
class Boundary:
    """One fault-injectable step of the recorded run."""

    offset: int  # pre-step timeline (active cycles since boot)
    label: str  # static site, e.g. "main:body:3" or "ckpt2:save"
    cycles: int  # the step's own cycle cost


@dataclass
class SweepResult:
    program: str
    technique: str
    eb: float
    granularity: str
    failures: int
    boundaries: int = 0  # dynamic steps recorded
    points: int = 0  # injection points selected
    runs: int = 0  # oracle runs performed (injections + shrinking)
    outcomes: dict = field(default_factory=dict)  # outcome -> count
    violations: List[OracleVerdict] = field(default_factory=list)
    guarantee: Optional[OracleVerdict] = None

    @property
    def ok(self) -> bool:
        if self.violations:
            return False
        return self.guarantee is None or not self.guarantee.violation

    def render(self) -> str:
        lines = [
            f"sweep {self.program}/{self.technique} "
            f"(eb={self.eb:g} nJ, granularity={self.granularity}, "
            f"failures={self.failures})",
            f"  {self.boundaries} dynamic boundaries, "
            f"{self.points} injection points, {self.runs} oracle runs",
        ]
        if self.guarantee is not None:
            lines.append(f"  guarantee check: {self.guarantee.describe()}")
        for outcome, count in sorted(self.outcomes.items()):
            lines.append(f"  {outcome}: {count}")
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for v in self.violations:
                lines.append(f"    {v.describe()}")
        else:
            lines.append("  zero oracle violations")
        return "\n".join(lines)


def record_boundaries(
    compiled: CompiledTechnique,
    model,
    vm_size: int,
    inputs,
    max_instructions: int = 50_000_000,
) -> Tuple[List[Boundary], ExecutionReport]:
    """Run once without failures, enumerating every injectable boundary."""
    power = PowerManager.recording()
    labels: List[Tuple[str, int]] = []
    report = run_intermittent(
        compiled.module,
        model,
        compiled.policy,
        power,
        vm_size=vm_size,
        inputs=inputs,
        max_instructions=max_instructions,
        step_hook=lambda label, cycles: labels.append((label, cycles)),
    )
    if not report.completed:
        raise RuntimeError(
            f"recording run did not complete: {report.failure_reason}"
        )
    offsets = power.record or []
    assert len(offsets) == len(labels), "hook/record logs diverged"
    return (
        [
            Boundary(offset=o, label=label, cycles=c)
            for o, (label, c) in zip(offsets, labels)
        ],
        report,
    )


def select_points(
    boundaries: Sequence[Boundary], granularity: str
) -> List[Boundary]:
    """Choose the boundaries to attack. Zero-cycle steps are skipped —
    with the inclusive boundary semantics a step that advances the
    timeline by nothing can never be the one that crosses an offset."""
    if granularity == "all":
        return [b for b in boundaries if b.cycles > 0]
    if granularity != "static":
        raise ValueError(f"unknown granularity {granularity!r}")
    seen = set()
    points: List[Boundary] = []
    for b in boundaries:
        if b.cycles > 0 and b.label not in seen:
            seen.add(b.label)
            points.append(b)
    return points


def sweep_technique(
    program: str,
    technique: str,
    eb: float = 3000.0,
    vm_size: Optional[int] = None,
    granularity: str = "static",
    failures: int = 1,
    second_gaps: Sequence[int] = (1, 7, 31),
    profile_runs: int = 2,
    max_instructions: int = 50_000_000,
    sabotage: bool = False,
    platform: Optional[Platform] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Compile ``program`` with ``technique`` and sweep failure injections
    over its boundaries; ``sabotage=True`` first removes a mid-program
    checkpoint to confirm the oracle catches the broken placement.

    ``jobs > 1`` fans the injection schedules across worker processes;
    results (outcome counts, verdicts, shrunk schedules, run counts) are
    merged in schedule order and identical to a serial sweep."""
    if failures not in (1, 2):
        raise ValueError("failures must be 1 or 2 (deeper stacks would "
                         "trip the emulator's stuck detector)")
    bench = load_program(program)
    plat = platform or msp430fr5969_platform(eb=eb)
    if vm_size is not None:
        plat = plat.with_vm_size(vm_size)
    plat = plat.with_eb(eb)

    compiled = compile_for(
        technique,
        bench.module,
        plat,
        input_generator=bench.input_generator(),
    )
    if not compiled.feasible:
        result = SweepResult(
            program=program, technique=technique, eb=eb,
            granularity=granularity, failures=failures,
        )
        result.outcomes["infeasible"] = 1
        return result
    tm = telemetry.get()
    if tm is not None:
        from repro.experiments.common import emit_segment_bounds

        emit_segment_bounds(tm, compiled, plat.model, eb)
    inputs = bench.default_inputs()
    reference = run_continuous(
        bench.module, plat.model, inputs=inputs,
        max_instructions=max_instructions,
    )

    if sabotage:
        # Prefer a victim whose removal keeps the program runnable under
        # continuous power (so the sweep exercises the *fault* paths, not
        # a module that crashes on the first VM access).
        def _runs_clean(broken: Module) -> bool:
            try:
                rep = run_intermittent(
                    broken, plat.model, compiled.policy,
                    PowerManager.continuous(), vm_size=plat.vm_size,
                    inputs=inputs, max_instructions=max_instructions,
                )
            except EmulationError:
                return False
            return rep.completed and rep.outputs == reference.outputs

        broken, site = strip_checkpoint(
            compiled.module, validate=_runs_clean
        )
        compiled.module = broken
        compiled.extra["sabotaged_checkpoint"] = site

    result = SweepResult(
        program=program, technique=technique, eb=eb,
        granularity=granularity, failures=failures,
    )

    # Guarantee check: the schedule the technique was compiled for. For
    # wait-mode techniques non-completion (or any power failure at all)
    # is a placement bug; roll-back baselines only owe crash consistency.
    wait_mode = technique in WAIT_MODE_TECHNIQUES
    guarantee_run = run_against_reference(
        compiled.module, bench.module, plat.model, compiled.policy,
        PowerManager.energy_budget(eb), vm_size=plat.vm_size,
        inputs=inputs, max_instructions=max_instructions,
    )
    result.runs += 1
    outcome = classify(guarantee_run, guarantee=wait_mode)
    if outcome == OUTCOME_OK and wait_mode and guarantee_run.power_failures:
        # Wait mode under its own budget must see *zero* failures.
        outcome = OUTCOME_PROGRESS
    verdict = OracleVerdict(
        program=program, technique=technique,
        power=f"energy-budget eb={eb:g}", outcome=outcome,
        detail=guarantee_run.failure_reason,
        power_failures=guarantee_run.power_failures,
        schedule=tuple(guarantee_run.failure_offsets),
    )
    if verdict.violation and guarantee_run.failure_offsets:
        verdict.shrunk = _shrink_violation(
            compiled, reference, plat, inputs, max_instructions,
            tuple(guarantee_run.failure_offsets), outcome, result,
        )
    result.guarantee = verdict
    if verdict.violation:
        result.violations.append(verdict)

    # Boundary sweep: every selected point, failures injected there.
    try:
        boundaries, _ = record_boundaries(
            compiled, plat.model, plat.vm_size, inputs, max_instructions
        )
    except EmulationError as exc:
        # The module cannot even run without failures (e.g. sabotage
        # removed a checkpoint that established VM residency). That is a
        # violation in itself; there are no boundaries left to sweep.
        verdict = OracleVerdict(
            program=program, technique=technique,
            power="recording run (no failures)", outcome=OUTCOME_CRASH,
            detail=f"emulation error: {exc}",
        )
        result.runs += 1
        result.outcomes[OUTCOME_CRASH] = (
            result.outcomes.get(OUTCOME_CRASH, 0) + 1
        )
        result.violations.append(verdict)
        return result
    points = select_points(boundaries, granularity)
    result.boundaries = len(boundaries)
    result.points = len(points)

    schedules: List[Tuple[Tuple[int, ...], Boundary]] = []
    for b in points:
        schedules.append(((b.offset,), b))
        if failures == 2:
            for gap in second_gaps:
                schedules.append(((b.offset, b.offset + gap), b))

    attacks = _attack_schedules(
        compiled, reference, plat, inputs, max_instructions,
        [schedule for schedule, _ in schedules], jobs, progress,
    )
    for (schedule, b), (outcome, detail, power_failures) in zip(
        schedules, attacks
    ):
        result.runs += 1
        # Parent-side progress counters so serial and parallel sweeps
        # agree (parallel attack workers carry no metrics registry).
        metrics.count("testkit.sweep.injections")
        metrics.count(f"testkit.sweep.outcome.{outcome}")
        result.outcomes[outcome] = result.outcomes.get(outcome, 0) + 1
        if outcome != OUTCOME_OK:
            verdict = OracleVerdict(
                program=program, technique=technique,
                power=f"scheduled {list(schedule)} (at {b.label})",
                outcome=outcome, schedule=schedule,
                detail=detail,
                power_failures=power_failures,
            )
            verdict.shrunk = _shrink_violation(
                compiled, reference, plat, inputs, max_instructions,
                schedule, outcome, result,
            )
            result.violations.append(verdict)
    return result


# -- parallel attack workers -------------------------------------------------

_ATTACK_STATE: Optional[Tuple] = None


def _init_attack_worker(
    compiled: CompiledTechnique, reference: ExecutionReport, model,
    vm_size: int, inputs, max_instructions: int,
) -> None:
    global _ATTACK_STATE
    _ATTACK_STATE = (compiled, reference, model, vm_size, inputs,
                     max_instructions)


def _attack_one(schedule: Tuple[int, ...]) -> Tuple[str, str, int]:
    compiled, reference, model, vm_size, inputs, max_instructions = (
        _ATTACK_STATE
    )
    run = check_schedule(
        compiled, reference, model, schedule, vm_size, inputs,
        max_instructions,
    )
    return classify(run, guarantee=True), run.failure_reason, run.power_failures


def _attack_schedules(
    compiled: CompiledTechnique,
    reference: ExecutionReport,
    plat: Platform,
    inputs,
    max_instructions: int,
    schedules: List[Tuple[int, ...]],
    jobs: int,
    progress: Optional[Callable[[int, int], None]],
) -> List[Tuple[str, str, int]]:
    """Classify every injection schedule, serially or across workers.
    Each attack is an independent deterministic emulation, so the ordered
    result list is identical either way."""
    if jobs > 1 and len(schedules) > 1:
        # Workers re-create the runs from picklable inputs; the (heavy,
        # possibly unpicklable) compiler byproducts in `extra` stay home.
        slim = replace(compiled, extra={})
        return parallel_map(
            _attack_one, schedules, jobs,
            initializer=_init_attack_worker,
            initargs=(slim, reference, plat.model, plat.vm_size, inputs,
                      max_instructions),
            chunksize=8,
        )
    results: List[Tuple[str, str, int]] = []
    for i, schedule in enumerate(schedules):
        if progress is not None:
            progress(i, len(schedules))
        run = check_schedule(
            compiled, reference, plat.model, schedule,
            plat.vm_size, inputs, max_instructions,
        )
        results.append(
            (classify(run, guarantee=True), run.failure_reason,
             run.power_failures)
        )
    return results


def _shrink_violation(
    compiled, reference, plat, inputs, max_instructions,
    schedule: Tuple[int, ...], outcome: str, result: SweepResult,
) -> Tuple[int, ...]:
    """Minimize a failing schedule, counting the verification runs."""

    def still_fails(candidate: Tuple[int, ...]) -> bool:
        run = check_schedule(
            compiled, reference, plat.model, candidate,
            plat.vm_size, inputs, max_instructions,
        )
        return classify(run, guarantee=True) == outcome

    shrunk, runs = shrink_schedule(schedule, still_fails)
    result.runs += runs
    return shrunk
