"""Parser for the textual IR dumps produced by :mod:`repro.ir.printer`.

``parse_ir(print_module(m))`` reconstructs a structurally identical module:
the printer/parser pair round-trips every construct, including checkpoint
metadata, loop bounds and atomic ranges. Used for golden tests, for saving
compiled artifacts to disk, and for hand-authoring IR in tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.function import Function, Param
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Checkpoint,
    CondCheckpoint,
    Jump,
    Load,
    Move,
    Opcode,
    Ret,
    Store,
    UnOp,
    UnaryOpcode,
)
from repro.ir.module import Module
from repro.ir.values import Const, MemorySpace, Register, Value, Variable, VarRef
from repro.ir.types import type_from_name

_MODULE_RE = re.compile(r"^module (\S+) \(entry @(\S+)\)$")
_GLOBAL_RE = re.compile(
    r"^global @(?P<name>[\w.]+):(?P<type>\w+)"
    r"(?:\[(?P<count>\d+)\])?"
    r"(?: \[(?P<flags>[\w, ]+)\])?"
    r"(?: = \{(?P<init>[^}]*)\})?$"
)
_FUNC_RE = re.compile(r"^func @(\S+)\((?P<params>[^)]*)\) -> (?P<ret>\w+) \{$")
_LOCAL_RE = re.compile(
    r"^  local (?P<bare>\w+): @(?P<name>[\w.]+):(?P<type>\w+)"
    r"(?:\[(?P<count>\d+)\])?"
    r"(?: \[(?P<flags>[\w, ]+)\])?"
    r"(?: = \{(?P<init>[^}]*)\})?$"
)
_MAXITER_RE = re.compile(r"^  maxiter \.(\S+) = (\d+)$")
_ATOMIC_RE = re.compile(r"^  atomic \.(\S+) \[(\d+):(\d+)\]$")
_LABEL_RE = re.compile(r"^\.(\S+):$")
_VALUE_RE = re.compile(r"^(%[\w.]+|-?\d+):(\w+)$|^&([\w.]+)$")

_CKPT_RE = re.compile(
    r"^checkpoint #(?P<id>\d+) save=\[(?P<save>[^\]]*)\] "
    r"restore=\[(?P<restore>[^\]]*)\] "
    r"vm_after=\[(?P<vm>[^\]]*)\] nvm_after=\[(?P<nvm>[^\]]*)\]"
    r"(?P<mandatory> mandatory)?$"
)
_CONDCKPT_RE = re.compile(
    r"^cond_checkpoint #(?P<id>\d+) every=(?P<every>\d+) "
    r"save=\[(?P<save>[^\]]*)\] restore=\[(?P<restore>[^\]]*)\] "
    r"vm_after=\[(?P<vm>[^\]]*)\] nvm_after=\[(?P<nvm>[^\]]*)\]$"
)

_BINOPS = {op.value: op for op in Opcode}
_UNOPS = {op.value: op for op in UnaryOpcode}


def _parse_flags(raw: Optional[str]) -> Dict[str, bool]:
    flags = {f.strip() for f in (raw or "").split(",") if f.strip()}
    return {
        "is_const": "const" in flags,
        "is_ref": "ref" in flags,
        "pinned_nvm": "pinned_nvm" in flags,
        "volatile_input": "volatile_input" in flags,
    }


def _parse_init(raw: Optional[str]) -> Optional[List[int]]:
    if raw is None:
        return None
    raw = raw.strip()
    if not raw:
        return []
    return [int(v.strip()) for v in raw.split(",")]


def _parse_name_list(raw: str) -> Tuple[str, ...]:
    return tuple(n.strip() for n in raw.split(",") if n.strip())


class _IRTextParser:
    def __init__(self, text: str):
        self.lines = [line.rstrip() for line in text.splitlines()]
        self.pos = 0
        self.module: Optional[Module] = None
        #: mangled name -> Variable (globals and every function's locals)
        self.variables: Dict[str, Variable] = {}

    # ------------------------------------------------------------ helpers

    def error(self, message: str) -> IRError:
        return IRError(f"IR text line {self.pos + 1}: {message}")

    def _current(self) -> Optional[str]:
        while self.pos < len(self.lines) and not self.lines[self.pos].strip():
            self.pos += 1
        if self.pos >= len(self.lines):
            return None
        return self.lines[self.pos]

    def _value(self, text: str) -> Value:
        text = text.strip()
        match = _VALUE_RE.match(text)
        if not match:
            raise self.error(f"cannot parse value {text!r}")
        if match.group(3) is not None:  # &var
            name = match.group(3)
            if name not in self.variables:
                raise self.error(f"unknown variable in &{name}")
            return VarRef(self.variables[name])
        body, type_name = match.group(1), match.group(2)
        type_ = type_from_name(type_name)
        if body.startswith("%"):
            return Register(body[1:], type_)
        return Const(int(body), type_)

    def _register(self, text: str) -> Register:
        value = self._value(text)
        if not isinstance(value, Register):
            raise self.error(f"expected a register, got {text!r}")
        return value

    def _variable(self, name: str) -> Variable:
        if name not in self.variables:
            raise self.error(f"unknown variable @{name}")
        return self.variables[name]

    def _split_args(self, raw: str) -> List[str]:
        return [a.strip() for a in raw.split(",") if a.strip()]

    # ------------------------------------------------------------ top level

    def parse(self) -> Module:
        header = self._current()
        if header is None:
            raise self.error("empty IR text")
        match = _MODULE_RE.match(header)
        if not match:
            raise self.error(f"expected module header, got {header!r}")
        self.module = Module(match.group(1), entry=match.group(2))
        self.pos += 1

        while True:
            line = self._current()
            if line is None:
                break
            if line.startswith("global "):
                self._parse_global(line)
                self.pos += 1
            elif line.startswith("func "):
                self._parse_function(line)
            else:
                raise self.error(f"unexpected top-level line {line!r}")
        return self.module

    def _parse_global(self, line: str) -> None:
        match = _GLOBAL_RE.match(line)
        if not match:
            raise self.error(f"cannot parse global {line!r}")
        flags = _parse_flags(match.group("flags"))
        var = Variable(
            name=match.group("name"),
            type=type_from_name(match.group("type")),
            count=int(match.group("count") or 1),
            init=_parse_init(match.group("init")),
            **flags,
        )
        assert self.module is not None
        self.module.add_global(var)
        self.variables[var.name] = var

    # ------------------------------------------------------------ functions

    def _parse_function(self, header: str) -> None:
        match = _FUNC_RE.match(header)
        if not match:
            raise self.error(f"cannot parse function header {header!r}")
        name = match.group(1)
        params: List[Param] = []
        for raw in self._split_args(match.group("params")):
            is_ref = raw.startswith("&")
            pname, ptype = raw.lstrip("&").split(":")
            params.append(
                Param(name=pname, type=type_from_name(ptype), is_ref=is_ref)
            )
        ret = match.group("ret")
        func = Function(
            name,
            params,
            None if ret == "void" else type_from_name(ret),
        )
        assert self.module is not None
        self.module.add_function(func)
        self.pos += 1

        # Locals / metadata.
        while True:
            line = self._current()
            if line is None:
                raise self.error("unterminated function")
            local = _LOCAL_RE.match(line)
            if local:
                flags = _parse_flags(local.group("flags"))
                var = Variable(
                    name=local.group("name"),
                    type=type_from_name(local.group("type")),
                    count=int(local.group("count") or 1),
                    init=_parse_init(local.group("init")),
                    **flags,
                )
                func.add_variable(var, bare_name=local.group("bare"))
                self.variables[var.name] = var
                self.pos += 1
                continue
            maxiter = _MAXITER_RE.match(line)
            if maxiter:
                func.loop_maxiter[maxiter.group(1)] = int(maxiter.group(2))
                self.pos += 1
                continue
            atomic = _ATOMIC_RE.match(line)
            if atomic:
                func.atomic_ranges.append(
                    (atomic.group(1), int(atomic.group(2)), int(atomic.group(3)))
                )
                self.pos += 1
                continue
            break

        # Blocks.
        current = None
        while True:
            line = self._current()
            if line is None:
                raise self.error("unterminated function body")
            if line == "}":
                self.pos += 1
                return
            label = _LABEL_RE.match(line)
            if label:
                current = func.add_block(label.group(1))
                self.pos += 1
                continue
            if current is None:
                raise self.error(f"instruction outside a block: {line!r}")
            current.append(self._parse_instruction(line.strip()))
            self.pos += 1

    # ------------------------------------------------------------ instructions

    def _parse_instruction(self, text: str):
        self_error = self.error
        ckpt = _CKPT_RE.match(text)
        if ckpt:
            alloc = {n: MemorySpace.VM for n in _parse_name_list(ckpt.group("vm"))}
            alloc.update(
                {n: MemorySpace.NVM for n in _parse_name_list(ckpt.group("nvm"))}
            )
            return Checkpoint(
                ckpt_id=int(ckpt.group("id")),
                save_vars=_parse_name_list(ckpt.group("save")),
                restore_vars=_parse_name_list(ckpt.group("restore")),
                alloc_after=alloc,
                skippable=ckpt.group("mandatory") is None,
            )
        cond = _CONDCKPT_RE.match(text)
        if cond:
            alloc = {n: MemorySpace.VM for n in _parse_name_list(cond.group("vm"))}
            alloc.update(
                {n: MemorySpace.NVM for n in _parse_name_list(cond.group("nvm"))}
            )
            return CondCheckpoint(
                ckpt_id=int(cond.group("id")),
                every=int(cond.group("every")),
                save_vars=_parse_name_list(cond.group("save")),
                restore_vars=_parse_name_list(cond.group("restore")),
                alloc_after=alloc,
            )

        if text.startswith("jump ."):
            return Jump(text[len("jump ."):])
        if text.startswith("branch "):
            match = re.match(
                r"^branch (.+) \? \.(\S+) : \.(\S+)$", text
            )
            if not match:
                raise self_error(f"cannot parse branch {text!r}")
            return Branch(
                self._value(match.group(1)), match.group(2), match.group(3)
            )
        if text == "ret":
            return Ret(None)
        if text.startswith("ret "):
            return Ret(self._value(text[4:]))
        if text.startswith("store."):
            match = re.match(
                r"^store\.(\w+) @([\w.]+)(?:\[(.+)\])? = (.+)$", text
            )
            if not match:
                raise self_error(f"cannot parse store {text!r}")
            return Store(
                self._variable(match.group(2)),
                self._value(match.group(3)) if match.group(3) else None,
                self._value(match.group(4)),
                MemorySpace(match.group(1)),
            )
        if text.startswith("call @"):
            return self._parse_call(None, text)

        # Forms with a destination: "%d:t = ...".
        match = re.match(r"^(%[\w.]+:\w+) = (.+)$", text)
        if not match:
            raise self_error(f"cannot parse instruction {text!r}")
        dest = self._register(match.group(1))
        rhs = match.group(2)
        if rhs.startswith("move "):
            return Move(dest, self._value(rhs[5:]))
        if rhs.startswith("load."):
            lm = re.match(r"^load\.(\w+) @([\w.]+)(?:\[(.+)\])?$", rhs)
            if not lm:
                raise self_error(f"cannot parse load {rhs!r}")
            return Load(
                dest,
                self._variable(lm.group(2)),
                self._value(lm.group(3)) if lm.group(3) else None,
                MemorySpace(lm.group(1)),
            )
        if rhs.startswith("call @"):
            return self._parse_call(dest, rhs)
        parts = rhs.split(" ", 1)
        opname = parts[0]
        if opname in _UNOPS:
            return UnOp(_UNOPS[opname], dest, self._value(parts[1]))
        if opname in _BINOPS:
            operands = self._split_args(parts[1])
            if len(operands) != 2:
                raise self_error(f"binop needs two operands: {rhs!r}")
            return BinOp(
                _BINOPS[opname],
                dest,
                self._value(operands[0]),
                self._value(operands[1]),
            )
        raise self_error(f"unknown instruction {text!r}")

    def _parse_call(self, dest: Optional[Register], text: str) -> Call:
        match = re.match(r"^call @([\w.]+)\((.*)\)$", text)
        if not match:
            raise self.error(f"cannot parse call {text!r}")
        args = [self._value(a) for a in self._split_args(match.group(2))]
        return Call(dest, match.group(1), args)


def parse_ir(text: str) -> Module:
    """Parse a textual IR dump back into a :class:`Module`."""
    return _IRTextParser(text).parse()
