"""Independent verification of the forward-progress guarantee.

Placement enforces the guarantee statically (worst-case energy between
checkpoints <= EB, checked inside
:meth:`repro.core.path_analysis.RegionAnalysis._worst_since_checkpoint`).
This module re-checks it *dynamically*: run the transformed program in the
emulator under the energy budget and confirm it terminates, never violates
the budget between checkpoints, and produces the same outputs as a
continuously powered reference run (i.e. no memory anomalies, §II-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.interpreter import run_continuous, run_intermittent
from repro.emulator.power import PowerManager
from repro.emulator.runtime import CheckpointPolicy
from repro.energy.model import EnergyModel
from repro.ir.module import Module


@dataclass
class VerificationResult:
    """Outcome of one dynamic verification run."""

    completed: bool
    outputs_match: bool
    power_failures: int
    failure_reason: str = ""

    @property
    def ok(self) -> bool:
        return self.completed and self.outputs_match and self.power_failures == 0


def verify_forward_progress(
    transformed: Module,
    reference: Module,
    model: EnergyModel,
    eb: float,
    vm_size: int,
    inputs: Optional[Dict[str, List[int]]] = None,
    technique: str = "schematic",
    max_instructions: int = 100_000_000,
) -> VerificationResult:
    """Run ``transformed`` under budget ``eb`` and compare against the
    continuously powered ``reference`` module.

    A wait-mode program with a correct placement experiences **zero** power
    failures: every inter-checkpoint segment fits the budget and the
    capacitor is refilled at each checkpoint. Any failure observed here is
    a placement bug (or an intentionally undersized budget in tests).
    """
    ref_report = run_continuous(
        reference, model, inputs=inputs, max_instructions=max_instructions
    )
    report = run_intermittent(
        transformed,
        model,
        CheckpointPolicy.wait_mode(technique),
        PowerManager.energy_budget(eb),
        vm_size=vm_size,
        inputs=inputs,
        max_instructions=max_instructions,
    )
    return VerificationResult(
        completed=report.completed,
        outputs_match=report.outputs == ref_report.outputs,
        power_failures=report.power_failures,
        failure_reason=report.failure_reason,
    )
