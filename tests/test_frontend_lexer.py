"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import LexError
from repro.frontend import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestTokenKinds:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier_vs_keyword(self):
        tokens = tokenize("u32 foo")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_all_type_keywords(self):
        for name in ("u8", "i8", "u16", "i16", "u32", "i32", "void"):
            assert tokenize(name)[0].kind is TokenKind.KEYWORD

    def test_decimal_literal(self):
        token = tokenize("12345")[0]
        assert token.kind is TokenKind.INT and token.value == 12345

    def test_hex_literal(self):
        assert tokenize("0xff")[0].value == 255
        assert tokenize("0XAB")[0].value == 171

    def test_hex_without_digits_rejected(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_number_followed_by_letter_rejected(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_annotation(self):
        token = tokenize("@maxiter")[0]
        assert token.kind is TokenKind.ANNOTATION

    def test_unknown_annotation_rejected(self):
        with pytest.raises(LexError):
            tokenize("@frobnicate")


class TestPunctuation:
    def test_compound_operators_longest_match(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a >>= b") == ["a", ">>=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a < b") == ["a", "<", "b"]

    def test_logical_operators(self):
        assert texts("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_increment_decrement(self):
        assert texts("i++ j--") == ["i", "++", "j", "--"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3
