"""Parallel evaluation must be byte-identical to serial evaluation.

The engine prefills an EvaluationContext from worker processes; the
rendered tables must match a serial context character for character.
Likewise the testkit's parallel sweep and differential drivers must
produce exactly the records a serial run produces.
"""

import dataclasses

import pytest

from repro.experiments import ablations, common, engine, table3_forward_progress
from repro.experiments.common import EvaluationContext
from repro.runner.cache import ArtifactCache
from repro.testkit.differential import run_differential
from repro.testkit.sweep import sweep_technique

BENCH = "randmath"


def test_cell_planning_dedupes_and_normalizes():
    ctx = EvaluationContext(benchmarks=[BENCH])
    cells = engine.plan_run_all_cells(ctx, figure8_benchmark=BENCH)
    assert len(cells) == len(set(cells)), "planner must not emit duplicates"
    # Under the energy model no run cell may carry a TBPF (mirrors
    # EvaluationContext._run_key's normalization).
    assert all(c.tbpf is None for c in cells if c.kind == "run")


def test_prefill_rejects_cycles_model():
    ctx = EvaluationContext(benchmarks=[BENCH], failure_model="cycles")
    with pytest.raises(ValueError, match="energy"):
        engine.prefill(ctx, jobs=2)


def test_prefill_serial_is_noop():
    ctx = EvaluationContext(benchmarks=[BENCH])
    assert engine.prefill(ctx, jobs=1) == 0
    assert not ctx._runs and not ctx._references


def test_prefill_matches_serial_renders(tmp_path):
    serial = EvaluationContext(benchmarks=[BENCH])
    serial_table = table3_forward_progress.run(serial).render()
    serial_abl = ablations.run(serial).render()

    fanned = EvaluationContext(
        benchmarks=[BENCH], cache=ArtifactCache(tmp_path / "cache")
    )
    cells = engine.prefill(fanned, jobs=2, figure8_benchmark=BENCH)
    assert cells > 0
    assert table3_forward_progress.run(fanned).render() == serial_table
    assert ablations.run(fanned).render() == serial_abl
    # The prefill populated the caches: rendering must not have added
    # outcome cells beyond what the planner enumerated.
    assert fanned._references and fanned._runs and fanned._ablations


def test_sweep_parallel_matches_serial():
    serial = sweep_technique("sumloop", "schematic", granularity="all", jobs=1)
    fanned = sweep_technique("sumloop", "schematic", granularity="all", jobs=2)
    assert dataclasses.asdict(fanned) == dataclasses.asdict(serial)
    assert serial.runs > 0 and serial.ok


def test_sweep_parallel_matches_serial_with_violations():
    # Sabotage plants a bug; the merged parallel result must carry the
    # same verdicts and shrunk schedules as the serial sweep.
    serial = sweep_technique(
        "warloop", "ratchet", granularity="all", sabotage=True, jobs=1
    )
    fanned = sweep_technique(
        "warloop", "ratchet", granularity="all", sabotage=True, jobs=2
    )
    assert dataclasses.asdict(fanned) == dataclasses.asdict(serial)


def test_differential_parallel_matches_serial():
    kwargs = dict(
        programs=["sumloop", "warloop"], tbpf_values=[1_000], modes=["energy"]
    )
    serial = run_differential(jobs=1, **kwargs)
    fanned = run_differential(jobs=2, **kwargs)
    assert dataclasses.asdict(fanned) == dataclasses.asdict(serial)
    assert serial.verdicts and serial.ok
