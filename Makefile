# Convenience targets for the SCHEMATIC reproduction.

PYTHON ?= python

.PHONY: test sweep check check-bounds check-consistency check-transval fuzz bench bench-full bench-engine regress metrics experiments experiments-quick trace export examples clean

test:
	$(PYTHON) -m pytest tests/

# Deep fault-injection suite: exhaustive boundary sweeps and the
# differential grid (deselected from plain `make test` by the
# `-m "not sweep"` default in pyproject.toml).
sweep:
	$(PYTHON) -m pytest tests/ -m sweep

# Static certification of every program x technique pair (corpus +
# benchmarks; infeasible pairs are skipped). Exit code reflects gating
# findings, so this doubles as a CI gate.
check:
	$(PYTHON) -m repro.staticcheck --programs all --techniques all

# Loop-bound annotation verification on the *source* modules (no
# placement pass): unsound @maxiter, dead branches, provable OOB.
check-bounds:
	$(PYTHON) -m repro.staticcheck --bounds --programs all

# Memory-consistency certification (CONS rules) over the full matrix,
# emitting the SARIF document CI uploads as an artifact. Caching is
# disabled so the proof is re-derived from nothing on every run.
check-consistency:
	REPRO_CACHE=0 $(PYTHON) -m repro.staticcheck --programs all \
		--techniques all --consistency --no-cache
	REPRO_CACHE=0 $(PYTHON) -m repro.staticcheck --programs all \
		--techniques all --consistency --no-cache --format sarif \
		> staticcheck.sarif

# Translation validation over the full matrix: every placed module must
# be a certified refinement of its source (TV rules), folded into the
# merged every-family report (`--all`), whose SARIF document CI uploads
# as an artifact. Caching is disabled so every proof is re-derived.
check-transval:
	REPRO_CACHE=0 $(PYTHON) -m repro.staticcheck --programs all \
		--techniques all --all --no-cache
	REPRO_CACHE=0 $(PYTHON) -m repro.staticcheck --programs all \
		--techniques all --all --no-cache --format sarif \
		> staticcheck-all.sarif

fuzz:
	$(PYTHON) -m repro.testkit fuzz

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_BENCH=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine timing harness: cold vs warm cache vs parallel prefill, the
# differential-emulation grid and the interpreter pre-decode
# micro-benchmark; writes BENCH_pr8.json.
bench-engine:
	$(PYTHON) tools/bench_engine.py

# Benchmark-regression gate: re-run the timing harness and compare it
# against the committed BENCH_pr8.json baseline with noise-aware
# thresholds (regressed iff >1.5x slower AND >50ms lost). Exit codes:
# 0 ok, 1 regressed, 2 malformed input.
regress:
	$(PYTHON) -m repro.telemetry regress --baseline BENCH_pr8.json

# Metered quick evaluation: every worker writes a metrics-<pid>.jsonl
# sidecar under metrics/, the manifest embeds the merged rollup, and the
# CLI renders the human table. See docs/observability.md.
metrics:
	$(PYTHON) -m repro.experiments.run_all --quick --jobs auto \
		--metrics --metrics-dir metrics \
		--json metrics/manifest.json > /dev/null
	$(PYTHON) -m repro.telemetry metrics metrics

experiments:
	$(PYTHON) -m repro.experiments.run_all --jobs auto

experiments-quick:
	$(PYTHON) -m repro.experiments.run_all --quick --jobs auto

# Traced quick evaluation (serial, so runtime events land in the parent
# trace): writes traces/run_all.jsonl + traces/run_all.chrome.json (load
# in https://ui.perfetto.dev) and a run manifest, then renders the
# segment-energy headroom report — exit 1 if any observed window exceeds
# its certified bound. See docs/observability.md.
trace:
	$(PYTHON) -m repro.experiments.run_all --quick \
		--trace-dir traces --json traces/manifest.json > /dev/null
	$(PYTHON) -m repro.telemetry report traces/run_all.jsonl

export:
	$(PYTHON) -m repro.experiments.export artifacts/

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis artifacts
