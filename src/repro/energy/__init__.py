"""Energy model and platform description.

The worst-case energy-consumption (WCEC) model is an input to SCHEMATIC
(§II-B). Following the paper's evaluation (§IV-A), the model focuses on CPU
energy: "The energy spent per instruction is calculated from the instruction
execution time and the type of memory access (VM or NVM)" — the ALFRED
model. The preset targets the MSP430FR5969 (64 KB FRAM NVM, 2 KB SRAM VM,
16 MHz), where an NVM access costs 2.47x a VM access (§I, [12]).
"""

from repro.energy.model import EnergyModel, msp430fr5969_model
from repro.energy.platform import Platform, msp430fr5969_platform

__all__ = [
    "EnergyModel",
    "msp430fr5969_model",
    "Platform",
    "msp430fr5969_platform",
]
