"""Integer types of the IR.

The MSP430-class targets SCHEMATIC evaluates on are integer-only
microcontrollers, so the IR supports fixed-width two's-complement integers
(the MiBench2 kernels used in the paper are integer/fixed-point codes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntType:
    """A fixed-width integer type.

    Attributes:
        bits: width in bits (8, 16 or 32).
        signed: two's-complement signed if True, unsigned otherwise.
    """

    bits: int
    signed: bool

    def __post_init__(self) -> None:
        if self.bits not in (8, 16, 32):
            raise ValueError(f"unsupported integer width: {self.bits}")

    @property
    def size_bytes(self) -> int:
        """Storage size of one value of this type, in bytes."""
        return self.bits // 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this type's range with wraparound semantics.

        This is the single place where the emulator's integer arithmetic is
        made to match fixed-width hardware behaviour.
        """
        masked = value & ((1 << self.bits) - 1)
        if self.signed and masked >= (1 << (self.bits - 1)):
            masked -= 1 << self.bits
        return masked

    def contains(self, value: int) -> bool:
        """True if ``value`` is representable without wrapping."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.bits}"


I8 = IntType(8, True)
U8 = IntType(8, False)
I16 = IntType(16, True)
U16 = IntType(16, False)
I32 = IntType(32, True)
U32 = IntType(32, False)

_BY_NAME = {str(t): t for t in (I8, U8, I16, U16, I32, U32)}


def type_from_name(name: str) -> IntType:
    """Look up a type by its textual name (``"i32"``, ``"u8"``, ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown type name: {name!r}") from None


def common_type(a: IntType, b: IntType) -> IntType:
    """Usual-arithmetic-conversions result type for a binary operation.

    The wider width wins; on equal widths, unsigned wins (C-like promotion,
    which is what clang would produce for the MiBench kernels).
    """
    bits = max(a.bits, b.bits)
    if a.bits == b.bits:
        signed = a.signed and b.signed
    else:
        signed = a.signed if a.bits > b.bits else b.signed
    return IntType(bits, signed)
