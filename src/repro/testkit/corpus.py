"""Programs and compilers the testkit sweeps over.

Two sources of programs, behind one name space:

- a built-in corpus of small MiniC stress programs whose *dynamic*
  boundary counts are tiny enough for exhaustive (every dynamic step,
  single- and double-failure) sweeps;
- the eight MiBench2 benchmarks (:mod:`repro.programs`), where the sweep
  defaults to every *static* instruction boundary (first dynamic
  occurrence of each transformed-module instruction).

Both are :class:`repro.programs.base.Benchmark` instances, so they carry
their own evaluation inputs and profiling input generators.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import COMPILERS, CompiledTechnique
from repro.core.tracing import Profile
from repro.energy.platform import Platform
from repro.ir.module import Module
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.programs.base import Benchmark

#: Techniques whose runtime sleeps for a full recharge at each checkpoint —
#: the ones the §II-B forward-progress guarantee (zero failures under the
#: compile-time energy budget) applies to.
WAIT_MODE_TECHNIQUES = frozenset({"schematic", "rockclimb", "allnvm"})

#: Wait-mode techniques that keep *every* variable in NVM and never roll
#: back. Their crash consistency rests entirely on the recharge contract
#: (failures only ever strike when the budget is exhausted, i.e. at a
#: checkpoint); a power schedule that kills them mid-segment re-executes
#: NVM writes non-transparently, so WAR anomalies under such schedules are
#: a documented property, not a placement bug. SCHEMATIC is wait-mode too
#: but holds up in practice: its hot read-write scalars live in VM and are
#: restored from the snapshot on every reboot.
ALL_NVM_TECHNIQUES = frozenset({"rockclimb", "allnvm"})

_SUMLOOP = """
u32 result;
i32 data[16];
void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 16; i++) {
        acc += (u32) data[i] * 3;
    }
    result = acc;
}
"""

# A non-idempotent global updated every iteration: the canonical
# write-after-read pattern that turns a mid-segment re-execution into a
# memory anomaly when a transformation gets checkpointing wrong.
_WARLOOP = """
u32 total;
u32 rounds;
i32 data[12];
void main() {
    for (i32 i = 0; i < 12; i++) {
        total = total + (u32) data[i];
        rounds = rounds + 1;
        if ((total & 3) == 0) {
            total = total ^ 5;
        }
    }
}
"""

_BRANCHY = """
u32 result;
u32 selector;
i32 data[12];
void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 12; i++) {
        if ((selector & 1) != 0) {
            acc += (u32) data[i] * 5;
        } else {
            acc ^= (u32) data[i];
        }
        if (acc > 10000) {
            acc %= 997;
        }
    }
    result = acc;
}
"""

_CALLS = """
u32 result;
i32 data[8];

u32 weight(u32 x) {
    u32 w = 0;
    @maxiter(32)
    while (x != 0) {
        w += x & 1;
        x >>= 1;
    }
    return w;
}

void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 8; i++) {
        acc += weight((u32) data[i] + (u32) i);
    }
    result = acc;
}
"""

#: The built-in corpus, keyed by name. All programs are small on purpose:
#: an exhaustive dynamic sweep multiplies the run length by the boundary
#: count.
CORPUS: Dict[str, Benchmark] = {
    "sumloop": Benchmark(
        name="sumloop",
        source=_SUMLOOP,
        input_vars={"data": 100},
        output_vars=["result"],
    ),
    "warloop": Benchmark(
        name="warloop",
        source=_WARLOOP,
        input_vars={"data": 50},
        output_vars=["total", "rounds"],
    ),
    "branchy": Benchmark(
        name="branchy",
        source=_BRANCHY,
        input_vars={"data": 200, "selector": 2},
        output_vars=["result"],
    ),
    "calls": Benchmark(
        name="calls",
        source=_CALLS,
        input_vars={"data": 50},
        output_vars=["result"],
    ),
}


def available_programs() -> List[str]:
    """Corpus names followed by the benchmark names."""
    return list(CORPUS) + list(BENCHMARK_NAMES)


def load_program(name: str) -> Benchmark:
    """Resolve a program name against the corpus, then the benchmarks."""
    if name in CORPUS:
        return CORPUS[name]
    if name in BENCHMARK_NAMES:
        return get_benchmark(name)
    raise KeyError(
        f"unknown program {name!r}; choose from {available_programs()}"
    )


def compile_for(
    technique: str,
    module: Module,
    platform: Platform,
    input_generator=None,
    profile: Optional[Profile] = None,
) -> CompiledTechnique:
    """Compile ``module`` with one technique through the uniform API."""
    if technique not in COMPILERS:
        raise KeyError(
            f"unknown technique {technique!r}; "
            f"choose from {sorted(COMPILERS)}"
        )
    compiler = COMPILERS[technique]
    if technique in ("schematic", "rockclimb", "allnvm"):
        return compiler(
            module, platform, profile=profile, input_generator=input_generator
        )
    return compiler(module, platform)
