"""Per-function analysis: loops bottom-up, then the function-level region.

Functions are processed callee-first over the call graph (§III-B1); each
function's final decisions are summarized as a
:class:`~repro.core.summaries.FunctionResult` imposed on its callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.analysis.cfg import CFG
from repro.analysis.liveness import FunctionAccessSummaries, LivenessInfo
from repro.analysis.loops import LoopNest
from repro.core.allocation import SegmentContext
from repro.core.loop_analysis import (
    BackedgeCheckpoint,
    LoopAnalysisOutput,
    analyze_loop,
)
from repro.core.path_analysis import (
    PlacedCheckpoint,
    RegionAnalysis,
    RegionOutcome,
)
from repro.core.region import (
    AtomKind,
    CostEnv,
    RegionBuilder,
    RegionGraph,
)
from repro.core.summaries import CkptBearing, FunctionResult, LoopResult, SharedAlloc
from repro.core.tracing import Profile, loop_region_paths, region_paths_from_traces
from repro.energy.model import EnergyModel
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import MemorySpace, Variable


@dataclass
class FunctionPlan:
    """Everything the transformation pass needs for one function."""

    function: str
    #: space decisions: (label, instruction index) -> VM/NVM
    access_spaces: Dict[Tuple[str, int], MemorySpace] = field(default_factory=dict)
    #: enabled checkpoints (function region + loop bodies)
    checkpoints: List[PlacedCheckpoint] = field(default_factory=list)
    #: back-edge (conditional) checkpoints
    backedges: List[BackedgeCheckpoint] = field(default_factory=list)
    #: entry checkpoint data for the module's entry function
    entry_restore: Tuple[str, ...] = ()
    entry_alloc: Dict[str, MemorySpace] = field(default_factory=dict)


class FunctionAnalyzer:
    """Analyzes one function given the results of all its callees."""

    def __init__(
        self,
        module: Module,
        func: Function,
        model: EnergyModel,
        eb: float,
        vm_capacity: int,
        summaries: FunctionAccessSummaries,
        function_results: Dict[str, FunctionResult],
        profile: Profile,
        variables: Dict[str, Variable],
        is_entry: bool,
        force_loop_checkpoints: bool = False,
        checkpoint_around_calls: bool = False,
        max_numit: Optional[int] = None,
        amortize_loop_gains: bool = True,
        liveness_trimming: bool = True,
    ):
        self.module = module
        self.func = func
        self.model = model
        self.eb = eb
        self.vm_capacity = vm_capacity
        self.summaries = summaries
        self.function_results = function_results
        self.profile = profile
        self.variables = variables
        self.is_entry = is_entry
        self.force_loop_checkpoints = force_loop_checkpoints
        self.checkpoint_around_calls = checkpoint_around_calls
        self.max_numit = max_numit
        self.amortize_loop_gains = amortize_loop_gains
        self.liveness_trimming = liveness_trimming

        self.cfg = CFG(func)
        self.nest = LoopNest(self.cfg)
        self.liveness = LivenessInfo(func, module, summaries, self.cfg)
        self.loop_results: Dict[str, LoopResult] = {}
        self.loop_outputs: Dict[str, LoopAnalysisOutput] = {}
        self.env = CostEnv(
            model=model,
            eb=eb,
            summaries=summaries,
            function_results=function_results,
            loop_results=self.loop_results,
        )
        self.builder = RegionBuilder(func, self.cfg, self.nest, self.env)
        self.ctx = SegmentContext(
            model=model,
            vm_capacity=vm_capacity,
            variables=variables,
            trim_with_liveness=liveness_trimming,
        )

    # ---------------------------------------------------------------- liveness

    def _live_at_edge_fn(self, region: RegionGraph):
        liveness = self.liveness

        def live_at_edge(src_uid: int, dst_uid: int) -> Set[str]:
            if src_uid == -1:
                # Region entry: live at the entry atom's first position.
                atom = region.atom(dst_uid)
                if atom.kind is AtomKind.LOOP:
                    return set(liveness.live_in[atom.label])
                return liveness.live_before_instruction(atom.label, atom.start)
            live: Set[str] = set()
            for point in region.edge_points(src_uid, dst_uid):
                if point.kind == "inst":
                    live |= liveness.live_before_instruction(
                        point.label, point.index
                    )
                else:
                    live |= liveness.live_in[point.dst]
            return live

        return live_at_edge

    def _exit_live(self) -> Set[str]:
        live = {
            v.name for v in self.module.globals.values() if not v.is_const
        }
        for var in self.func.variables.values():
            if var.is_ref:
                live.add(var.name)
        return live

    def _loop_ctx(self, loop, region: RegionGraph) -> SegmentContext:
        """Segment context for a loop body: same capacity/variables, but
        with the Eq. 1 gain amortized over the expected conditional-
        checkpoint window (see SegmentContext.gain_amortization)."""
        e_iter_nvm = sum(
            atom.worst_case_energy(self.model)
            for atom in region.atoms.values()
            if not atom.is_barrier
        ) + sum(
            atom.base_energy
            for atom in region.atoms.values()
            if atom.is_barrier
        )
        overhead = self.model.save_energy(32) + self.model.restore_energy(32)
        window = max(self.eb - overhead, 0.0)
        estimate = int(window // e_iter_nvm) if e_iter_nvm > 0 else 1 << 20
        estimate = max(estimate, 1)
        if loop.maxiter is not None:
            estimate = min(estimate, loop.maxiter)
        estimate = min(estimate, 4096)
        if not self.amortize_loop_gains:
            estimate = 1
        return SegmentContext(
            model=self.model,
            vm_capacity=self.vm_capacity,
            variables=self.variables,
            gain_amortization=float(estimate),
            trim_with_liveness=self.liveness_trimming,
        )

    # ---------------------------------------------------------------- analysis

    def analyze(self) -> Tuple[FunctionResult, FunctionPlan]:
        traces = self.profile.function_traces(self.func.name)

        # Loops bottom-up (§III-B2).
        loop_regions: Dict[str, RegionGraph] = {}
        for loop in self.nest.bottom_up():
            with telemetry.span(
                "placer.loop", function=self.func.name, loop=loop.header
            ) as span:
                region = self.builder.build_loop_region(loop)
                loop_regions[loop.header] = region
                paths = loop_region_paths(region, loop, traces)
                span.set(atoms=len(region.atoms), paths=len(paths))
                output = analyze_loop(
                    loop,
                    region,
                    paths,
                    self._loop_ctx(loop, region),
                    self.eb,
                    self._live_at_edge_fn(region),
                    self._exit_live() | self.liveness.live_in[loop.header],
                    force_checkpoint=self.force_loop_checkpoints,
                    max_numit=self.max_numit,
                )
            self.loop_results[loop.header] = output.result
            self.loop_outputs[loop.header] = output

        # Function-level region.
        with telemetry.span(
            "placer.region.build", function=self.func.name
        ) as span:
            region = self.builder.build_function_region()
            paths = region_paths_from_traces(region, traces)
            span.set(atoms=len(region.atoms), paths=len(paths))
        analysis = RegionAnalysis(
            region,
            self.ctx,
            self.eb,
            live_at_edge=self._live_at_edge_fn(region),
            exit_live=self._exit_live(),
            exit_need=0.0 if self.is_entry else self.model.save_energy(0),
            exit_is_checkpoint=self.is_entry,
        )
        with telemetry.span(
            "placer.region.analyze", function=self.func.name
        ):
            outcome = analysis.analyze(paths)

        result = self._summarize(region, outcome)
        plan = self._build_plan(region, loop_regions, outcome)
        return result, plan

    # ---------------------------------------------------------------- summary

    def _caller_visible(self) -> Set[str]:
        summary = self.summaries.summary(self.func.name)
        return set(summary.reads) | set(summary.writes)

    def _summarize(
        self, region: RegionGraph, outcome: RegionOutcome
    ) -> FunctionResult:
        model = self.model
        visible = self._caller_visible()
        summary = self.summaries.summary(self.func.name)

        shared_counts = summary.counts
        # Reconstruct the base energy a caller should charge: the worst-case
        # traversal energy minus the caller-visible accesses it will count
        # itself (costed under this function's own final placements, which
        # the caller is forced to adopt).
        shared_access_energy = 0.0
        alloc = dict(outcome.entry_alloc)
        alloc.update(outcome.exit_alloc)
        for name in set(shared_counts.reads) | set(shared_counts.writes):
            if name not in visible:
                continue
            count = shared_counts.total(name)
            space = alloc.get(name, MemorySpace.NVM)
            shared_access_energy += count * model.access_cost_in_space(space)
        base_energy = max(outcome.total_energy - shared_access_energy, 0.0)

        # Restrict the caller-visible count space.
        from repro.analysis.accesses import AccessCounts

        visible_counts = AccessCounts()
        for name, count in shared_counts.reads.items():
            if name in visible:
                visible_counts.add_read(name, count)
        for name, count in shared_counts.writes.items():
            if name in visible:
                visible_counts.add_write(name, count)

        local_names = {
            v.name for v in self.func.variables.values() if not v.is_ref
        }
        private_reserve = max(
            (
                atom.shared.private_reserve
                for atom in region.atoms.values()
                if atom.shared is not None
            ),
            default=0,
        )

        if outcome.plain and self.checkpoint_around_calls and not self.is_entry:
            # ROCKCLIMB mode: every call is bracketed by checkpoints, so the
            # callee is summarized as a barrier even without internal ones.
            ckpt = CkptBearing(
                e_to_first=outcome.total_energy,
                e_from_last=outcome.total_energy,
                internal_energy=outcome.total_energy,
                entry_forced=dict(outcome.entry_alloc),
                entry_vm=outcome.entry_vm,
                entry_restore=outcome.entry_restore,
                exit_forced=dict(outcome.exit_alloc),
                exit_vm=outcome.exit_vm,
                exit_dirty=outcome.exit_dirty,
                private_reserve=private_reserve,
            )
            return FunctionResult(
                name=self.func.name,
                base_energy=base_energy,
                shared_counts=visible_counts,
                ckpt=ckpt,
                vm_reserved=outcome.vm_bytes_peak,
            )

        if outcome.plain:
            forced = dict(outcome.combined_alloc)
            forced.update(outcome.entry_alloc)
            vm_names = tuple(
                sorted(n for n, s in forced.items() if s is MemorySpace.VM)
            )
            vm_reserved = private_reserve + sum(
                self.variables[n].size_bytes
                for n in vm_names
                if n in local_names and n in self.variables
            )
            shared = SharedAlloc(
                forced=forced,
                vm_names=vm_names,
                restore_names=outcome.entry_restore,
                dirty_names=tuple(
                    n for n in outcome.exit_dirty if n in visible
                ),
                private_reserve=vm_reserved,
            )
            return FunctionResult(
                name=self.func.name,
                base_energy=base_energy,
                shared_counts=visible_counts,
                shared=shared,
                vm_reserved=vm_reserved,
            )

        ckpt = CkptBearing(
            e_to_first=outcome.e_to_first,
            e_from_last=outcome.e_from_last,
            internal_energy=outcome.total_energy,
            entry_forced=dict(outcome.entry_alloc),
            entry_vm=outcome.entry_vm,
            entry_restore=outcome.entry_restore,
            exit_forced=dict(outcome.exit_alloc),
            exit_vm=outcome.exit_vm,
            exit_dirty=outcome.exit_dirty,
            private_reserve=private_reserve,
        )
        return FunctionResult(
            name=self.func.name,
            base_energy=base_energy,
            shared_counts=visible_counts,
            ckpt=ckpt,
            vm_reserved=outcome.vm_bytes_peak,
        )

    # ---------------------------------------------------------------- plan

    def _build_plan(
        self,
        region: RegionGraph,
        loop_regions: Dict[str, RegionGraph],
        outcome: RegionOutcome,
    ) -> FunctionPlan:
        plan = FunctionPlan(function=self.func.name)

        def record_spaces(
            reg: RegionGraph, alloc_of: Dict[int, Dict[str, MemorySpace]]
        ) -> None:
            for uid, atom in reg.atoms.items():
                if atom.kind is not AtomKind.SLICE:
                    continue
                alloc = alloc_of.get(uid, {})
                block = self.func.blocks[atom.label]
                for idx in range(atom.start, atom.end):
                    inst = block.instructions[idx]
                    var = getattr(inst, "var", None)
                    if var is None:
                        continue
                    if var.pinned_nvm or var.is_ref:
                        space = MemorySpace.NVM
                    else:
                        space = alloc.get(var.name, MemorySpace.NVM)
                    plan.access_spaces[(atom.label, idx)] = space

        record_spaces(region, outcome.atom_alloc)
        plan.checkpoints.extend(outcome.checkpoints)

        for header, output in self.loop_outputs.items():
            record_spaces(loop_regions[header], output.outcome.atom_alloc)
            plan.checkpoints.extend(output.outcome.checkpoints)
            if output.backedge is not None:
                plan.backedges.append(output.backedge)

        if self.is_entry:
            plan.entry_restore = outcome.entry_restore
            plan.entry_alloc = dict(outcome.entry_alloc)
        return plan
