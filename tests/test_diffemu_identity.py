"""Differential-emulation identity suite: forked == cold, bit for bit.

The contract :mod:`repro.emulator.diffemu` makes — and the experiment
engine relies on — is that a differentially emulated cell is
*indistinguishable* from a cold one: the full
:class:`~repro.emulator.report.ExecutionReport` (outputs, energy
breakdown, counters, failure offsets), the power failure log, the
``step_hook`` stream suffix and, for the engine's telemetry-instrumented
paths, the runtime event stream. This file pins that contract:

- column identity over corpus programs x techniques x power modes
  (synthesize, fork and cold plans all exercised);
- a hypothesis property: *every* snapshot on a densely recorded tape
  resumes into the recording's exact report;
- forked ``step_hook`` streams are suffixes of the cold stream;
- instrumented (telemetry) runs take the cold path, so observation
  streams cannot diverge by construction.

The default grid keeps tier-1 fast; ``-m sweep`` widens it to every
benchmark x technique x mode (see ``make sweep``).
"""

from typing import Dict, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.emulator import run_continuous, run_intermittent
from repro.emulator.diffemu import (
    PowerSpec,
    fork_cell,
    record_tape,
    run_cell,
)
from repro.energy import msp430fr5969_platform
from repro.experiments.common import EvaluationContext
from repro.programs import BENCHMARK_NAMES
from repro.testkit.corpus import compile_for, load_program

TBPF = 10_000

#: Tier-1 grid: two small corpus programs, every tape-eligible technique.
DEFAULT_PROGRAMS = ("warloop", "calls")
TECHNIQUES = ("schematic", "ratchet", "rockclimb", "alfred", "allnvm")

_COLUMNS: Dict[Tuple[str, str], Tuple] = {}


def _column(program: str, technique: str):
    """Compile one (program, technique) column at the paper's EB-for-TBPF
    conversion; memoized because compilation dominates the suite."""
    key = (program, technique)
    if key not in _COLUMNS:
        bench = load_program(program)
        proto = msp430fr5969_platform()
        ref = run_continuous(
            bench.module, proto.model, inputs=bench.default_inputs()
        )
        eb = ref.energy.total / max(ref.active_cycles, 1) * TBPF
        plat = msp430fr5969_platform(eb=eb)
        compiled = compile_for(
            technique, bench.module, plat,
            input_generator=bench.input_generator(),
        )
        _COLUMNS[key] = (plat, bench, compiled, eb)
    return _COLUMNS[key]


def _specs(eb: float, final_timeline: int, seeds=(3,)):
    """One cell per power mode, chosen to hit all three plan kinds:
    ample budgets synthesize, tight ones fork or fall back."""
    specs = [
        PowerSpec.energy_budget(eb),
        PowerSpec.energy_budget(eb * 4),
        PowerSpec.energy_budget(eb / 4),
        PowerSpec.periodic(tbpf=TBPF, eb=eb),
        PowerSpec.periodic(tbpf=TBPF * 10, eb=eb),
        PowerSpec.scheduled((final_timeline // 2,), eb=eb),
    ]
    specs += [
        PowerSpec.stochastic(mean_cycles=TBPF, seed=s, eb=eb) for s in seeds
    ]
    return specs


def _assert_column_identical(program: str, technique: str, seeds=(3,)):
    plat, bench, compiled, eb = _column(program, technique)
    if not compiled.feasible:
        pytest.skip(f"{technique} infeasible on {program}")
    inputs = bench.default_inputs()
    tape = record_tape(
        compiled.module, plat.model, compiled.policy,
        vm_size=plat.vm_size, inputs=inputs,
    )
    kinds = set()
    for spec in _specs(eb, tape.final.timeline, seeds=seeds):
        cold = run_intermittent(
            compiled.module, plat.model, compiled.policy, spec.build(),
            vm_size=plat.vm_size, inputs=inputs,
        )
        got, plan = run_cell(
            compiled.module, plat.model, compiled.policy, spec, tape,
            vm_size=plat.vm_size, inputs=inputs,
        )
        kinds.add(plan.kind)
        assert repr(got) == repr(cold), (
            f"{program}/{technique} under {spec.describe()} "
            f"(plan={plan.kind}): diff emulation diverged from cold"
        )
        assert got.failure_offsets == cold.failure_offsets
        assert got.outputs == cold.outputs
    return kinds


@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("program", DEFAULT_PROGRAMS)
def test_column_identity(program, technique):
    kinds = _assert_column_identical(program, technique)
    # The ample-budget cells of a wait-mode column never fail: they must
    # be synthesized, not re-emulated (that is where the speedup lives).
    if _column(program, technique)[2].policy.wait_for_full_recharge:
        assert "synthesize" in kinds


@pytest.mark.sweep
@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("program", BENCHMARK_NAMES)
def test_column_identity_exhaustive(program, technique):
    _assert_column_identical(program, technique, seeds=(0, 1, 2, 3))


def test_voltage_checking_policies_cannot_be_taped():
    """MEMENTOS consults the remaining charge before any failure; its
    prefix is mode-dependent, so recording must refuse outright."""
    plat, bench, compiled, _ = _column("warloop", "mementos")
    with pytest.raises(ValueError):
        record_tape(
            compiled.module, plat.model, compiled.policy,
            vm_size=plat.vm_size, inputs=bench.default_inputs(),
        )


# -- every snapshot resumes exactly -------------------------------------------

_DENSE: Dict[str, Tuple] = {}


def _dense_tape():
    """A tape keeping *every* commit of the recording (no thinning)."""
    if "tape" not in _DENSE:
        plat, bench, compiled, _ = _column("warloop", "schematic")
        tape = record_tape(
            compiled.module, plat.model, compiled.policy,
            vm_size=plat.vm_size, inputs=bench.default_inputs(),
            max_snapshots=1 << 30,
        )
        assert len(tape.entries) == tape.commits
        _DENSE["tape"] = (plat, bench, compiled, tape)
    return _DENSE["tape"]


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_random_snapshot_restores_exactly(data):
    """Resuming any commit's snapshot under continuous power replays the
    rest of the recording and lands on the recording's exact report —
    capture/restore is lossless at every commit index."""
    plat, bench, compiled, tape = _dense_tape()
    idx = data.draw(st.integers(0, len(tape.entries) - 1))
    report = fork_cell(
        compiled.module, plat.model, compiled.policy,
        PowerSpec.continuous(), tape, idx,
        vm_size=plat.vm_size, inputs=bench.default_inputs(),
    )
    assert repr(report) == repr(tape.report)


def test_forked_step_hook_stream_is_a_cold_suffix():
    """The instrumentable boundary stream of a fork must be exactly the
    cold run's tail: same sites, same cycle counts, in order."""
    plat, bench, compiled, tape = _dense_tape()
    spec = PowerSpec.continuous()

    cold_stream = []
    run_intermittent(
        compiled.module, plat.model, compiled.policy, spec.build(),
        vm_size=plat.vm_size, inputs=bench.default_inputs(),
        step_hook=lambda site, cycles: cold_stream.append((site, cycles)),
    )
    fork_stream = []
    fork_cell(
        compiled.module, plat.model, compiled.policy, spec, tape,
        len(tape.entries) // 2,
        vm_size=plat.vm_size, inputs=bench.default_inputs(),
        step_hook=lambda site, cycles: fork_stream.append((site, cycles)),
    )
    assert fork_stream, "fork executed nothing"
    assert len(fork_stream) < len(cold_stream)
    assert cold_stream[-len(fork_stream):] == fork_stream


# -- observation streams ------------------------------------------------------


@pytest.fixture(autouse=True)
def _no_global_leak():
    yield
    assert telemetry.get() is None, "test leaked an enabled telemetry handle"
    telemetry.disable()


def test_telemetry_event_stream_identical_with_diff_emulation():
    """Instrumented cells take the cold path (diffemu would elide the
    prefix's runtime events), so the recorded stream is bit-identical
    whether differential emulation is enabled or not."""

    def runtime_events(diff: bool):
        ctx = EvaluationContext(benchmarks=["crc"], diff_emulation=diff)
        with telemetry.enabled() as tm:
            ctx.run("schematic", "crc", ctx.eb_for_tbpf("crc", TBPF))
        stream = [
            e for e in tm.events
            if e.get("track") == telemetry.TRACK_RUNTIME
        ]
        return stream, ctx

    cold_stream, _ = runtime_events(False)
    diff_stream, ctx = runtime_events(True)
    assert cold_stream, "no runtime events recorded"
    assert diff_stream == cold_stream
    assert ctx.diffemu_stats.tapes_recorded == 0, (
        "telemetry-instrumented cells must not use the tape path"
    )
