"""Ablations of SCHEMATIC's design choices (beyond the paper's All-NVM).

DESIGN.md calls out three load-bearing decisions; each gets an ablated
variant compared against full SCHEMATIC at TBPF = 10k:

- ``no-amortization`` — Eq. 1 gains evaluated over a single loop iteration
  instead of the conditional-checkpoint window (DESIGN.md deviation 2).
  Expected: almost nothing is VM-allocated, energy approaches All-NVM.
- ``no-liveness-trim`` — Eq. 2's trimming disabled: every checkpoint saves
  and restores all VM residents (§III-A2's optimization off). Expected:
  higher save/restore energy, same computation energy.
- ``numit-1`` — the conditional back-edge checkpoint fires every iteration
  (the "straightforward approach" Algorithm 1 improves on, §III-B2).
  Expected: checkpoint traffic dominates on loop-heavy kernels.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import telemetry
from repro.baselines.common import compile_schematic
from repro.core.placement import SchematicConfig
from repro.emulator.diffemu import PowerSpec
from repro.experiments.common import EvaluationContext

DEFAULT_TBPF = 10_000

VARIANTS: Dict[str, SchematicConfig] = {
    "full": SchematicConfig(),
    "no-amortization": SchematicConfig(amortize_loop_gains=False),
    "no-liveness-trim": SchematicConfig(liveness_trimming=False),
    "numit-1": SchematicConfig(force_loop_checkpoints=True, max_numit=1),
    "allnvm": SchematicConfig(all_nvm=True),
}


@dataclass
class AblationCell:
    variant: str
    benchmark: str
    completed: bool
    total: float = 0.0  # nJ
    computation: float = 0.0
    save: float = 0.0
    restore: float = 0.0
    vm_accesses: int = 0


@dataclass
class AblationResult:
    tbpf: int
    cells: Dict[str, Dict[str, AblationCell]]  # variant -> benchmark -> cell
    benchmarks: List[str]

    def total_of(self, variant: str) -> float:
        return sum(
            self.cells[variant][b].total
            for b in self.benchmarks
            if self.cells[variant][b].completed
        )

    def overhead_vs_full(self, variant: str) -> float:
        """Energy of a variant relative to full SCHEMATIC (1.0 = equal)."""
        full = self.total_of("full")
        return self.total_of(variant) / full if full else float("inf")

    def render(self) -> str:
        lines = [
            f"Ablations of SCHEMATIC at TBPF={self.tbpf} (uJ)",
            f"{'benchmark':<12}{'variant':<18}{'total':>9}{'comp':>9}"
            f"{'save':>9}{'restore':>9}{'VM-acc':>9}",
        ]
        for name in self.benchmarks:
            for variant in VARIANTS:
                cell = self.cells[variant][name]
                if not cell.completed:
                    lines.append(f"{name:<12}{variant:<18}{'x':>9}")
                    continue
                lines.append(
                    f"{name:<12}{variant:<18}{cell.total / 1000:>9.1f}"
                    f"{cell.computation / 1000:>9.1f}{cell.save / 1000:>9.1f}"
                    f"{cell.restore / 1000:>9.1f}{cell.vm_accesses:>9}"
                )
        for variant in VARIANTS:
            if variant == "full":
                continue
            lines.append(
                f"{variant} costs {self.overhead_vs_full(variant):.2f}x "
                "the energy of full SCHEMATIC"
            )
        return "\n".join(lines)


def compute_cell(
    ctx: EvaluationContext, variant: str, name: str, tbpf: int
) -> AblationCell:
    """One ablated-variant emulation, cached in the context (and on disk
    when the context has a persistent cache) so parallel prefills and warm
    re-runs skip it."""
    mem_key = (variant, name, tbpf)
    cached = ctx._ablations.get(mem_key)
    if cached is not None:
        return cached
    config = VARIANTS[variant]
    parts = (
        "ablation", variant, name, ctx._module_fp(name), ctx._platform_fp(),
        tbpf, repr(config), ctx._inputs_fp(name), ctx.profile_runs,
    )
    tm = telemetry.get()
    cell = ctx._cache_get("ablation", parts) if tm is None else None
    if cell is None:
        bench = ctx.benchmark(name)
        eb = ctx.eb_for_tbpf(name, tbpf)
        platform = ctx.platform_proto.with_eb(eb)
        compiled = compile_schematic(
            bench.module, platform, profile=ctx.profile(name), config=config
        )
        if tm is not None:
            scope = tm.scope(
                benchmark=name, technique=f"ablation:{variant}",
                eb=round(eb, 3), tbpf=tbpf,
            )
        else:
            scope = nullcontext()
        with scope:
            if tm is not None:
                ctx._emit_segment_bounds(tm, compiled, eb)
            # Routed through the context's emulation front-end: diff
            # emulation when enabled (ablated variants are wait-mode
            # columns, usually synthesized), cold otherwise.
            report = ctx._emulate(
                f"ablation:{variant}", name, eb, compiled, platform, bench,
                PowerSpec.energy_budget(eb), tm,
            )
        ok = report.completed and report.outputs == ctx.reference(name).outputs
        cell = AblationCell(variant=variant, benchmark=name, completed=ok)
        if ok:
            cell.total = report.energy.total
            cell.computation = report.energy.computation
            cell.save = report.energy.save
            cell.restore = report.energy.restore
            cell.vm_accesses = report.vm_accesses
        ctx._cache_put("ablation", parts, cell)
    ctx._ablations[mem_key] = cell
    return cell


def run(
    ctx: Optional[EvaluationContext] = None, tbpf: int = DEFAULT_TBPF
) -> AblationResult:
    ctx = ctx or EvaluationContext()
    cells: Dict[str, Dict[str, AblationCell]] = {v: {} for v in VARIANTS}
    for name in ctx.benchmark_names:
        for variant in VARIANTS:
            cells[variant][name] = compute_cell(ctx, variant, name, tbpf)
    return AblationResult(
        tbpf=tbpf, cells=cells, benchmarks=list(ctx.benchmark_names)
    )


def main() -> None:
    ctx = EvaluationContext(benchmarks=["basicmath", "crc", "randmath"])
    print(run(ctx).render())


if __name__ == "__main__":
    main()
