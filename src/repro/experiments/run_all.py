"""Regenerate every table and figure; writes results to stdout.

Usage::

    python -m repro.experiments.run_all [--quick] [--jobs N|auto]
                                        [--no-cache] [--cache-dir DIR]
                                        [--benchmarks a,b,c]
                                        [--trace] [--trace-dir DIR]
                                        [--metrics] [--metrics-dir DIR]
                                        [--json PATH]

``--quick`` restricts to the four fastest benchmarks (crc, randmath,
basicmath, fft) so the whole sweep finishes in a couple of minutes.

``--jobs N|auto`` fans the evaluation cells across N worker processes
(``auto`` = one per CPU) before rendering; the tables and figures are
byte-identical to a serial run. ``--no-cache`` disables the persistent
artifact cache under ``.repro-cache/`` (see docs/performance.md); with the
cache enabled, a warm re-run skips compilation and emulation entirely.
Progress and cache statistics go to stderr, results to stdout.

``--trace`` records a telemetry trace of the whole evaluation — compiler
phase spans, runtime checkpoint/power events and static segment bounds —
and writes ``run_all.jsonl`` + ``run_all.trace.json`` (Chrome trace
viewer / Perfetto) under ``--trace-dir`` (default ``traces/``); a given
``--trace-dir`` implies ``--trace``. Render the headroom report with
``python -m repro.telemetry report traces/run_all.jsonl``. Worker
processes do not feed the parent's trace: use ``--jobs 1`` for full
runtime-event capture (see docs/observability.md).

``--metrics`` records aggregated metrics (engine cell counts, interpreter
cold-path counters, cache hit/miss totals) without full tracing; every
pool worker writes a per-process ``metrics-<pid>.jsonl`` sidecar under
``--metrics-dir`` (default: the trace directory) and the parent merges
them deterministically — serial and parallel runs roll up to the same
values. Inspect with ``python -m repro.telemetry metrics DIR``. With
metrics on, a flight recorder also captures a bounded event ring and
writes a ``postmortem-<pid>.json`` bundle on crash (``python -m
repro.telemetry postmortem DIR``). Results on stdout stay byte-identical
whether metrics are on or off.

``--json PATH`` writes a machine-readable manifest of the run: per-section
wall-clock, cache statistics, prefill worker balance, the platform,
module and input fingerprints that key the artifact cache, and (with
``--metrics``) the merged cross-process metrics rollup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.telemetry import flight, metrics
from repro.telemetry.rollup import (
    SIDECAR_PREFIX,
    SIDECAR_SUFFIX,
    publish_cache_stats,
    publish_diffemu_stats,
    rollup_directory,
    rollup_json,
    write_sidecar,
)
from repro.core import verify as core_verify
from repro.experiments import common, engine
from repro.experiments import (
    ablations,
    analysis_cost,
    figure6_energy_breakdown,
    figure7_allocation_quality,
    figure8_capacitor_size,
    table1_vm_feasibility,
    table2_exec_time,
    table3_forward_progress,
)
from repro.runner.cache import ArtifactCache
from repro.runner.pool import resolve_jobs

QUICK_BENCHMARKS = ["basicmath", "crc", "fft", "randmath"]

SECTIONS = [
    ("Table I", table1_vm_feasibility),
    ("Table II", table2_exec_time),
    ("Table III", table3_forward_progress),
    ("Figure 6", figure6_energy_breakdown),
    ("Figure 7", figure7_allocation_quality),
    ("Figure 8", figure8_capacitor_size),
    ("Analysis cost", analysis_cost),
    ("Ablations", ablations),
]

#: Manifest format version (the ``--json`` output). v2 renames the
#: version key to ``schema_version`` and adds the merged cross-process
#: ``metrics`` rollup (``null`` when metrics are off).
MANIFEST_SCHEMA = 2


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--quick", action="store_true",
                        help="four fastest benchmarks only")
    parser.add_argument("--benchmarks", type=_csv, default=None,
                        help="explicit comma-separated benchmark subset")
    parser.add_argument("--jobs", default="1", metavar="N|auto",
                        help="worker processes for the evaluation cells")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact cache")
    parser.add_argument("--diff-emulation", dest="diff_emulation",
                        action="store_true", default=True,
                        help="differential emulation: record one snapshot "
                        "tape per column and replay only each cell's "
                        "failure suffix (default; see docs/performance.md)")
    parser.add_argument("--no-diff-emulation", dest="diff_emulation",
                        action="store_false",
                        help="escape hatch: cold-emulate every cell")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default "
                        ".repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--trace", action="store_true",
                        help="record a telemetry trace (JSONL + Chrome "
                        "trace JSON)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="trace output directory (default traces/; "
                        "implies --trace)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable run manifest")
    parser.add_argument("--metrics", action="store_true",
                        help="record aggregated metrics (engine/interpreter/"
                        "cache counters) without full tracing; workers "
                        "write per-process JSONL sidecars that merge into "
                        "the --json manifest (tracing implies this)")
    parser.add_argument("--metrics-dir", default=None, metavar="DIR",
                        help="metrics sidecar directory (default: the trace "
                        "directory; implies --metrics)")
    return parser


def make_context(args: argparse.Namespace) -> common.EvaluationContext:
    benchmarks: Optional[List[str]] = args.benchmarks
    if benchmarks is None and args.quick:
        benchmarks = QUICK_BENCHMARKS
    cache = None if args.no_cache else ArtifactCache.default(args.cache_dir)
    return common.EvaluationContext(
        benchmarks=benchmarks, cache=cache,
        diff_emulation=args.diff_emulation,
    )


def render_sections(
    ctx: common.EvaluationContext, out=None
) -> List[Tuple[str, float]]:
    """Run and print every section; returns (title, seconds) per section
    for the ``--json`` manifest."""
    out = out if out is not None else sys.stdout
    timings: List[Tuple[str, float]] = []
    for title, module in SECTIONS:
        start = time.perf_counter()
        with telemetry.span("experiments.section", section=title):
            result = module.run(ctx)
        elapsed = time.perf_counter() - start
        print("=" * 72, file=out)
        print(result.render(), file=out)
        if hasattr(result, "render_chart"):
            print(file=out)
            print(result.render_chart(), file=out)
        print(f"[{title} regenerated in {elapsed:.1f}s]", file=out)
        print(file=out)
        timings.append((title, elapsed))
    return timings


def build_manifest(
    ctx: common.EvaluationContext,
    jobs: int,
    timings: List[Tuple[str, float]],
    prefill_stats: Dict[str, Any],
    total_seconds: float,
    trace_paths: Optional[Dict[str, Path]],
    metrics_rollup: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Everything needed to compare two runs: what ran, how long each
    piece took, how the cache behaved, the content fingerprints that
    key the artifacts (platform constants, module text, inputs) and —
    when metrics were on — the merged cross-process metrics rollup."""
    return {
        "schema_version": MANIFEST_SCHEMA,
        "tool": "repro.experiments.run_all",
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "jobs": jobs,
        "failure_model": ctx.failure_model,
        "profile_runs": ctx.profile_runs,
        "benchmarks": list(ctx.benchmark_names),
        "fingerprints": {
            "platform": ArtifactCache.text_fingerprint(ctx._platform_fp()),
            "modules": {
                name: ctx._module_fp(name) for name in ctx.benchmark_names
            },
            "inputs": {
                name: ctx._inputs_fp(name) for name in ctx.benchmark_names
            },
        },
        "sections": [
            {"title": title, "seconds": round(seconds, 3)}
            for title, seconds in timings
        ],
        "prefill": prefill_stats or None,
        "cache": ctx.cache.stats_dict() if ctx.cache is not None else None,
        # Parent-process counters: workers keep their own stores, so under
        # --jobs N most cells are counted in the workers, not here.
        "diff_emulation": {
            "enabled": ctx.diff_emulation,
            **ctx.diffemu_stats.as_dict(),
        },
        "transval": {
            "enabled": core_verify.transval_enabled(),
            **core_verify.transval_stats(),
        },
        "trace": (
            {key: str(path) for key, path in trace_paths.items()}
            if trace_paths
            else None
        ),
        "metrics": metrics_rollup,
        "total_seconds": round(total_seconds, 3),
    }


def _clear_sidecars(directory: Path) -> None:
    """Remove metrics sidecars from previous runs so the end-of-run
    rollup merges exactly this run's workers."""
    if not directory.is_dir():
        return
    for stale in directory.glob(f"{SIDECAR_PREFIX}*{SIDECAR_SUFFIX}"):
        try:
            stale.unlink()
        except OSError:
            pass


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    started = time.perf_counter()
    tracing = args.trace or args.trace_dir is not None
    want_metrics = args.metrics or args.metrics_dir is not None
    meta = {
        "tool": "repro.experiments.run_all",
        "argv": list(argv) if argv is not None else sys.argv[1:],
    }
    tm = None
    mm = None
    if tracing:
        tm = telemetry.enable(meta=meta)
        mm = tm.metrics  # tracing implies metrics (one shared registry)
    elif want_metrics:
        mm = metrics.enable(meta=meta)
    metrics_out: Optional[Path] = None
    fr = None
    if mm is not None:
        metrics_out = Path(args.metrics_dir or args.trace_dir or "traces")
        _clear_sidecars(metrics_out)
        fr = flight.enable()
        fr.record("run-start", jobs=args.jobs, quick=args.quick)
    ctx = make_context(args)
    jobs = resolve_jobs(args.jobs)
    prefill_stats: Dict[str, Any] = {}
    try:
        if jobs > 1:
            start = time.perf_counter()
            cells = engine.prefill(
                ctx, jobs, log=lambda msg: print(msg, file=sys.stderr),
                stats_out=prefill_stats,
                metrics_dir=str(metrics_out) if metrics_out else None,
            )
            prefill_stats["seconds"] = round(time.perf_counter() - start, 3)
            print(
                f"prefilled {cells} cells in "
                f"{time.perf_counter() - start:.1f}s",
                file=sys.stderr,
            )
        timings = render_sections(ctx)
    except Exception as exc:
        # Postmortem bundle: the event ring, provider state snapshots and
        # a metrics snapshot, inspectable via
        # ``python -m repro.telemetry postmortem <dir>``.
        if fr is not None and metrics_out is not None:
            bundle = fr.dump(
                str(metrics_out), reason="run_all failed", error=exc
            )
            print(f"postmortem bundle: {bundle}", file=sys.stderr)
        raise
    if ctx.cache is not None:
        from repro.runner.cache import stats_line

        print(stats_line(ctx.cache.stats_dict()), file=sys.stderr)
    if ctx.diff_emulation:
        st = ctx.diffemu_stats
        print(
            f"diffemu: {st.tapes_recorded} tapes recorded, "
            f"{st.tape_cache_hits} tape hits, {st.synthesized} synthesized, "
            f"{st.forked} forked, {st.cold} cold, "
            f"{st.invalid_tapes} invalid", file=sys.stderr,
        )

    metrics_rollup: Optional[Dict[str, Any]] = None
    if mm is not None:
        # The parent's own share of the rollup: registry counters plus
        # its cache / differential-emulation statistics (workers publish
        # theirs into their own sidecars).
        if ctx.cache is not None:
            publish_cache_stats(mm, ctx.cache.stats_dict())
        publish_diffemu_stats(mm, ctx.diffemu_stats.as_dict())
        # Merge parent + worker sidecars BEFORE writing the parent's own
        # sidecar, so the directory never feeds a record in twice.
        merged = metrics.MetricsRegistry(meta=mm.meta)
        merged.merge_records(mm.snapshot())
        if metrics_out is not None:
            rollup_directory(str(metrics_out), into=merged)
            sidecar = write_sidecar(mm, str(metrics_out))
            print(f"metrics sidecar:      {sidecar}", file=sys.stderr)
            print(
                "metrics rollup:       "
                f"python -m repro.telemetry metrics {metrics_out}",
                file=sys.stderr,
            )
        metrics_rollup = rollup_json(merged)

    trace_paths: Optional[Dict[str, Path]] = None
    if tm is not None:
        telemetry.disable()
        from repro.telemetry import exporters

        trace_paths = exporters.export(
            tm, args.trace_dir or "traces", prefix="run_all"
        )
        print(f"trace (events):       {trace_paths['jsonl']}", file=sys.stderr)
        print(f"trace (chrome/perfetto): {trace_paths['chrome']}",
              file=sys.stderr)
    elif mm is not None:
        metrics.disable()
    if fr is not None:
        flight.disable()

    if args.json:
        manifest = build_manifest(
            ctx, jobs, timings, prefill_stats,
            time.perf_counter() - started, trace_paths, metrics_rollup,
        )
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        print(f"manifest: {path}", file=sys.stderr)


if __name__ == "__main__":
    main()
