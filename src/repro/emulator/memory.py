"""Concrete memory state: NVM image, VM image and current placement."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import EmulationError, VMCapacityError
from repro.ir.module import Module
from repro.ir.values import MemorySpace


class MemoryState:
    """Values of every concrete (non-ref) variable in NVM and, for
    VM-resident variables, in VM.

    The NVM image always holds a slot for every variable (its home
    location: "each variable v has a single address in NVM", §III-A2). A
    variable currently allocated to VM additionally has a VM copy; loads and
    stores with ``space=VM`` hit the copy, and checkpoint saves write the
    copy back. Power failures clear the VM image.
    """

    def __init__(self, module: Module, vm_size: int):
        self.module = module
        self.vm_size = vm_size
        self.nvm: Dict[str, List[int]] = {}
        self.vm: Dict[str, List[int]] = {}
        self._sizes: Dict[str, int] = {}
        for var in module.all_variables():
            if var.is_ref:
                continue
            values = list(var.init) if var.init is not None else [0] * var.count
            self.nvm[var.name] = values
            self._sizes[var.name] = var.size_bytes

    # -- raw access ------------------------------------------------------------

    def _image(self, name: str, space: MemorySpace) -> List[int]:
        if space is MemorySpace.VM:
            try:
                return self.vm[name]
            except KeyError:
                raise EmulationError(
                    f"VM access to @{name}, which is not VM-resident "
                    "(placement bug in a transformation pass)"
                ) from None
        if space is MemorySpace.NVM:
            try:
                return self.nvm[name]
            except KeyError:
                raise EmulationError(f"unknown variable @{name}") from None
        raise EmulationError(
            f"access to @{name} with unresolved space AUTO at run time"
        )

    def read(self, name: str, index: int, space: MemorySpace) -> int:
        image = self._image(name, space)
        if not 0 <= index < len(image):
            raise EmulationError(
                f"out-of-bounds read @{name}[{index}] (size {len(image)})"
            )
        return image[index]

    def write(self, name: str, index: int, value: int, space: MemorySpace) -> None:
        image = self._image(name, space)
        if not 0 <= index < len(image):
            raise EmulationError(
                f"out-of-bounds write @{name}[{index}] (size {len(image)})"
            )
        image[index] = value

    # -- placement / checkpoint support ---------------------------------------

    def vm_bytes_used(self) -> int:
        return sum(self._sizes[name] for name in self.vm)

    def load_into_vm(self, name: str) -> int:
        """Copy a variable's NVM values into VM; returns its size in bytes.

        Raises :class:`VMCapacityError` if the copy would overflow VM."""
        if name not in self.nvm:
            raise EmulationError(f"unknown variable @{name}")
        if name not in self.vm:
            size = self._sizes[name]
            if self.vm_bytes_used() + size > self.vm_size:
                raise VMCapacityError(
                    f"loading @{name} ({size} B) exceeds VM size "
                    f"{self.vm_size} B (used {self.vm_bytes_used()} B)"
                )
        self.vm[name] = list(self.nvm[name])
        return self._sizes[name]

    def save_to_nvm(self, name: str) -> int:
        """Write a VM-resident variable back to its NVM home; returns size."""
        if name not in self.vm:
            raise EmulationError(
                f"checkpoint save of @{name}, which is not VM-resident"
            )
        self.nvm[name] = list(self.vm[name])
        return self._sizes[name]

    def drop_from_vm(self, name: str) -> None:
        self.vm.pop(name, None)

    def clear_vm(self) -> None:
        """Power failure: all volatile contents are lost."""
        self.vm.clear()

    def vm_residents(self) -> List[str]:
        return sorted(self.vm)

    def snapshot_vm(self) -> Dict[str, List[int]]:
        return {name: list(values) for name, values in self.vm.items()}

    def restore_vm(self, snapshot: Dict[str, List[int]]) -> None:
        self.vm = {name: list(values) for name, values in snapshot.items()}

    def snapshot_images(self) -> Dict[str, Dict[str, List[int]]]:
        """Detached deep copies of both images, for snapshot/fork
        emulation. The returned dict never aliases live state."""
        return {
            "nvm": {name: list(values) for name, values in self.nvm.items()},
            "vm": {name: list(values) for name, values in self.vm.items()},
        }

    def restore_images(self, images: Dict[str, Dict[str, List[int]]]) -> None:
        """Replace both images with deep copies of a prior
        :meth:`snapshot_images` capture; the snapshot stays pristine for
        reuse by later forks."""
        self.nvm = {
            name: list(values) for name, values in images["nvm"].items()
        }
        self.vm = {
            name: list(values) for name, values in images["vm"].items()
        }

    def size_of(self, name: str) -> int:
        return self._sizes[name]

    def read_variable(self, name: str) -> List[int]:
        """Current values of a variable (VM copy if present, else NVM)."""
        if name in self.vm:
            return list(self.vm[name])
        return list(self.nvm[name])
