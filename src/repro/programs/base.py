"""Common benchmark plumbing."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import compile_source
from repro.ir.module import Module

#: name -> values mapping written into the NVM image before a run.
Inputs = Dict[str, List[int]]


@dataclass
class Benchmark:
    """One benchmark program plus its input machinery.

    Attributes:
        name: benchmark name (paper naming).
        source: MiniC source text.
        input_vars: global variables that receive inputs, with a per-element
            upper bound (exclusive) for random generation.
        output_vars: globals compared against the reference run.
    """

    name: str
    source: str
    input_vars: Dict[str, int] = field(default_factory=dict)
    output_vars: List[str] = field(default_factory=list)
    _module: Optional[Module] = None

    @property
    def module(self) -> Module:
        """The compiled (untransformed) IR module; compiled once, callers
        receive a fresh clone so transformations never alias."""
        if self._module is None:
            self._module = compile_source(self.source, self.name)
        return self._module.clone()

    def _generate(self, rng: random.Random) -> Inputs:
        module = self._module or compile_source(self.source, self.name)
        self._module = module
        inputs: Inputs = {}
        for name, bound in self.input_vars.items():
            var = module.globals[name]
            inputs[name] = [rng.randrange(0, bound) for _ in range(var.count)]
        return inputs

    def input_generator(self, base_seed: int = 1234):
        """A profiling input generator (run index -> inputs), seeded."""

        def generate(run: int) -> Inputs:
            return self._generate(random.Random(f"{base_seed}/{self.name}/{run}"))

        return generate

    def default_inputs(self, seed: int = 99) -> Inputs:
        """The fixed evaluation inputs (distinct from profiling inputs)."""
        return self._generate(random.Random(f"{seed}/{self.name}/eval"))

    def footprint_bytes(self) -> int:
        module = self._module or compile_source(self.source, self.name)
        self._module = module
        return module.data_footprint_bytes()


def format_table(values) -> str:
    """Render an integer sequence as a MiniC brace initializer."""
    return "{" + ", ".join(str(int(v)) for v in values) + "}"
