"""randmath — PRNG-driven integer math kernel (MiBench2 ``randmath``):
a linear congruential generator feeding gcd and modular-exponentiation
computations. The shortest benchmark (paper Table II: ~15 k cycles).
"""

from __future__ import annotations

from repro.programs.base import Benchmark

N = 24

SOURCE = f"""
u32 seed_in;
u32 out[{N}];
u32 total;

u32 lcg(u32 s) {{
    return s * 1103515245 + 12345;
}}

u32 gcd(u32 a, u32 b) {{
    @maxiter(48)
    while (b != 0) {{
        u32 t = a % b;
        a = b;
        b = t;
    }}
    return a;
}}

u32 modexp(u32 base, u32 exponent, u32 modulus) {{
    u32 result = 1;
    base %= modulus;
    @maxiter(16)
    while (exponent != 0) {{
        if ((exponent & 1) != 0) {{
            result = (result * base) % modulus;
        }}
        exponent >>= 1;
        base = (base * base) % modulus;
    }}
    return result;
}}

void main() {{
    u32 s = seed_in | 1;
    u32 acc = 0;
    for (i32 i = 0; i < {N}; i++) {{
        s = lcg(s);
        u32 a = (s >> 16) + 3;
        s = lcg(s);
        u32 b = (s >> 20) + 7;
        u32 g = gcd(a, b);
        u32 m = modexp(a & 1023, b & 31, 40961);
        out[i] = g + m;
        acc += out[i];
    }}
    total = acc;
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="randmath",
        source=SOURCE,
        input_vars={"seed_in": 1 << 32},
        output_vars=["out", "total"],
    )
