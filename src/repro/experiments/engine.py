"""Parallel evaluation engine: fan evaluation cells across worker processes.

The full evaluation is a grid of deterministic, independent cells —
(technique x benchmark x TBPF) emulations, reference/profile artifacts and
ablated variants. The engine *prefills* an :class:`EvaluationContext`'s
in-memory caches by computing those cells in a process pool; the table and
figure modules then run unchanged and hit the warm caches, which makes the
parallel output byte-identical to a serial run by construction.

Two stages, because run cells need the EB conversion (and the correctness
oracle) derived from the reference runs:

1. **artifacts** — continuous references, all-VM references and profiles,
   one cell per benchmark;
2. **runs** — every emulation cell of the tables/figures plus the ablation
   variants, deduplicated, with EBs computed in the parent from the merged
   references.

Workers hold their own :class:`EvaluationContext` (created once per
process); results travel back as picklable records
(:class:`~repro.experiments.common.RunOutcome`, reports, profiles,
ablation cells), never live interpreters. When the parent context has a
persistent :class:`~repro.runner.cache.ArtifactCache`, workers share its
directory, so artifacts computed by one worker are disk-cache hits for the
others — and for every later run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.experiments.common import (
    PROFILE_RUNS,
    TBPF_VALUES,
    TECHNIQUE_ORDER,
    EvaluationContext,
)
from repro.runner.pool import parallel_map, resolve_jobs


@dataclass(frozen=True)
class Cell:
    """One picklable unit of evaluation work."""

    kind: str  # "reference" | "vm_reference" | "profile" | "run" | "ablation"
    benchmark: str
    technique: str = ""  # run cells
    eb: float = 0.0  # run / ablation cells
    tbpf: Optional[int] = None  # run (periodic model) / ablation cells
    variant: str = ""  # ablation cells


# ------------------------------------------------------------------ planning


def plan_artifacts(
    ctx: EvaluationContext, extra_benchmarks: Sequence[str] = ()
) -> List[Cell]:
    """Stage-1 cells: the per-benchmark artifacts everything else needs."""
    cells: List[Cell] = []
    for name in list(ctx.benchmark_names) + [
        b for b in extra_benchmarks if b not in ctx.benchmark_names
    ]:
        cells.append(Cell("reference", name))
        cells.append(Cell("vm_reference", name))
        cells.append(Cell("profile", name))
    return cells


def plan_run_all_cells(
    ctx: EvaluationContext,
    tbpf_values: Sequence[int] = TBPF_VALUES,
    figure_tbpf: int = 10_000,
    figure8_benchmark: str = "crc",
) -> List[Cell]:
    """Stage-2 cells: every emulation behind the paper's tables/figures
    and the ablations. Requires the stage-1 references (for the EB
    conversion); duplicates are dropped, first occurrence wins."""
    from repro.experiments.ablations import VARIANTS
    from repro.experiments.table1_vm_feasibility import FEASIBILITY_EB

    cells: List[Cell] = []
    seen = set()

    def add(cell: Cell) -> None:
        if cell not in seen:
            seen.add(cell)
            cells.append(cell)

    def run_cell(technique: str, name: str, eb: float,
                 tbpf: Optional[int]) -> Cell:
        # Mirror EvaluationContext._run_key: under the energy model the
        # TBPF does not influence the run, so it is normalized away.
        if ctx.failure_model != "cycles":
            tbpf = None
        return Cell("run", name, technique=technique, eb=eb, tbpf=tbpf)

    # Table I: feasibility at a comfortable budget.
    for technique in TECHNIQUE_ORDER:
        for name in ctx.benchmark_names:
            add(run_cell(technique, name, FEASIBILITY_EB, None))
    # Table III (all TBPFs) / Figure 6 (TBPF=10k, included above).
    for technique in TECHNIQUE_ORDER:
        for tbpf in tbpf_values:
            for name in ctx.benchmark_names:
                add(run_cell(
                    technique, name, ctx.eb_for_tbpf(name, tbpf), tbpf
                ))
    # Figure 7: All-NVM vs SCHEMATIC at the figure TBPF.
    for name in ctx.benchmark_names:
        add(run_cell(
            "allnvm", name, ctx.eb_for_tbpf(name, figure_tbpf), figure_tbpf
        ))
    # Figure 8: every technique on one benchmark over all TBPFs (a no-op
    # when that benchmark is already in the sweep above).
    for technique in TECHNIQUE_ORDER:
        for tbpf in tbpf_values:
            add(run_cell(
                technique, figure8_benchmark,
                ctx.eb_for_tbpf(figure8_benchmark, tbpf), tbpf,
            ))
    # Ablations at the figure TBPF.
    for name in ctx.benchmark_names:
        for variant in VARIANTS:
            add(Cell(
                "ablation", name, variant=variant, tbpf=figure_tbpf,
                eb=ctx.eb_for_tbpf(name, figure_tbpf),
            ))
    return cells


# ------------------------------------------------------------------ workers

_WORKER_CTX: Optional[EvaluationContext] = None


def _init_worker(
    benchmarks: List[str],
    profile_runs: int,
    failure_model: str,
    cache_root: Optional[str],
    diff_emulation: bool = True,
) -> None:
    """Build the per-process context (idempotent: the serial fallback of
    parallel_map may call it in a process that already has one)."""
    global _WORKER_CTX
    from repro.runner.cache import ArtifactCache

    cache = ArtifactCache(cache_root) if cache_root else None
    _WORKER_CTX = EvaluationContext(
        benchmarks=benchmarks,
        profile_runs=profile_runs,
        failure_model=failure_model,
        cache=cache,
        diff_emulation=diff_emulation,
    )


def _compute_cell(cell: Cell) -> Tuple[Cell, object, int]:
    """Compute one cell; the worker pid rides along so the parent can
    report how evenly the pool spread the work (manifest / telemetry)."""
    ctx = _WORKER_CTX
    assert ctx is not None, "worker context not initialized"
    value: object
    if cell.kind == "reference":
        value = ctx.reference(cell.benchmark)
    elif cell.kind == "vm_reference":
        value = ctx.vm_reference(cell.benchmark)
    elif cell.kind == "profile":
        value = ctx.profile(cell.benchmark)
    elif cell.kind == "run":
        value = ctx.run(
            cell.technique, cell.benchmark, cell.eb, tbpf=cell.tbpf
        )
    elif cell.kind == "ablation":
        from repro.experiments.ablations import compute_cell

        value = compute_cell(ctx, cell.variant, cell.benchmark, cell.tbpf)
    else:
        raise ValueError(f"unknown cell kind {cell.kind!r}")
    return cell, value, os.getpid()


# ------------------------------------------------------------------ merging


def merge_results(
    ctx: EvaluationContext, results: Sequence[Tuple]
) -> None:
    """Install worker results into the parent context's caches. Results
    arrive in submission order, and the emulator is deterministic, so the
    merged state is identical to what serial evaluation would build.
    Accepts both ``(cell, value)`` and ``(cell, value, worker_pid)``
    records."""
    for cell, value, *_ in results:
        if cell.kind == "reference":
            ctx._references[cell.benchmark] = value
        elif cell.kind == "vm_reference":
            ctx._vm_references[cell.benchmark] = value
        elif cell.kind == "profile":
            ctx._profiles[cell.benchmark] = value
        elif cell.kind == "run":
            key = ctx._run_key(cell.technique, cell.benchmark, cell.eb,
                               cell.tbpf)
            ctx._runs[key] = value
        elif cell.kind == "ablation":
            ctx._ablations[(cell.variant, cell.benchmark, cell.tbpf)] = value


# ------------------------------------------------------------------ driver


def prefill(
    ctx: EvaluationContext,
    jobs,
    tbpf_values: Sequence[int] = TBPF_VALUES,
    figure8_benchmark: str = "crc",
    log: Optional[Callable[[str], None]] = None,
    stats_out: Optional[Dict[str, Any]] = None,
) -> int:
    """Compute every cell of the full evaluation with ``jobs`` workers and
    merge the results into ``ctx``; returns the number of cells computed.
    ``jobs <= 1`` is a no-op: the serial path stays byte-for-byte the
    code that has always run.

    ``stats_out``, when given, receives ``{"artifact_cells", "run_cells",
    "jobs", "worker_cells": {pid: count}}`` — how evenly the pool spread
    the grid (surfaces in the ``--json`` manifest and the trace)."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return 0
    if ctx.failure_model != "energy":
        raise ValueError(
            "prefill() plans the run_all grid, which uses the energy "
            "failure model; parallelize cycles-model sweeps cell by cell"
        )
    initargs = (
        list(ctx.benchmark_names),
        ctx.profile_runs,
        ctx.failure_model,
        str(ctx.cache.root) if ctx.cache is not None else None,
        ctx.diff_emulation,
    )
    artifacts = plan_artifacts(ctx, extra_benchmarks=[figure8_benchmark])
    if log is not None:
        log(f"prefill: {len(artifacts)} artifact cells on {jobs} workers")
    with telemetry.span("engine.prefill.artifacts", cells=len(artifacts),
                        jobs=jobs):
        artifact_results = parallel_map(
            _compute_cell, artifacts, jobs,
            initializer=_init_worker, initargs=initargs,
        )
    merge_results(ctx, artifact_results)
    runs = plan_run_all_cells(
        ctx, tbpf_values=tbpf_values, figure8_benchmark=figure8_benchmark
    )
    if log is not None:
        log(f"prefill: {len(runs)} run cells on {jobs} workers")
    with telemetry.span("engine.prefill.runs", cells=len(runs), jobs=jobs):
        run_results = parallel_map(
            _compute_cell, runs, jobs,
            initializer=_init_worker, initargs=initargs, chunksize=2,
        )
    merge_results(ctx, run_results)

    worker_cells: Dict[int, int] = {}
    for record in list(artifact_results) + list(run_results):
        if len(record) >= 3:
            pid = record[2]
            worker_cells[pid] = worker_cells.get(pid, 0) + 1
    if stats_out is not None:
        stats_out.update(
            artifact_cells=len(artifacts),
            run_cells=len(runs),
            jobs=jobs,
            worker_cells=dict(sorted(worker_cells.items())),
        )
    tm = telemetry.get()
    if tm is not None:
        tm.counter("engine.cells").add(len(artifacts) + len(runs))
        for count in worker_cells.values():
            tm.histogram("engine.cells_per_worker").record(count)
    return len(artifacts) + len(runs)
