"""Second MiniC conformance batch: promotions, casts, edge shapes."""

import pytest

from repro.emulator import run_continuous
from repro.energy import msp430fr5969_model
from repro.errors import EmulationError
from repro.frontend import compile_source

MODEL = msp430fr5969_model()


def out_value(source, inputs=None, var="out"):
    module = compile_source(source)
    report = run_continuous(module, MODEL, inputs=inputs or {})
    assert report.completed, report.failure_reason
    return report.outputs[var][0]


class TestPromotions:
    def test_u8_plus_u8_stays_u8(self):
        # MiniC has no C-style promotion to int: same-width operands keep
        # their width, so u8 + u8 wraps at 8 bits. Widen explicitly (or via
        # a wider operand) when the full sum is needed.
        src = "u32 out; u8 a; u8 b; void main() { out = a + b; }"
        assert out_value(src, {"a": [200], "b": [200]}) == 144

    def test_widening_via_cast_keeps_sum(self):
        src = "u32 out; u8 a; u8 b; void main() { out = (u32) a + (u32) b; }"
        assert out_value(src, {"a": [200], "b": [200]}) == 400

    def test_widening_via_literal_operand(self):
        # Literals are i32, so u8 + literal computes at 32 bits.
        src = "u32 out; u8 a; void main() { out = a + 200; }"
        assert out_value(src, {"a": [200]}) == 400

    def test_i16_sign_extension(self):
        src = "i32 out; i16 a; void main() { out = a; }"
        assert out_value(src, {"a": [-5]}) == -5

    def test_u16_wraparound(self):
        src = "u32 out; u16 a; void main() { u16 t = a + 1; out = t; }"
        assert out_value(src, {"a": [65535]}) == 0

    def test_signed_unsigned_mix(self):
        # i32 + u32 -> u32 (unsigned wins ties): -1 becomes 0xffffffff.
        src = "u32 out; i32 a; u32 b; void main() { out = a + b; }"
        assert out_value(src, {"a": [-1], "b": [0]}) == 0xFFFFFFFF

    def test_cast_narrows_then_widens(self):
        src = "u32 out; u32 a; void main() { out = (u32) (u8) a; }"
        assert out_value(src, {"a": [0x1234]}) == 0x34

    def test_cast_to_signed(self):
        src = "i32 out; u32 a; void main() { out = (i8) a; }"
        assert out_value(src, {"a": [0xFF]}) == -1


class TestShapes:
    def test_empty_main(self):
        module = compile_source("u32 out; void main() { }")
        report = run_continuous(module, MODEL)
        assert report.completed

    def test_deep_if_chain(self):
        chain = "out = 0;\n"
        for i in range(20):
            chain += f"if (sel == {i}) {{ out = {i * 10}; }}\n"
        src = f"u32 out; u32 sel; void main() {{ {chain} }}"
        assert out_value(src, {"sel": [13]}) == 130

    def test_deep_call_chain(self):
        funcs = "u32 f0(u32 x) { return x + 1; }\n"
        for i in range(1, 12):
            funcs += f"u32 f{i}(u32 x) {{ return f{i - 1}(x) + 1; }}\n"
        src = funcs + "u32 out; void main() { out = f11(0); }"
        assert out_value(src) == 12

    def test_multiple_returns(self):
        src = """
        u32 out; u32 sel;
        u32 pick(u32 s) {
            if (s == 0) { return 100; }
            if (s == 1) { return 200; }
            return 300;
        }
        void main() { out = pick(sel); }
        """
        assert out_value(src, {"sel": [0]}) == 100
        assert out_value(src, {"sel": [1]}) == 200
        assert out_value(src, {"sel": [7]}) == 300

    def test_arrays_of_every_type(self):
        src = """
        u32 out;
        u8 a8[2]; i8 b8[2]; u16 a16[2]; i16 b16[2]; u32 a32[2]; i32 b32[2];
        void main() {
            a8[0] = 255; b8[0] = -1; a16[0] = 65535; b16[0] = -2;
            a32[0] = 0xffffffff; b32[0] = -3;
            out = (u32) a8[0] + (u32) a16[0]
                + (u32) (i32) b8[0] + (u32) (i32) b16[0] + (u32) b32[0]
                + a32[0];
        }
        """
        expected = (255 + 65535 - 1 - 2 - 3 + 0xFFFFFFFF) & 0xFFFFFFFF
        assert out_value(src) == expected

    def test_incdec_on_array_elements(self):
        src = """
        u32 out; u32 counts[3];
        void main() {
            counts[1]++;
            counts[1]++;
            counts[2]--;
            out = counts[1] + (counts[2] >> 28);
        }
        """
        # counts[2] wraps to 0xffffffff; >> 28 gives 0xf.
        assert out_value(src) == 2 + 0xF

    def test_compound_assign_on_array(self):
        src = """
        u32 out; u32 buf[4];
        void main() {
            buf[2] = 5;
            buf[2] *= 3;
            buf[2] <<= 2;
            buf[2] |= 1;
            out = buf[2];
        }
        """
        assert out_value(src) == ((5 * 3) << 2) | 1

    def test_hex_literals(self):
        src = "u32 out; void main() { out = 0xdead << 16 | 0xBEEF; }"
        assert out_value(src) == 0xDEADBEEF

    def test_while_with_compound_condition(self):
        src = """
        u32 out; u32 n;
        void main() {
            u32 i = 0;
            @maxiter(100)
            while (i < n && i < 10) { i += 1; }
            out = i;
        }
        """
        assert out_value(src, {"n": [25]}) == 10
        assert out_value(src, {"n": [4]}) == 4

    def test_for_without_init(self):
        src = """
        u32 out;
        void main() {
            i32 i = 3;
            @maxiter(10)
            for (; i < 7; i++) { out += 1; }
        }
        """
        assert out_value(src) == 4

    def test_nested_break_only_exits_inner(self):
        src = """
        u32 out;
        void main() {
            u32 total = 0;
            for (i32 i = 0; i < 4; i++) {
                for (i32 j = 0; j < 10; j++) {
                    if (j == 2) { break; }
                    total += 1;
                }
            }
            out = total;
        }
        """
        assert out_value(src) == 8

    def test_global_scalar_initializer(self):
        src = "u32 out; u32 seeded = 41; void main() { out = seeded + 1; }"
        assert out_value(src) == 42

    def test_negative_global_initializer(self):
        src = "i32 out; i16 bias = -100; void main() { out = bias * 2; }"
        assert out_value(src) == -200


class TestRuntimeGuards:
    def test_unknown_input_rejected(self):
        module = compile_source("u32 out; void main() { out = 1; }")
        with pytest.raises(EmulationError, match="unknown global"):
            run_continuous(module, MODEL, inputs={"ghost": [1]})

    def test_wrong_input_length_rejected(self):
        module = compile_source("u32 out; u8 buf[4]; void main() { }")
        with pytest.raises(EmulationError, match="values"):
            run_continuous(module, MODEL, inputs={"buf": [1, 2]})

    def test_input_values_wrapped_to_type(self):
        module = compile_source("u32 out; u8 x; void main() { out = x; }")
        report = run_continuous(module, MODEL, inputs={"x": [300]})
        assert report.outputs["out"] == [44]
