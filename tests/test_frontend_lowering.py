"""Tests for MiniC -> IR lowering: semantics errors, structure, scoping,
trip-count inference."""

import pytest

from repro.errors import SemanticError
from repro.frontend import compile_source
from repro.ir import Load, MemorySpace, Store, validate_module


class TestSemanticErrors:
    def test_undefined_variable(self):
        with pytest.raises(SemanticError, match="undefined variable"):
            compile_source("void main() { x = 1; }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            compile_source("void main() { f(); }")

    def test_wrong_arity(self):
        with pytest.raises(SemanticError, match="arguments"):
            compile_source(
                "u32 f(u32 a) { return a; } void main() { f(1, 2); }"
            )

    def test_void_function_as_value(self):
        with pytest.raises(SemanticError, match="void"):
            compile_source("void f() { } void main() { u32 x = f(); }")

    def test_array_used_as_scalar(self):
        with pytest.raises(SemanticError, match="array"):
            compile_source("i32 buf[4]; void main() { u32 x = (u32) buf; }")

    def test_indexing_scalar(self):
        with pytest.raises(SemanticError, match="indexing scalar"):
            compile_source("i32 x; void main() { u32 y = (u32) x[0]; }")

    def test_assign_to_const(self):
        with pytest.raises(SemanticError, match="const"):
            compile_source(
                "const u8 t[2] = {1, 2}; void main() { t[0] = 3; }"
            )

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            compile_source("void main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            compile_source("void main() { continue; }")

    def test_redeclaration_in_same_scope(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            compile_source("void main() { u32 x; u32 x; }")

    def test_shadowing_global_rejected(self):
        with pytest.raises(SemanticError, match="shadows"):
            compile_source("u32 g; void main() { u32 g; }")

    def test_scalar_passed_to_array_param(self):
        with pytest.raises(SemanticError):
            compile_source(
                "void f(i32 buf[]) { } i32 x; void main() { f(x); }"
            )

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="duplicate"):
            compile_source("void f() { } void f() { }")

    def test_return_value_from_void(self):
        with pytest.raises(SemanticError):
            compile_source("void main() { return 3; }")


class TestBlockScoping:
    def test_same_name_in_sibling_loops(self):
        module = compile_source(
            """
            u32 out;
            void main() {
                u32 acc = 0;
                for (i32 i = 0; i < 3; i++) { acc += (u32) i; }
                for (i32 i = 0; i < 5; i++) { acc += (u32) i * 2; }
                out = acc;
            }
            """
        )
        names = set(module.functions["main"].variables)
        assert "i" in names and "i__1" in names

    def test_inner_scope_shadows_outer_local(self):
        module = compile_source(
            """
            u32 out;
            void main() {
                u32 x = 1;
                {
                    u32 x = 2;
                    out = x;
                }
                out += x;
            }
            """
        )
        from repro.emulator import run_continuous
        from repro.energy import msp430fr5969_model

        report = run_continuous(module, msp430fr5969_model())
        assert report.outputs["out"] == [3]


class TestStructure:
    def test_every_lowered_module_validates(self):
        from tests.helpers import BRANCHY_SRC, CALLS_SRC, SUM_LOOP_SRC

        for src in (SUM_LOOP_SRC, CALLS_SRC, BRANCHY_SRC):
            validate_module(compile_source(src))

    def test_accesses_start_auto(self):
        module = compile_source("u32 g; void main() { g = 1; }")
        stores = [
            inst
            for block in module.functions["main"].blocks.values()
            for inst in block
            if isinstance(inst, Store)
        ]
        assert stores and all(s.space is MemorySpace.AUTO for s in stores)

    def test_ref_param_pinned_to_nvm(self):
        module = compile_source(
            """
            i32 data[8];
            void f(i32 buf[]) { buf[0] = 1; }
            void main() { f(data); }
            """
        )
        formal = module.functions["f"].variables["buf"]
        assert formal.is_ref and formal.pinned_nvm
        # The actual array is pinned too (paper §IV-A pointer rule).
        assert module.globals["data"].pinned_nvm

    def test_scalar_param_prologue_store(self):
        module = compile_source(
            "u32 f(u32 a) { return a + 1; } void main() { u32 r = f(2); }"
        )
        entry = module.functions["f"].entry
        first = entry.instructions[0]
        assert isinstance(first, Store)
        assert first.var.name == "f.a"

    def test_implicit_void_return_added(self):
        module = compile_source("void main() { u32 x = 1; }")
        assert module.functions["main"].entry.is_terminated


class TestTripCountInference:
    def _maxiter(self, loop_src: str):
        module = compile_source(f"u32 out; void main() {{ {loop_src} }}")
        return list(module.functions["main"].loop_maxiter.values())

    def test_simple_upward_loop(self):
        assert self._maxiter("for (i32 i = 0; i < 10; i++) { out += 1; }") == [10]

    def test_le_bound(self):
        assert self._maxiter("for (i32 i = 0; i <= 10; i++) { out += 1; }") == [11]

    def test_nonunit_step(self):
        assert self._maxiter(
            "for (i32 i = 0; i < 10; i += 3) { out += 1; }"
        ) == [4]

    def test_downward_loop(self):
        assert self._maxiter("for (i32 i = 9; i >= 0; i--) { out += 1; }") == [10]

    def test_counter_mutated_in_body_disables_inference(self):
        assert self._maxiter(
            "for (i32 i = 0; i < 10; i++) { i += 1; }"
        ) == []

    def test_annotation_overrides(self):
        assert self._maxiter(
            "@maxiter(3) for (i32 i = 0; i < 10; i++) { out += 1; }"
        ) == [3]

    def test_while_without_annotation_has_no_bound(self):
        assert self._maxiter("u32 x = out; while (x != 0) { x >>= 1; }") == []

    def test_while_with_annotation(self):
        assert self._maxiter(
            "u32 x = out; @maxiter(32) while (x != 0) { x >>= 1; }"
        ) == [32]
