"""Simulation-relation inference between a source module and its
transformed output.

The placement passes (SCHEMATIC and every baseline in
:mod:`repro.baselines`) promise to be *refinements*: they insert
checkpoints and rewrite memory spaces, but a continuously powered run of
the transformed module must produce exactly the observable behaviour of
the source module. This module infers and checks the witness for that
claim — a per-function simulation relation in the Alive2/CompCert-TV
tradition — which :mod:`repro.staticcheck.transval` turns into TV
findings and proof certificates.

Construction, in three layers:

1. **Variable correspondence** (:func:`infer_correspondence`). Names
   shared by both modules correspond to themselves; a transformed-only
   variable whose ``base__suffix`` name points at a *source-only*
   variable of the same shape is an inferred rename; every other
   transformed-only variable is *private* (a privatization artifact) and
   every other source-only variable is *dropped*. Private variables are
   erased from the observable trace, but their values are tracked: a
   private value that leaks into an observable effect, or a private
   variable that is live across basic blocks, violates the
   correspondence (rule TV003).

2. **Product-graph block matching** (:func:`relate_function`). A
   worklist pairs blocks starting from the two entry blocks, stepping
   both CFGs in lockstep. Checkpoint instructions are erased from the
   trace, and *transparent* blocks — the ``__ckpt_<id>`` blocks
   :func:`repro.core.transform._split_edge` creates, containing only
   checkpoints and an unconditional jump — are skipped when resolving
   transformed successors. The relation must be a function in both
   directions: a source block matched against two different transformed
   blocks (or vice versa) cannot be closed (rule TV004).

3. **Symbolic block discharge** (:func:`discharge_pair`). Each matched
   straight-line pair is executed symbolically (the structural-tuple
   symbol convention of :mod:`repro.analysis.ranges`, extended with
   memory versions and store-to-load forwarding) and must produce the
   same ordered stream of observable events — stores to corresponding
   variables, volatile-input samples, calls — the same terminator
   behaviour, and the same final register state. Memory spaces
   (``VM``/``NVM``/``AUTO``) are allocation metadata, not behaviour, and
   are normalized away; residency correctness is the ALLOC rules' job.

Calls compose callee-first, like the region-facts dataflow: functions
are related in :meth:`repro.analysis.callgraph.CallGraph.reverse_topological`
order and a function is *certified* only when its own blocks discharge
and every callee it reaches is certified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Checkpoint,
    CondCheckpoint,
    Jump,
    Load,
    Move,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.values import Const, Register, Value, VarRef

#: Structural symbolic values (same convention as ``analysis.ranges``):
#: ``("const", value, type)``, ``("reg", name, type)`` for block-entry
#: register state, ``("mem", var, index, era, version)`` for memory
#: reads, ``("env", var, index, sample)`` for volatile-input samples,
#: ``("ret", callee, call_seq)``, ``("priv", var, era, version)`` for
#: unknown private values, and ``("wrap"| "bin" | "un", ...)`` operator
#: nodes.
Sym = Tuple

_CHECKPOINT_KINDS = (Checkpoint, CondCheckpoint)

#: Mismatch kinds a block pair can report, mapped to rules by
#: :mod:`repro.staticcheck.transval`.
KIND_EFFECT = "effect"              # TV001: unmatched observable effect
KIND_ORDER = "order"                # TV002: observable-order divergence
KIND_CORRESPONDENCE = "correspondence"  # TV003: variable correspondence
KIND_STRUCTURE = "structure"        # TV004 when a checkpoint is involved


# -- variable correspondence ----------------------------------------------


@dataclass(frozen=True)
class VarCorrespondence:
    """Inferred mapping from transformed variables to source variables.

    ``to_source`` maps every transformed mangled name either to itself
    (shared names) or to the source-only variable it renames. Names in
    ``private`` exist only in the transformed module and have no source
    storage; names in ``dropped`` exist only in the source module.
    ``shadows`` records which source variable a private name *looks*
    like a privatized copy of (diagnostic only — a shadow is not a
    correspondence, because the source storage still exists separately).
    """

    to_source: Dict[str, str]
    private: FrozenSet[str] = frozenset()
    dropped: FrozenSet[str] = frozenset()
    shadows: Dict[str, str] = field(default_factory=dict)

    def canonical(self, name: str) -> Optional[str]:
        """Source-side name for a transformed variable, None if private."""
        return self.to_source.get(name)


def _rename_base(name: str) -> Optional[str]:
    """``func.x__priv1`` -> ``func.x``: the candidate pre-privatization
    name, or None when the name carries no ``__suffix``."""
    head, sep, _tail = name.rpartition("__")
    return head if sep and head else None


def infer_correspondence(
    source: Module, transformed: Module
) -> VarCorrespondence:
    """Infer the variable correspondence between the two modules."""
    src = {var.name: var for var in source.all_variables()}
    xf = {var.name: var for var in transformed.all_variables()}
    to_source: Dict[str, str] = {}
    private: Set[str] = set()
    shadows: Dict[str, str] = {}
    for name, var in xf.items():
        if name in src:
            to_source[name] = name
            continue
        base = _rename_base(name)
        if base is not None and base in src:
            src_var = src[base]
            if (
                base not in xf
                and src_var.type == var.type
                and src_var.count == var.count
            ):
                # A true rename: the source storage does not survive in
                # the transformed module, so the new name *is* it.
                to_source[name] = base
                continue
            shadows[name] = base
        private.add(name)
    matched_sources = set(to_source.values())
    dropped = frozenset(name for name in src if name not in matched_sources)
    return VarCorrespondence(
        to_source=to_source,
        private=frozenset(private),
        dropped=dropped,
        shadows=shadows,
    )


# -- symbolic block execution ---------------------------------------------


def _type_key(value: Value) -> str:
    if isinstance(value, (Register, Const)):
        return str(value.type)
    return "ref"


class _Memory:
    """One side's view of memory within a block: per-variable store
    lists for store-to-load forwarding, invalidated at call sites (the
    ``era``)."""

    def __init__(self) -> None:
        self.era = 0
        self._stores: Dict[str, List[Tuple[Optional[Sym], Sym]]] = {}

    def store(self, name: str, index: Optional[Sym], value: Sym) -> None:
        self._stores.setdefault(name, []).append((index, value))

    def load(self, name: str, index: Optional[Sym]) -> Sym:
        stores = self._stores.get(name, ())
        for s_index, s_value in reversed(stores):
            if s_index == index:
                return s_value
            if not _distinct_indices(s_index, index):
                break  # may alias: forwarding would be unsound
        return ("mem", name, index, self.era, len(stores))

    def invalidate(self) -> None:
        """A call may write any corresponding memory."""
        self.era += 1
        self._stores.clear()


def _distinct_indices(a: Optional[Sym], b: Optional[Sym]) -> bool:
    """Provably different array elements (lets forwarding look past an
    unrelated constant-index store)."""
    return (
        a is not None
        and b is not None
        and a[0] == "const"
        and b[0] == "const"
        and a[1] != b[1]
    )


@dataclass(frozen=True)
class Event:
    """One observable effect: ``payload`` is compared across sides,
    ``at`` anchors it to an instruction index in its own block."""

    payload: Sym
    at: int


@dataclass
class BlockTrace:
    """Everything observable about one symbolic block execution."""

    events: List[Event] = field(default_factory=list)
    #: ("jump",), ("branch", cond_sym), ("ret", value_sym | None),
    #: or ("open",) for an unterminated block.
    terminator: Sym = ("open",)
    #: Final symbolic values of every register written in the block.
    reg_exit: Dict[str, Sym] = field(default_factory=dict)
    #: Checkpoint instructions erased from the trace.
    erased_checkpoints: int = 0
    #: The block contains (or the successor resolution traversed) a
    #: checkpoint — used to classify structural failures as TV004.
    has_checkpoint: bool = False


def run_block(
    block: BasicBlock, corr: Optional[VarCorrespondence]
) -> BlockTrace:
    """Execute ``block`` symbolically, erasing checkpoints,
    private-variable traffic and memory spaces. ``corr`` names the
    variable correspondence for a transformed block; ``None`` selects
    the identity (for the source side, where every variable is its own
    correspondent)."""
    trace = BlockTrace()
    regs: Dict[str, Sym] = {}
    memory = _Memory()
    private = _Memory()
    env_seq: Dict[str, int] = {}
    call_seq: Dict[str, int] = {}

    def canonical_of(name: str) -> Optional[str]:
        return name if corr is None else corr.canonical(name)

    def value_sym(value: Optional[Value]) -> Optional[Sym]:
        if value is None:
            return None
        if isinstance(value, Const):
            return ("const", value.value, str(value.type))
        if isinstance(value, VarRef):
            name = value.variable.name
            canonical = canonical_of(name)
            if canonical is None:
                return ("priv-ref", name)
            return ("ref", canonical)
        sym = regs.get(value.name)
        if sym is None:
            sym = ("reg", value.name, str(value.type))
        return sym

    for at, inst in enumerate(block.instructions):
        if isinstance(inst, _CHECKPOINT_KINDS):
            trace.erased_checkpoints += 1
            trace.has_checkpoint = True
            continue
        if isinstance(inst, Move):
            src = value_sym(inst.src)
            assert src is not None
            regs[inst.dest.name] = ("wrap", str(inst.dest.type), src)
        elif isinstance(inst, BinOp):
            lhs, rhs = value_sym(inst.lhs), value_sym(inst.rhs)
            regs[inst.dest.name] = (
                "bin", str(inst.op), str(inst.dest.type), lhs, rhs
            )
        elif isinstance(inst, UnOp):
            regs[inst.dest.name] = (
                "un", str(inst.op), str(inst.dest.type), value_sym(inst.src)
            )
        elif isinstance(inst, Load):
            index = value_sym(inst.index)
            canonical = canonical_of(inst.var.name)
            if canonical is None:
                regs[inst.dest.name] = private.load(inst.var.name, index)
            elif inst.var.volatile_input:
                seq = env_seq.get(canonical, 0)
                env_seq[canonical] = seq + 1
                sample: Sym = ("env", canonical, index, seq)
                trace.events.append(Event(sample, at))
                regs[inst.dest.name] = sample
            else:
                regs[inst.dest.name] = memory.load(canonical, index)
        elif isinstance(inst, Store):
            index = value_sym(inst.index)
            value = value_sym(inst.value)
            assert value is not None
            canonical = canonical_of(inst.var.name)
            if canonical is None:
                private.store(inst.var.name, index, value)
            else:
                trace.events.append(
                    Event(("store", canonical, index, value), at)
                )
                memory.store(canonical, index, value)
        elif isinstance(inst, Call):
            args = tuple(value_sym(arg) for arg in inst.args)
            trace.events.append(Event(("call", inst.callee, args), at))
            seq = call_seq.get(inst.callee, 0)
            call_seq[inst.callee] = seq + 1
            if inst.dest is not None:
                regs[inst.dest.name] = ("ret", inst.callee, seq)
            memory.invalidate()  # the callee may write any shared memory
        elif isinstance(inst, Jump):
            trace.terminator = ("jump",)
        elif isinstance(inst, Branch):
            trace.terminator = ("branch", value_sym(inst.cond))
        elif isinstance(inst, Ret):
            trace.terminator = ("ret", value_sym(inst.value))
    trace.reg_exit = regs
    return trace


def _mentions_private(sym: object) -> bool:
    if not isinstance(sym, tuple):
        return False
    if sym and sym[0] in ("priv", "priv-ref"):
        return True
    return any(_mentions_private(part) for part in sym)


def render_sym(sym: Optional[Sym]) -> str:
    """Compact human-readable form of a symbolic value."""
    if sym is None:
        return "_"
    kind = sym[0]
    if kind == "const":
        return str(sym[1])
    if kind == "reg":
        return f"%{sym[1]}"
    if kind == "mem":
        idx = "" if sym[2] is None else f"[{render_sym(sym[2])}]"
        return f"@{sym[1]}{idx}#{sym[3]}.{sym[4]}"
    if kind == "env":
        idx = "" if sym[2] is None else f"[{render_sym(sym[2])}]"
        return f"sample(@{sym[1]}{idx}, {sym[3]})"
    if kind == "ret":
        return f"ret(@{sym[1]}, {sym[2]})"
    if kind == "priv":
        return f"private @{sym[1]}"
    if kind in ("ref", "priv-ref"):
        return f"&{sym[1]}"
    if kind == "wrap":
        return f"({sym[1]}){render_sym(sym[2])}"
    if kind == "bin":
        return f"({render_sym(sym[3])} {sym[1]} {render_sym(sym[4])})"
    if kind == "un":
        return f"{sym[1]} {render_sym(sym[3])}"
    return repr(sym)


def render_event(payload: Sym) -> str:
    kind = payload[0]
    if kind == "store":
        idx = "" if payload[2] is None else f"[{render_sym(payload[2])}]"
        return f"store @{payload[1]}{idx} = {render_sym(payload[3])}"
    if kind == "env":
        return render_sym(payload)
    if kind == "call":
        args = ", ".join(render_sym(arg) for arg in payload[2])
        return f"call @{payload[1]}({args})"
    return repr(payload)


# -- block-pair discharge -------------------------------------------------


@dataclass
class PairOutcome:
    """One proof obligation: the matched pair discharged, or the first
    divergence found in it."""

    function: str
    source_block: str
    transformed_block: str
    status: str = "discharged"  # or "violated"
    kind: Optional[str] = None  # a KIND_* constant when violated
    detail: str = ""
    source_event: Optional[str] = None
    transformed_event: Optional[str] = None
    #: Transformed-side instruction index to anchor a finding at.
    at: Optional[int] = None
    events: int = 0
    erased_checkpoints: int = 0
    checkpoint_involved: bool = False

    @property
    def discharged(self) -> bool:
        return self.status == "discharged"

    def facts(self) -> Dict[str, object]:
        facts: Dict[str, object] = {
            "source_block": self.source_block,
            "transformed_block": self.transformed_block,
            "observable_events": self.events,
            "erased_checkpoints": self.erased_checkpoints,
        }
        if self.kind is not None:
            facts["kind"] = self.kind
        if self.detail:
            facts["detail"] = self.detail
        if self.source_event is not None:
            facts["source_event"] = self.source_event
        if self.transformed_event is not None:
            facts["transformed_event"] = self.transformed_event
        return facts


def _violate(
    outcome: PairOutcome,
    kind: str,
    detail: str,
    *,
    source_event: Optional[str] = None,
    transformed_event: Optional[str] = None,
    at: Optional[int] = None,
) -> PairOutcome:
    outcome.status = "violated"
    outcome.kind = kind
    outcome.detail = detail
    outcome.source_event = source_event
    outcome.transformed_event = transformed_event
    outcome.at = at
    return outcome


def discharge_pair(
    function: str,
    s_block: BasicBlock,
    t_block: BasicBlock,
    corr: VarCorrespondence,
    *,
    edge_checkpoints: int = 0,
) -> PairOutcome:
    """Symbolically execute a matched block pair and compare observable
    behaviour. ``edge_checkpoints`` counts checkpoints erased while
    resolving the transformed successor edge into this pair."""
    s_trace = run_block(s_block, None)
    t_trace = run_block(t_block, corr)
    outcome = PairOutcome(
        function=function,
        source_block=s_block.label,
        transformed_block=t_block.label,
        events=len(s_trace.events),
        erased_checkpoints=t_trace.erased_checkpoints + edge_checkpoints,
        checkpoint_involved=t_trace.has_checkpoint or edge_checkpoints > 0,
    )

    # 1. Ordered observable event streams.
    s_payloads = [event.payload for event in s_trace.events]
    t_payloads = [event.payload for event in t_trace.events]
    for k in range(max(len(s_payloads), len(t_payloads))):
        s_ev = s_payloads[k] if k < len(s_payloads) else None
        t_ev = t_payloads[k] if k < len(t_payloads) else None
        if s_ev == t_ev:
            continue
        t_at = t_trace.events[k].at if k < len(t_trace.events) else None
        if t_ev is None:
            return _violate(
                outcome, KIND_EFFECT,
                "source effect has no transformed counterpart",
                source_event=render_event(s_ev),
                at=len(t_block.instructions) - 1,
            )
        if _mentions_private(t_ev):
            return _violate(
                outcome, KIND_CORRESPONDENCE,
                "a private (non-corresponding) value reaches an "
                "observable effect",
                source_event=None if s_ev is None else render_event(s_ev),
                transformed_event=render_event(t_ev),
                at=t_at,
            )
        if s_ev is None:
            return _violate(
                outcome, KIND_EFFECT,
                "transformed effect has no source counterpart",
                transformed_event=render_event(t_ev),
                at=t_at,
            )
        if s_ev in t_payloads[k + 1:] or t_ev in s_payloads[k + 1:]:
            return _violate(
                outcome, KIND_ORDER,
                "observable effects occur in a different order",
                source_event=render_event(s_ev),
                transformed_event=render_event(t_ev),
                at=t_at,
            )
        return _violate(
            outcome, KIND_EFFECT,
            "observable effect diverges",
            source_event=render_event(s_ev),
            transformed_event=render_event(t_ev),
            at=t_at,
        )

    # 2. Terminator behaviour.
    if s_trace.terminator[0] != t_trace.terminator[0]:
        kind = (
            KIND_STRUCTURE if outcome.checkpoint_involved else KIND_EFFECT
        )
        return _violate(
            outcome, kind,
            f"terminator shape diverges: source "
            f"{s_trace.terminator[0]} vs transformed "
            f"{t_trace.terminator[0]}",
            at=len(t_block.instructions) - 1,
        )
    if s_trace.terminator != t_trace.terminator:
        mismatch_kind = (
            KIND_CORRESPONDENCE
            if _mentions_private(t_trace.terminator)
            else KIND_EFFECT
        )
        what = (
            "branch condition" if s_trace.terminator[0] == "branch"
            else "return value"
        )
        return _violate(
            outcome, mismatch_kind,
            f"observable {what} diverges",
            source_event=render_sym(s_trace.terminator[1]),
            transformed_event=render_sym(t_trace.terminator[1]),
            at=len(t_block.instructions) - 1,
        )

    # 3. Final register state: an unobserved-but-divergent register
    # would silently poison matched successors, which assume equal
    # register files at block entry.
    for name in sorted(set(s_trace.reg_exit) | set(t_trace.reg_exit)):
        s_sym = s_trace.reg_exit.get(name)
        t_sym = t_trace.reg_exit.get(name)
        if s_sym == t_sym:
            continue
        return _violate(
            outcome, KIND_CORRESPONDENCE,
            f"register %{name} diverges at block exit",
            source_event=render_sym(s_sym),
            transformed_event=render_sym(t_sym),
            at=len(t_block.instructions) - 1,
        )
    return outcome


# -- function-level product walk ------------------------------------------


@dataclass
class FunctionRelation:
    """The simulation relation inferred for one function pair."""

    function: str
    pairs: List[PairOutcome] = field(default_factory=list)
    matched: Dict[str, str] = field(default_factory=dict)
    erased_checkpoints: int = 0
    calls: FrozenSet[str] = frozenset()
    #: Set after composition: this function and every callee refine.
    certified: bool = False

    @property
    def refines(self) -> bool:
        return all(pair.discharged for pair in self.pairs)


def _resolve_transparent(
    func: Function, label: str
) -> Tuple[str, int, bool]:
    """Skip through transparent checkpoint blocks (checkpoints + jump
    only, as created by edge splitting). Returns the effective label,
    the number of checkpoints erased on the way, and False when the
    resolution cannot terminate (a checkpoint-only cycle)."""
    erased = 0
    seen = {label}
    while True:
        block = func.blocks.get(label)
        if block is None:
            return label, erased, True
        term = block.terminator
        body = block.instructions[:-1] if term is not None else None
        if (
            body
            and isinstance(term, Jump)
            and all(isinstance(inst, _CHECKPOINT_KINDS) for inst in body)
        ):
            erased += len(body)
            label = term.target
            if label in seen:
                return label, erased, False
            seen.add(label)
            continue
        return label, erased, True


def _private_escapes(
    func: Function, corr: VarCorrespondence
) -> List[Tuple[str, str, str]]:
    """Private variables whose value is live across block boundaries:
    ``(name, reading_block, shadow_of)`` for every private variable that
    is read before being written in some block while being written
    somewhere in the function. Such a variable carries state between
    straight-line regions that the source module keeps in corresponding
    storage — the correspondence cannot absorb it."""
    if not corr.private:
        return []
    written: Dict[str, Set[str]] = {}
    read_first: Dict[str, List[str]] = {}
    for label, block in func.blocks.items():
        seen_write: Set[str] = set()
        for inst in block.instructions:
            if isinstance(inst, Load) and inst.var.name in corr.private:
                name = inst.var.name
                if name not in seen_write:
                    read_first.setdefault(name, []).append(label)
            elif isinstance(inst, Store) and inst.var.name in corr.private:
                seen_write.add(inst.var.name)
                written.setdefault(inst.var.name, set()).add(label)
            elif isinstance(inst, Call):
                for ref in inst.ref_args():
                    if ref.name in corr.private:
                        # By-ref escape into a callee.
                        written.setdefault(ref.name, set()).add(label)
    escapes: List[Tuple[str, str, str]] = []
    for name, blocks in sorted(read_first.items()):
        if name in written:
            escapes.append(
                (name, blocks[0], corr.shadows.get(name, ""))
            )
    return escapes


def relate_function(
    function: str,
    source: Function,
    transformed: Function,
    corr: VarCorrespondence,
) -> FunctionRelation:
    """Infer and check the simulation relation for one function pair."""
    relation = FunctionRelation(function=function)
    calls: Set[str] = set()

    t_entry, erased, ok = _resolve_transparent(
        transformed, transformed.entry.label
    )
    worklist: List[Tuple[str, str, int]] = [
        (source.entry.label, t_entry, erased)
    ]
    if not ok:
        relation.pairs.append(_violate(
            PairOutcome(
                function=function,
                source_block=source.entry.label,
                transformed_block=transformed.entry.label,
                checkpoint_involved=True,
            ),
            KIND_STRUCTURE,
            "checkpoint-only cycle: the simulation relation cannot be "
            "closed through it",
        ))
        worklist = []
    rev: Dict[str, str] = {}

    while worklist:
        s_label, t_label, edge_erased = worklist.pop()
        if s_label in relation.matched:
            if relation.matched[s_label] != t_label:
                relation.pairs.append(_violate(
                    PairOutcome(
                        function=function,
                        source_block=s_label,
                        transformed_block=t_label,
                        checkpoint_involved=edge_erased > 0,
                    ),
                    KIND_STRUCTURE,
                    f"source block .{s_label} is matched against both "
                    f".{relation.matched[s_label]} and .{t_label}",
                ))
            continue
        if t_label in rev and rev[t_label] != s_label:
            relation.pairs.append(_violate(
                PairOutcome(
                    function=function,
                    source_block=s_label,
                    transformed_block=t_label,
                    checkpoint_involved=edge_erased > 0,
                ),
                KIND_STRUCTURE,
                f"transformed block .{t_label} is matched against both "
                f".{rev[t_label]} and .{s_label}",
            ))
            continue
        s_block = source.blocks.get(s_label)
        t_block = transformed.blocks.get(t_label)
        if s_block is None or t_block is None:
            relation.pairs.append(_violate(
                PairOutcome(
                    function=function,
                    source_block=s_label,
                    transformed_block=t_label,
                ),
                KIND_STRUCTURE,
                "matched label does not exist",
            ))
            continue
        relation.matched[s_label] = t_label
        rev[t_label] = s_label

        outcome = discharge_pair(
            function, s_block, t_block, corr,
            edge_checkpoints=edge_erased,
        )
        relation.pairs.append(outcome)
        relation.erased_checkpoints += outcome.erased_checkpoints
        for inst in s_block.instructions:
            if isinstance(inst, Call):
                calls.add(inst.callee)
        if outcome.kind == KIND_STRUCTURE:
            continue  # successors are not comparable

        s_term = s_block.terminator
        t_term = t_block.terminator
        targets: List[Tuple[str, str]] = []
        if isinstance(s_term, Jump) and isinstance(t_term, Jump):
            targets.append((s_term.target, t_term.target))
        elif isinstance(s_term, Branch) and isinstance(t_term, Branch):
            targets.append((s_term.if_true, t_term.if_true))
            targets.append((s_term.if_false, t_term.if_false))
        for s_next, t_next in targets:
            resolved, erased, ok = _resolve_transparent(transformed, t_next)
            if not ok:
                relation.pairs.append(_violate(
                    PairOutcome(
                        function=function,
                        source_block=s_next,
                        transformed_block=t_next,
                        checkpoint_involved=True,
                    ),
                    KIND_STRUCTURE,
                    "checkpoint-only cycle: the simulation relation "
                    "cannot be closed through it",
                ))
                continue
            worklist.append((s_next, resolved, erased))

    for name, block_label, shadow in _private_escapes(transformed, corr):
        shadow_note = (
            f" (a privatized copy of @{shadow})" if shadow else ""
        )
        relation.pairs.append(_violate(
            PairOutcome(
                function=function,
                source_block="",
                transformed_block=block_label,
            ),
            KIND_CORRESPONDENCE,
            f"private variable @{name}{shadow_note} is live across "
            "basic blocks: its state escapes the straight-line regions "
            "the correspondence erases",
        ))

    relation.calls = frozenset(calls)
    return relation


# -- module-level composition ---------------------------------------------


@dataclass
class ModuleRelation:
    """The composed, callee-first simulation relation for a module pair."""

    source: str
    transformed: str
    correspondence: VarCorrespondence
    functions: Dict[str, FunctionRelation] = field(default_factory=dict)
    #: Functions present in the source module only.
    missing_functions: List[str] = field(default_factory=list)
    #: Functions present in the transformed module only.
    extra_functions: List[str] = field(default_factory=list)

    @property
    def refines(self) -> bool:
        return (
            not self.missing_functions
            and all(rel.refines for rel in self.functions.values())
        )

    def certified(self, function: str) -> bool:
        rel = self.functions.get(function)
        return rel is not None and rel.certified


def infer_simulation(source: Module, transformed: Module) -> ModuleRelation:
    """Infer and check the full simulation relation between a source
    module and its transformed output, callee-first."""
    corr = infer_correspondence(source, transformed)
    relation = ModuleRelation(
        source=source.name,
        transformed=transformed.name,
        correspondence=corr,
    )
    relation.missing_functions = sorted(
        name for name in source.functions if name not in transformed.functions
    )
    relation.extra_functions = sorted(
        name for name in transformed.functions if name not in source.functions
    )
    for name in CallGraph(source).reverse_topological():
        if name not in transformed.functions:
            continue
        relation.functions[name] = relate_function(
            name, source.functions[name], transformed.functions[name], corr
        )
    # Compose callee-first summaries: a function is certified when its
    # own blocks discharge and every callee it reaches is certified.
    # The call graph is acyclic (recursion is rejected at construction),
    # and reverse_topological yielded callees before callers.
    for name, rel in relation.functions.items():
        rel.certified = rel.refines and all(
            relation.certified(callee) for callee in rel.calls
        )
    return relation
