"""Findings: what the static checker reports.

A :class:`Finding` pins one rule violation to a precise location
(``function/block/instruction``) and renders both as a human-readable
diagnostic line and as a JSON-able dict, so the CLI can serve terminals
and CI tooling from the same objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so comparisons read naturally:
    ``Severity.ERROR > Severity.WARNING``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; "
                f"choose from {[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Location:
    """A program point: function, block label, instruction index.

    ``block``/``index`` may be None for function-level findings (e.g. an
    unbounded loop is reported at its header block without an index).
    """

    function: str
    block: Optional[str] = None
    index: Optional[int] = None

    def __str__(self) -> str:
        text = f"@{self.function}"
        if self.block is not None:
            text += f"/.{self.block}"
            if self.index is not None:
                text += f"[{self.index}]"
        return text

    def sort_key(self):
        return (self.function, self.block or "", self.index or -1)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    severity: Severity
    location: Location
    message: str
    #: Structured context (variable name, measured window, budget, ...);
    #: values must be JSON-serializable.
    details: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return f"{self.rule_id} {self.severity} {self.location}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "function": self.location.function,
            "block": self.location.block,
            "index": self.location.index,
            "message": self.message,
            "details": dict(self.details),
        }

    def sort_key(self):
        # Most severe first, then stable source order.
        return (-int(self.severity), self.location.sort_key(), self.rule_id)
