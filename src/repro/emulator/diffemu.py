"""Differential grid emulation: record a column once, fork every cell.

The evaluation grid runs one (module, platform, technique) *column* under
many power configurations — EB values, TBPF periods, power modes. All of
those cells execute the **same deterministic instruction stream** up to
their first power failure; they differ only in where that failure lands.
Cold emulation replays the shared prefix for every cell. This module
replays it **once**:

1. :func:`record_tape` runs the column failure-free (continuous power),
   capturing a resumable :class:`~repro.emulator.interpreter.EmulatorSnapshot`
   at checkpoint commits (thinned to at most ``max_snapshots`` by stride
   doubling) plus, per recharge window, the peak power-meter aggregates
   (``PowerManager.span_log``).
2. :func:`plan_cell` replays the cell's failure predicate against the
   recorded aggregates to locate the first window in which the cell's
   first power failure fires, and picks the last snapshot *strictly
   before* that point.
3. :func:`run_cell` resumes from that snapshot — or synthesizes the
   report outright when the predicate never fires (the cell would simply
   replay the recording), or falls back to cold emulation when no usable
   snapshot precedes the first failure.

Why the prefix is shareable across power modes
----------------------------------------------

Before its first failure a :class:`~repro.emulator.power.PowerManager`
only *accumulates*: ``consumed_since_recharge``, ``cycles_since_recharge``
and ``timeline`` evolve identically under every mode (recharges are
checkpoint-driven in wait mode and absent in roll-back mode), and the
mode only parameterizes the failure *predicate* — all strict-``>``
comparisons of those aggregates against a fixed threshold, monotone
within a recharge window. So a window fires iff its end-of-window
aggregates fire, and the first firing window (plus the fork point's own
aggregates) fully determines where the cell diverges from the recording.

Two policy classes are excluded by construction and always run cold:

- voltage-checking policies (``skip_threshold`` set, MEMENTOS): they read
  ``remaining_fraction`` *before* the first failure, so their prefix is
  mode-dependent;
- anything the caller instruments (step hooks, tracing, telemetry):
  byte-identical observation streams require the cold path.

Tapes carry an explicit content digest (:meth:`SnapshotTape.seal` /
:meth:`SnapshotTape.verify`): a corrupted snapshot — even a single
bit-flip that still unpickles — fails verification and the engine falls
back to cold emulation instead of resuming from wrong state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.emulator.interpreter import (
    EmulatorSnapshot,
    Interpreter,
    InterpreterConfig,
)
from repro.emulator.power import PowerManager, PowerMode
from repro.emulator.report import ExecutionReport
from repro.emulator.runtime import CheckpointPolicy
from repro.energy.model import EnergyModel
from repro.errors import EmulationError
from repro.ir.module import Module

#: Bump when the tape layout or planning semantics change: stored tapes
#: from older code become invalid (the cache key carries this).
TAPE_SCHEMA = 1

#: Snapshots kept per tape. Thinning is stride doubling: the tape always
#: holds commits ``0, s, 2s, ...`` for the smallest power-of-two stride
#: that fits, so resume points stay evenly spread over the whole run.
DEFAULT_MAX_SNAPSHOTS = 32


# -- power specifications ---------------------------------------------------------


@dataclass(frozen=True)
class PowerSpec:
    """A :class:`PowerManager` *configuration* (not its mutable state).

    Frozen and hashable so it can parameterize planning and caching. The
    cache identity (:meth:`key_parts`) always includes the mode, the seed
    and the schedule — a SCHEDULED and a STOCHASTIC cell with otherwise
    equal numbers must never share a snapshot or a cached run.
    """

    mode: str = PowerMode.CONTINUOUS.value
    eb: float = float("inf")
    tbpf: int = 0
    mean_cycles: float = 0.0
    seed: int = 0
    schedule: Tuple[int, ...] = ()

    @classmethod
    def continuous(cls) -> "PowerSpec":
        return cls(mode=PowerMode.CONTINUOUS.value)

    @classmethod
    def energy_budget(cls, eb: float) -> "PowerSpec":
        return cls(mode=PowerMode.ENERGY_BUDGET.value, eb=eb)

    @classmethod
    def periodic(cls, tbpf: int, eb: float = float("inf")) -> "PowerSpec":
        return cls(mode=PowerMode.PERIODIC_CYCLES.value, tbpf=tbpf, eb=eb)

    @classmethod
    def scheduled(
        cls, offsets: Sequence[int], eb: float = float("inf")
    ) -> "PowerSpec":
        return cls(
            mode=PowerMode.SCHEDULED.value,
            schedule=tuple(sorted(int(o) for o in offsets)),
            eb=eb,
        )

    @classmethod
    def stochastic(
        cls, mean_cycles: float, seed: int = 0, eb: float = float("inf")
    ) -> "PowerSpec":
        return cls(
            mode=PowerMode.STOCHASTIC.value,
            mean_cycles=mean_cycles,
            seed=seed,
            eb=eb,
        )

    @classmethod
    def from_manager(cls, power: PowerManager) -> "PowerSpec":
        """The spec of a freshly built manager (pre-consumption)."""
        return cls(
            mode=power.mode.value,
            eb=power.eb,
            tbpf=power.tbpf,
            mean_cycles=power.mean_cycles,
            seed=power.seed,
            schedule=tuple(power.schedule),
        )

    def build(self) -> PowerManager:
        return PowerManager(
            mode=PowerMode(self.mode),
            eb=self.eb,
            tbpf=self.tbpf,
            mean_cycles=self.mean_cycles,
            seed=self.seed,
            schedule=self.schedule,
        )

    def key_parts(self) -> Tuple:
        """Canonical cache-key identity — every field, every mode, always
        (pinned by tests/test_diffemu_planner.py)."""
        return (
            "power-spec",
            self.mode,
            repr(self.eb),
            self.tbpf,
            repr(self.mean_cycles),
            self.seed,
            tuple(self.schedule),
        )

    def describe(self) -> str:
        if self.mode == PowerMode.ENERGY_BUDGET.value:
            return f"energy eb={self.eb:.0f}"
        if self.mode == PowerMode.PERIODIC_CYCLES.value:
            return f"periodic tbpf={self.tbpf}"
        if self.mode == PowerMode.SCHEDULED.value:
            return f"scheduled x{len(self.schedule)}"
        if self.mode == PowerMode.STOCHASTIC.value:
            return f"stochastic mean={self.mean_cycles:.0f} seed={self.seed}"
        return self.mode


# -- tape -------------------------------------------------------------------------


@dataclass(frozen=True)
class PowerPoint:
    """The power meter's aggregates at one instant of the recording."""

    consumed: float
    cycles: int
    timeline: int
    recharges: int
    window_anchor: int


@dataclass
class TapeEntry:
    ordinal: int  # commit index on the recording run (0-based)
    ckpt_id: int
    point: PowerPoint
    snapshot: EmulatorSnapshot


@dataclass
class SnapshotTape:
    """The recorded column: snapshots + per-window power aggregates."""

    policy_name: str
    wait_mode: bool
    #: (consumed, cycles, end-of-window timeline) per completed recharge
    #: window, in order — the *peak* aggregates the predicates replay.
    recharge_spans: List[Tuple[float, int, int]]
    entries: List[TapeEntry]
    final: PowerPoint
    commits: int  # commits observed before thinning
    report: ExecutionReport  # the failure-free recording's report
    schema: int = TAPE_SCHEMA
    digest: str = ""

    def _compute_digest(self) -> str:
        h = hashlib.sha256()

        def feed(obj) -> None:
            h.update(repr(obj).encode("utf-8"))
            h.update(b"\x00")

        feed((self.schema, self.policy_name, self.wait_mode, self.commits))
        feed(self.recharge_spans)
        feed(self.final)
        feed(self.report)
        for entry in self.entries:
            snap = entry.snapshot
            feed((entry.ordinal, entry.ckpt_id, entry.point))
            feed(snap.frames)
            feed((
                snap.ckpt_id,
                snap.snapshot_payload_bytes,
                snap.instructions_executed,
                snap.active_cycles,
                snap.checkpoints_skipped,
                snap.peak_vm_bytes,
                snap.seg_anchor,
                snap.attempts_on_snapshot,
                snap.run_id,
            ))
            feed(snap.images)
            feed(snap.meter_state)
            feed(snap.power_state)
        return h.hexdigest()

    def seal(self) -> "SnapshotTape":
        self.digest = self._compute_digest()
        return self

    def verify(self) -> bool:
        """True iff the tape's contents still match its sealed digest.

        Catches corruption the pickle layer cannot: a flipped register
        value or power aggregate unpickles fine but would make every fork
        silently wrong."""
        try:
            return bool(self.digest) and self._compute_digest() == self.digest
        except Exception:
            return False


def record_tape(
    module: Module,
    model: EnergyModel,
    policy: CheckpointPolicy,
    *,
    vm_size: int = 1 << 30,
    inputs: Optional[Dict[str, List[int]]] = None,
    max_instructions: int = 200_000_000,
    max_snapshots: int = DEFAULT_MAX_SNAPSHOTS,
    predecode: bool = True,
    compiled: bool = True,
) -> SnapshotTape:
    """Run the column failure-free and capture its snapshot tape.

    The recording runs under continuous power: before the first failure
    every mode executes this exact stream (module docstring), so one tape
    serves the whole column. Raises :class:`ValueError` for
    voltage-checking policies, whose prefix is not mode-independent.
    """
    if policy.skip_threshold is not None:
        raise ValueError(
            f"policy {policy.name!r} consults the remaining charge before "
            "failures; its prefix is mode-dependent and cannot be taped"
        )
    power = PowerManager.continuous()
    power.span_log = []
    entries: List[TapeEntry] = []
    state = {"stride": 1, "commits": 0}

    def hook(interp: Interpreter, ckpt_id: int) -> None:
        ordinal = state["commits"]
        state["commits"] += 1
        if ordinal % state["stride"]:
            return
        snap = interp.capture_snapshot()
        entries.append(TapeEntry(
            ordinal=ordinal,
            ckpt_id=ckpt_id,
            point=_point_of(snap.power_state),
            snapshot=snap,
        ))
        if len(entries) > max_snapshots:
            # Keep commits 0, 2s, 4s, ...: ordinals stay multiples of the
            # doubled stride and evenly spread over the run so far.
            del entries[1::2]
            state["stride"] *= 2

    config = InterpreterConfig(
        inputs=dict(inputs or {}),
        max_instructions=max_instructions,
        vm_size=vm_size,
        predecode=predecode,
        compiled=compiled,
        commit_hook=hook,
    )
    interp = Interpreter(module, model, policy, power, config)
    report = interp.run()
    tape = SnapshotTape(
        policy_name=policy.name,
        wait_mode=policy.wait_for_full_recharge,
        recharge_spans=list(power.span_log),
        entries=entries,
        final=PowerPoint(
            consumed=power.consumed_since_recharge,
            cycles=power.cycles_since_recharge,
            timeline=power.timeline,
            recharges=power.recharges,
            window_anchor=power._window_anchor,
        ),
        commits=state["commits"],
        report=report,
    )
    return tape.seal()


def _point_of(power_state: dict) -> PowerPoint:
    return PowerPoint(
        consumed=power_state["consumed_since_recharge"],
        cycles=power_state["cycles_since_recharge"],
        timeline=power_state["timeline"],
        recharges=power_state["recharges"],
        window_anchor=power_state["_window_anchor"],
    )


# -- planning ---------------------------------------------------------------------


@dataclass(frozen=True)
class ForkPlan:
    """Where one cell diverges from the recording, and how to run it.

    ``kind`` is ``"synthesize"`` (the cell never fails: its report is the
    recording's), ``"fork"`` (resume ``tape.entries[entry_index]``) or
    ``"cold"`` (no snapshot strictly precedes the first failure).
    ``first_failure_window`` is the 0-based recharge-window ordinal the
    first failure fires in, -1 when it never fires.
    """

    kind: str
    entry_index: int = -1
    first_failure_window: int = -1
    reason: str = ""


class _WindowSizes:
    """Lazily reconstructed stochastic window sizes.

    A fresh STOCHASTIC manager draws window 0 at construction and one
    more window per recharge, so size ``j`` is the ``(j+1)``-th draw of
    ``Random(seed)`` — replayed here on a throwaway manager.
    """

    def __init__(self, spec: PowerSpec):
        self._sizes: List[int] = []
        self._manager: Optional[PowerManager] = None
        if spec.mode == PowerMode.STOCHASTIC.value:
            self._manager = spec.build()
            self._sizes.append(self._manager._window)

    def __call__(self, j: int) -> int:
        if self._manager is None:
            return 0
        while len(self._sizes) <= j:
            self._sizes.append(self._manager._draw_window())
        return self._sizes[j]


def _fires(
    spec: PowerSpec,
    consumed: float,
    cycles: int,
    timeline: int,
    window: int,
) -> bool:
    """Replay :meth:`PowerManager.consume`'s failure predicate (strict
    ``>``, inclusive budgets) against recorded aggregates."""
    mode = spec.mode
    if mode == PowerMode.ENERGY_BUDGET.value:
        return consumed > spec.eb
    if mode == PowerMode.PERIODIC_CYCLES.value:
        return spec.tbpf > 0 and cycles > spec.tbpf
    if mode == PowerMode.SCHEDULED.value:
        return bool(spec.schedule) and timeline > spec.schedule[0]
    if mode == PowerMode.STOCHASTIC.value:
        return cycles > window
    return False  # CONTINUOUS never fails


def plan_cell(tape: SnapshotTape, spec: PowerSpec) -> ForkPlan:
    """Locate the cell's first divergence from the recording and pick the
    last snapshot strictly before it (module docstring for the math)."""
    sizes = _WindowSizes(spec)
    first: Optional[int] = None
    for j, (consumed, cycles, timeline) in enumerate(tape.recharge_spans):
        if _fires(spec, consumed, cycles, timeline, sizes(j)):
            first = j
            break
    if first is None:
        open_ordinal = len(tape.recharge_spans)
        if not _fires(
            spec, tape.final.consumed, tape.final.cycles,
            tape.final.timeline, sizes(open_ordinal),
        ):
            return ForkPlan(
                kind="synthesize",
                reason="no failure fires on the recorded run",
            )
        first = open_ordinal

    # A snapshot is safe iff it lies strictly before the first failure:
    # either in an earlier (non-firing) window, or in the firing window
    # but with aggregates the predicate does not yet fire on.
    best = -1
    for i, entry in enumerate(tape.entries):
        r = entry.point.recharges
        if r < first:
            best = i
        elif r == first and not _fires(
            spec, entry.point.consumed, entry.point.cycles,
            entry.point.timeline, sizes(r),
        ):
            best = i
        elif r > first:
            break
    if best < 0:
        return ForkPlan(
            kind="cold",
            first_failure_window=first,
            reason="first failure precedes the first snapshot",
        )
    return ForkPlan(
        kind="fork",
        entry_index=best,
        first_failure_window=first,
        reason=(
            f"fork commit #{tape.entries[best].ordinal} "
            f"(window {tape.entries[best].point.recharges}), first failure "
            f"in window {first}"
        ),
    )


def _fork_power_state(spec: PowerSpec, point: PowerPoint) -> dict:
    """The cell's power-manager state at the fork point.

    The recording ran under a CONTINUOUS manager, so the snapshot's own
    power state has the wrong mode; but pre-failure the cell's manager
    holds the same aggregates with zero failures, and its RNG (if any)
    has drawn exactly ``recharges`` windows past the boot draw."""
    p = spec.build()
    for _ in range(point.recharges):
        if p._rng is not None:
            p._window = p._draw_window()
    return {
        "mode": p.mode.value,
        "consumed_since_recharge": point.consumed,
        "cycles_since_recharge": point.cycles,
        "failures": 0,
        "recharges": point.recharges,
        "timeline": point.timeline,
        "failure_log": [],
        "_schedule_pos": 0,
        "_window_anchor": point.window_anchor,
        "_window": p._window,
        "_rng_state": p._rng.getstate() if p._rng is not None else None,
    }


# -- running ----------------------------------------------------------------------


def _synthesize(tape: SnapshotTape, spec: PowerSpec) -> ExecutionReport:
    """The report of a cell whose failure predicate never fires: the
    recording's report, re-labelled with the cell's power mode. Containers
    are copied so cells never alias each other."""
    report = tape.report
    return replace(
        report,
        power_mode=spec.mode,
        energy=replace(report.energy),
        outputs={name: list(v) for name, v in report.outputs.items()},
        failure_offsets=list(report.failure_offsets),
    )


def fork_cell(
    module: Module,
    model: EnergyModel,
    policy: CheckpointPolicy,
    spec: PowerSpec,
    tape: SnapshotTape,
    entry_index: int,
    *,
    vm_size: int = 1 << 30,
    inputs: Optional[Dict[str, List[int]]] = None,
    max_instructions: int = 200_000_000,
    predecode: bool = True,
    compiled: bool = True,
    step_hook: Optional[Callable[[str, int], None]] = None,
) -> ExecutionReport:
    """Resume one cell from ``tape.entries[entry_index]``."""
    entry = tape.entries[entry_index]
    adapted = replace(
        entry.snapshot,
        power_state=_fork_power_state(spec, entry.point),
    )
    config = InterpreterConfig(
        inputs=dict(inputs or {}),
        max_instructions=max_instructions,
        vm_size=vm_size,
        predecode=predecode,
        compiled=compiled,
        step_hook=step_hook,
    )
    interp = Interpreter(module, model, policy, spec.build(), config)
    return interp.resume(adapted)


@dataclass
class DiffEmuStats:
    """Counters for manifests and progress lines."""

    tapes_recorded: int = 0
    tape_cache_hits: int = 0
    invalid_tapes: int = 0
    synthesized: int = 0
    forked: int = 0
    cold: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "tapes_recorded": self.tapes_recorded,
            "tape_cache_hits": self.tape_cache_hits,
            "invalid_tapes": self.invalid_tapes,
            "synthesized": self.synthesized,
            "forked": self.forked,
            "cold": self.cold,
        }

    def merge(self, other: "DiffEmuStats") -> None:
        self.tapes_recorded += other.tapes_recorded
        self.tape_cache_hits += other.tape_cache_hits
        self.invalid_tapes += other.invalid_tapes
        self.synthesized += other.synthesized
        self.forked += other.forked
        self.cold += other.cold


class TapeStore:
    """Tape memo (in-process) over the content-addressed artifact cache.

    ``cache`` is a :class:`repro.runner.cache.ArtifactCache` (or None for
    memory-only). Loaded tapes are digest-verified: a corrupt entry
    counts as invalid and is re-recorded."""

    CATEGORY = "diffemu-tape"

    def __init__(self, cache=None):
        self.cache = cache
        self.stats = DiffEmuStats()
        self._memo: Dict[Tuple, SnapshotTape] = {}

    def get(
        self,
        key_parts: Tuple,
        recorder: Callable[[], SnapshotTape],
    ) -> SnapshotTape:
        key = tuple(key_parts)
        tape = self._memo.get(key)
        if tape is not None:
            return tape
        cache_key = None
        if self.cache is not None:
            from repro.runner.cache import ArtifactCache

            cache_key = ArtifactCache.key(
                self.CATEGORY, TAPE_SCHEMA, *key_parts
            )
            cached = self.cache.get(self.CATEGORY, cache_key)
            if cached is not None:
                if (
                    isinstance(cached, SnapshotTape)
                    and cached.schema == TAPE_SCHEMA
                    and cached.verify()
                ):
                    self.stats.tape_cache_hits += 1
                    self._memo[key] = cached
                    return cached
                self.stats.invalid_tapes += 1
        tape = recorder()
        self.stats.tapes_recorded += 1
        if self.cache is not None and cache_key is not None:
            self.cache.put(self.CATEGORY, cache_key, tape)
        self._memo[key] = tape
        return tape


def run_cell(
    module: Module,
    model: EnergyModel,
    policy: CheckpointPolicy,
    spec: PowerSpec,
    tape: SnapshotTape,
    *,
    vm_size: int = 1 << 30,
    inputs: Optional[Dict[str, List[int]]] = None,
    max_instructions: int = 200_000_000,
    predecode: bool = True,
    compiled: bool = True,
    stats: Optional[DiffEmuStats] = None,
) -> Tuple[ExecutionReport, ForkPlan]:
    """Run one grid cell differentially: synthesize, fork or fall back.

    The returned report is byte-identical to a cold
    :func:`~repro.emulator.interpreter.run_intermittent` of the same cell
    (the identity suite's invariant). A tape that fails digest
    verification or cannot actually resume falls back to cold emulation.
    """
    if not tape.verify():
        plan = ForkPlan(kind="cold", reason="tape failed verification")
        if stats is not None:
            stats.invalid_tapes += 1
            stats.cold += 1
        return _run_cold(
            module, model, policy, spec, vm_size=vm_size, inputs=inputs,
            max_instructions=max_instructions, predecode=predecode,
                compiled=compiled,
        ), plan
    plan = plan_cell(tape, spec)
    if plan.kind == "synthesize":
        if stats is not None:
            stats.synthesized += 1
        return _synthesize(tape, spec), plan
    if plan.kind == "fork":
        try:
            report = fork_cell(
                module, model, policy, spec, tape, plan.entry_index,
                vm_size=vm_size, inputs=inputs,
                max_instructions=max_instructions, predecode=predecode,
                compiled=compiled,
            )
        except EmulationError as exc:
            # A tape recorded for a different module revision (or
            # otherwise unresumable) must degrade, never miscompute.
            plan = ForkPlan(
                kind="cold",
                first_failure_window=plan.first_failure_window,
                reason=f"snapshot rejected: {exc}",
            )
            if stats is not None:
                stats.invalid_tapes += 1
                stats.cold += 1
            return _run_cold(
                module, model, policy, spec, vm_size=vm_size, inputs=inputs,
                max_instructions=max_instructions, predecode=predecode,
                compiled=compiled,
            ), plan
        if stats is not None:
            stats.forked += 1
        return report, plan
    if stats is not None:
        stats.cold += 1
    return _run_cold(
        module, model, policy, spec, vm_size=vm_size, inputs=inputs,
        max_instructions=max_instructions, predecode=predecode,
                compiled=compiled,
    ), plan


def _run_cold(
    module: Module,
    model: EnergyModel,
    policy: CheckpointPolicy,
    spec: PowerSpec,
    *,
    vm_size: int,
    inputs: Optional[Dict[str, List[int]]],
    max_instructions: int,
    predecode: bool,
    compiled: bool,
) -> ExecutionReport:
    from repro.emulator.interpreter import run_intermittent

    return run_intermittent(
        module, model, policy, spec.build(),
        vm_size=vm_size, inputs=inputs,
        max_instructions=max_instructions, predecode=predecode,
                compiled=compiled,
    )
