"""Interprocedural value-range analysis and loop trip-count inference.

SCHEMATIC's forward-progress argument (paper §III-B2, Algorithm 1) leans
on loop trip bounds: the conditional back-edge checkpoint may be elided
only when ``numit`` exceeds the loop's maximum iteration count, and the
energy certifier needs a bound to close checkpoint-free loop windows.
Until now those bounds were *trusted* — ``@maxiter`` annotations and the
frontend's constant-``for`` shortcut flowed unchecked into placement.
This module makes them *checked*:

- an interval-domain abstract interpretation over the IR, run per
  function on the :mod:`repro.analysis.dataflow` solver with
  branch-condition edge refinement and threshold widening at loop
  headers;
- context-insensitive interprocedural summaries computed callee-first
  over the :mod:`repro.analysis.callgraph` traversal (return-value
  interval plus the caller-visible names a call may clobber);
- a trip-count deriver for monotone induction-variable loops, yielding
  a proven *upper* bound always and an *exact* count when the initial
  value, bound and step are all statically known and the loop can only
  exit through its header.

Soundness follows the emulator, not C: every transfer mirrors
``interpreter._binop`` exactly (mathematical compare on sign-adjusted
values, ``& 31`` shift masking, truncating division, wrap-to-dest-type
on every write). Whatever the abstract semantics cannot bound precisely
drops to the destination type's full range, never to a smaller guess.

Entry assumptions (what ⊤ means here): non-const globals are external
inputs, locals are statically allocated and persist across calls, and
scalar parameters arrive from arbitrary call sites — all of them start
at full type range. Const globals are folded from their initializers.

The public surface is :class:`ModuleRanges` (per-function results),
:func:`infer_module_bounds` (``(function, header) -> proven bound``) and
:func:`apply_inferred_bounds` (fill missing ``Function.loop_maxiter``
entries in place, which :class:`repro.core.placement.Schematic` runs
right after cloning so unannotated-but-bounded loops get real ``numit``
windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG
from repro.analysis.dataflow import solve_forward
from repro.analysis.loops import Loop, LoopNest
from repro.errors import AnalysisError
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Instruction,
    Load,
    Move,
    Opcode,
    Ret,
    Store,
    UnaryOpcode,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import Const, Register, Value, Variable, VarRef

#: Inferred bounds above this are useless to the placer and the energy
#: certifier alike; deriving them would only invite overflow-ish noise.
TRIP_CAP = 1_000_000

#: Intervals wider than this are treated as "unknown" when used as a
#: loop-entry or bound estimate (a full i32 range proves nothing).
_WIDTH_CAP = 1 << 21


# ---------------------------------------------------------------------------
# The interval domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (mathematical, unbounded)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def of_type(t: IntType) -> "Interval":
        return Interval(t.min_value, t.max_value)

    @staticmethod
    def of_values(values: List[int]) -> "Interval":
        return Interval(min(values), max(values))

    # -- lattice -----------------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def covers_type(self, t: IntType) -> bool:
        return self.lo <= t.min_value and self.hi >= t.max_value

    # -- wrapping ----------------------------------------------------------

    def wrapped(self, t: IntType) -> "Interval":
        """The image of this interval under ``t.wrap`` — exact when the
        wrapped segment stays contiguous, full type range otherwise."""
        if self.width >= (1 << t.bits) - 1:
            return Interval.of_type(t)
        lo, hi = t.wrap(self.lo), t.wrap(self.hi)
        if lo <= hi:
            return Interval(lo, hi)
        return Interval.of_type(t)  # the segment straddles the wrap seam

    # -- comparison lattice ------------------------------------------------

    def compare(self, op: Opcode, other: "Interval") -> "Interval":
        """The 0/1 result interval of ``self <op> other``."""
        verdict = _compare_intervals(op, self, other)
        if verdict is True:
            return Interval(1, 1)
        if verdict is False:
            return Interval(0, 0)
        return Interval(0, 1)

    def __str__(self) -> str:
        if self.is_point:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"


def _compare_intervals(
    op: Opcode, a: Interval, b: Interval
) -> Optional[bool]:
    """Definite truth of ``a <op> b`` over all value pairs, else None."""
    if op is Opcode.LT:
        if a.hi < b.lo:
            return True
        if a.lo >= b.hi:
            return False
    elif op is Opcode.LE:
        if a.hi <= b.lo:
            return True
        if a.lo > b.hi:
            return False
    elif op is Opcode.GT:
        if a.lo > b.hi:
            return True
        if a.hi <= b.lo:
            return False
    elif op is Opcode.GE:
        if a.lo >= b.hi:
            return True
        if a.hi < b.lo:
            return False
    elif op is Opcode.EQ:
        if a.is_point and b.is_point and a.lo == b.lo:
            return True
        if a.meet(b) is None:
            return False
    elif op is Opcode.NE:
        if a.meet(b) is None:
            return True
        if a.is_point and b.is_point and a.lo == b.lo:
            return False
    return None


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division (mirrors ``interpreter._binop``)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _corners(
    a: Interval, b: Interval, fn: Callable[[int, int], int]
) -> Interval:
    """Interval hull of ``fn`` over the four corners — exact only for
    operations monotone in each argument."""
    vals = [fn(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    return Interval(min(vals), max(vals))


def binop_interval(op: Opcode, a: Interval, b: Interval) -> Optional[Interval]:
    """Mathematical result interval of ``a <op> b`` before wrapping;
    ``None`` means "no useful bound" (the caller substitutes the
    destination type's full range)."""
    if op is Opcode.ADD:
        return Interval(a.lo + b.lo, a.hi + b.hi)
    if op is Opcode.SUB:
        return Interval(a.lo - b.hi, a.hi - b.lo)
    if op is Opcode.MUL:
        return _corners(a, b, lambda x, y: x * y)
    if op is Opcode.DIV:
        # Split the divisor around zero; trunc-div is monotone per sign.
        parts: List[Interval] = []
        if b.lo <= -1:
            parts.append(Interval(b.lo, min(b.hi, -1)))
        if b.hi >= 1:
            parts.append(Interval(max(b.lo, 1), b.hi))
        if not parts:
            return None  # division by zero traps; anything is sound
        result: Optional[Interval] = None
        for part in parts:
            piece = _corners(a, part, _trunc_div)
            result = piece if result is None else result.join(piece)
        return result
    if op is Opcode.REM:
        # result = a - trunc(a/b)*b: sign follows a, |result| < max|b|.
        m = max(abs(b.lo), abs(b.hi))
        if m == 0:
            return None  # remainder by zero traps
        lo = max(a.lo, -(m - 1)) if a.lo < 0 else 0
        hi = min(a.hi, m - 1) if a.hi > 0 else 0
        return Interval(min(lo, hi), max(lo, hi))
    if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
        if a.lo < 0 or b.lo < 0:
            return None
        if op is Opcode.AND:
            return Interval(0, min(a.hi, b.hi))
        ceiling = (1 << max(a.hi, b.hi).bit_length()) - 1
        lo = max(a.lo, b.lo) if op is Opcode.OR else 0
        return Interval(lo, ceiling)
    if op is Opcode.SHL:
        s = _shift_amounts(b)
        return _corners(a, s, lambda x, y: x << y)
    if op is Opcode.SHR:
        s = _shift_amounts(b)
        return _corners(a, s, lambda x, y: x >> y)
    if op.is_comparison:
        return a.compare(op, b)
    return None


def _shift_amounts(b: Interval) -> Interval:
    """The interpreter masks shift amounts with ``& 31``."""
    if 0 <= b.lo and b.hi <= 31:
        return b
    return Interval(0, 31)


def unop_interval(op: UnaryOpcode, a: Interval) -> Interval:
    if op is UnaryOpcode.NEG:
        return Interval(-a.hi, -a.lo)
    if op is UnaryOpcode.NOT:
        return Interval(-a.hi - 1, -a.lo - 1)
    # LNOT: 0 -> 1, nonzero -> 0.
    if a.lo == 0 and a.hi == 0:
        return Interval(1, 1)
    if not a.contains(0):
        return Interval(0, 0)
    return Interval(0, 1)


# ---------------------------------------------------------------------------
# Symbolic branch conditions (for edge refinement and trip derivation)
# ---------------------------------------------------------------------------
#
# Within one block we resolve the register feeding a Branch back to a small
# symbolic language:
#
#   ("const", v)              a literal (already wrapped to the reg type)
#   ("var", name, type)       the value of scalar variable `name` — only
#                             recorded when the load is value-preserving
#                             (the register's range covers the variable's)
#   ("cmp", op, lhs, rhs)     a comparison of two resolved operands
#   ("lnot", sym)             logical negation
#
# A Store to `name` (or any Call, conservatively) kills every symbol that
# mentions a variable. Checkpoints are value-neutral (restore reloads the
# values that were saved) and kill nothing.

Sym = Tuple  # structural tuples as above


def _sym_mentions_var(sym: Optional[Sym], name: Optional[str] = None) -> bool:
    if sym is None:
        return False
    tag = sym[0]
    if tag == "var":
        return name is None or sym[1] == name
    if tag == "cmp":
        return _sym_mentions_var(sym[2], name) or _sym_mentions_var(sym[3], name)
    if tag == "lnot":
        return _sym_mentions_var(sym[1], name)
    return False


def _value_preserving(inner: IntType, outer: IntType) -> bool:
    """Wrapping an ``inner``-typed value to ``outer`` is the identity."""
    return (
        outer.min_value <= inner.min_value
        and outer.max_value >= inner.max_value
    )


@dataclass(frozen=True)
class BlockCond:
    """A block's terminator Branch with its resolved condition symbol."""

    cond: Optional[Sym]
    if_true: str
    if_false: str


NEGATED = {
    Opcode.LT: Opcode.GE,
    Opcode.GE: Opcode.LT,
    Opcode.LE: Opcode.GT,
    Opcode.GT: Opcode.LE,
    Opcode.EQ: Opcode.NE,
    Opcode.NE: Opcode.EQ,
}

MIRRORED = {
    Opcode.LT: Opcode.GT,
    Opcode.GT: Opcode.LT,
    Opcode.LE: Opcode.GE,
    Opcode.GE: Opcode.LE,
    Opcode.EQ: Opcode.EQ,
    Opcode.NE: Opcode.NE,
}


# ---------------------------------------------------------------------------
# Trip counts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TripBound:
    """A proven iteration bound for one natural loop.

    ``max_trips`` is always a sound upper bound on the number of body
    executions. When ``exact`` is True the loop provably executes
    ``min_trips == max_trips`` times (initial value, bound and step are
    static and the header owns the only exit).
    """

    header: str
    max_trips: int
    min_trips: int
    exact: bool
    counter: str

    def __str__(self) -> str:
        kind = "exactly" if self.exact else "at most"
        return f".{self.header}: {kind} {self.max_trips} iterations"


def _ceildiv(a: int, b: int) -> int:
    return -(-a // b)


# ---------------------------------------------------------------------------
# Interprocedural summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionSummary:
    """What a call site needs to know about a callee.

    Computed under the callee's ⊤ entry state, so every field is a sound
    over-approximation for *any* concrete call. ``writes`` holds
    caller-visible names (globals plus the callee's own by-ref formals,
    transitively through its callees); ``global_exit`` refines written
    scalar globals whose exit interval is better than ⊤.
    """

    returns: Optional[Interval]
    writes: FrozenSet[str]
    global_exit: Dict[str, Interval]


def _ref_mapping(call: Call, callee: Function) -> Dict[str, str]:
    """Callee ref-formal mangled name -> caller-side actual name.

    Local twin of :func:`repro.staticcheck.common.call_ref_mapping`;
    re-implemented here so ``analysis`` stays import-free of
    ``staticcheck`` (which imports this package).
    """
    mapping: Dict[str, str] = {}
    for arg, param in zip(call.args, callee.params):
        if isinstance(arg, VarRef):
            mapping[callee.variables[param.name].name] = arg.variable.name
    return mapping


# ---------------------------------------------------------------------------
# Per-function analysis
# ---------------------------------------------------------------------------

State = Dict[str, Interval]  # key -> interval; missing key means ⊤


class FunctionRanges:
    """Value ranges, branch feasibility and trip bounds for one function.

    States map keys to intervals: ``"%name"`` for registers, mangled
    variable names for scalar variables. A missing key is ⊤ (full type
    range); stored entries are always proper subsets of their type's
    range, so state equality doubles as lattice equality.
    """

    def __init__(
        self,
        module: Module,
        func: Function,
        summaries: Dict[str, FunctionSummary],
    ):
        self.module = module
        self.func = func
        self.summaries = summaries
        self.cfg = CFG(func)

        self._vars: Dict[str, Variable] = {}
        for var in func.variables.values():
            self._vars[var.name] = var
        for var in module.globals.values():
            self._vars[var.name] = var

        self._key_types: Dict[str, IntType] = {}
        for name, var in self._vars.items():
            self._key_types[name] = var.type
        for reg in func.arg_registers():
            if reg is not None:
                self._key_types["%" + reg.name] = reg.type
        for block in func.blocks.values():
            for inst in block:
                for reg in inst.defs():
                    self._key_types["%" + reg.name] = reg.type

        self._thresholds = self._collect_thresholds()
        self._block_conds = self._resolve_branch_conds()

        widen_at = self._retreat_targets()
        self.solution = solve_forward(
            self.cfg,
            {},
            self._transfer,
            self._join,
            edge_transfer=self._edge_transfer,
            widen=self._widen,
            widen_at=widen_at,
        )

        self.nest: Optional[LoopNest] = None
        try:
            self.nest = LoopNest(self.cfg)
        except AnalysisError:
            pass  # irreducible control flow: ranges hold, loop facts don't

        self.trip_bounds: Dict[str, TripBound] = {}
        if self.nest is not None:
            for loop in self.nest.bottom_up():
                bound = self._derive_trip(loop)
                if bound is not None:
                    self.trip_bounds[loop.header] = bound

        self.return_interval = self._collect_return_interval()
        self.summary = self._build_summary()

    # -- state plumbing ----------------------------------------------------

    def _norm(self, key: str, iv: Interval) -> Optional[Interval]:
        """Clamp to the key's type range; None when the entry carries no
        information beyond the type itself (⊤)."""
        t = self._key_types.get(key)
        if t is None:
            return iv
        clamped = iv.meet(Interval.of_type(t))
        if clamped is None:  # stale entry outside the type: treat as ⊤
            return None
        if clamped.covers_type(t):
            return None
        return clamped

    def _set(self, state: State, key: str, iv: Optional[Interval]) -> None:
        if iv is not None:
            iv = self._norm(key, iv)
        if iv is None:
            state.pop(key, None)
        else:
            state[key] = iv

    def _join(self, a: State, b: State) -> State:
        out: State = {}
        for key, iva in a.items():
            ivb = b.get(key)
            if ivb is None:
                continue
            joined = self._norm(key, iva.join(ivb))
            if joined is not None:
                out[key] = joined
        return out

    def _value(self, state: State, operand: Value) -> Optional[Interval]:
        """The operand's interval, or None for ⊤."""
        if isinstance(operand, Const):
            return Interval.point(operand.value)
        if isinstance(operand, Register):
            iv = state.get("%" + operand.name)
            return iv if iv is not None else Interval.of_type(operand.type)
        return None  # VarRef: not a numeric value

    def _var_interval(self, state: State, var: Variable) -> Interval:
        iv = state.get(var.name)
        return iv if iv is not None else Interval.of_type(var.type)

    def value_interval(
        self, state: State, operand: Value
    ) -> Optional[Interval]:
        """Public query: the operand's interval in ``state`` (None = ⊤)."""
        return self._value(state, operand)

    # -- transfer ----------------------------------------------------------

    def _transfer(self, label: str, state: State) -> State:
        return self._exec_block(label, state)

    def _exec_block(
        self,
        label: str,
        state: State,
        visit: Optional[Callable[[int, Instruction, State], None]] = None,
    ) -> State:
        """Abstractly execute one block. ``visit`` observes the state
        *before* each instruction (used by the bounds rules)."""
        new = dict(state)
        for idx, inst in enumerate(self.func.blocks[label].instructions):
            if visit is not None:
                visit(idx, inst, new)
            self._exec_inst(inst, new)
        return new

    def _exec_inst(self, inst: Instruction, state: State) -> None:
        if isinstance(inst, Move):
            src = self._value(state, inst.src)
            iv = src.wrapped(inst.dest.type) if src is not None else None
            self._set(state, "%" + inst.dest.name, iv)
        elif isinstance(inst, BinOp):
            lhs = self._value(state, inst.lhs)
            rhs = self._value(state, inst.rhs)
            iv: Optional[Interval] = None
            if lhs is not None and rhs is not None:
                raw = binop_interval(inst.op, lhs, rhs)
                if raw is not None:
                    iv = raw.wrapped(inst.dest.type)
            self._set(state, "%" + inst.dest.name, iv)
        elif isinstance(inst, UnOp):
            src = self._value(state, inst.src)
            iv = None
            if src is not None:
                iv = unop_interval(inst.op, src).wrapped(inst.dest.type)
            self._set(state, "%" + inst.dest.name, iv)
        elif isinstance(inst, Load):
            self._set(
                state, "%" + inst.dest.name,
                self._load_interval(state, inst.var).wrapped(inst.dest.type),
            )
        elif isinstance(inst, Store):
            if inst.index is None and not inst.var.is_ref:
                value = self._value(state, inst.value)
                iv = value.wrapped(inst.var.type) if value is not None else None
                self._set(state, inst.var.name, iv)
            # Array content is not tracked (weak updates add nothing over
            # the zero/⊤ entry assumption), so indexed stores are no-ops.
        elif isinstance(inst, Call):
            self._apply_call(inst, state)
        # Jump/Branch/Ret carry no state effect (edges refine instead);
        # checkpoints restore exactly the values they saved.

    def _load_interval(self, state: State, var: Variable) -> Interval:
        if var.is_const and var.init is not None:
            return Interval.of_values(var.init)
        if var.is_array or var.is_ref:
            return Interval.of_type(var.type)
        return self._var_interval(state, var)

    def _apply_call(self, call: Call, state: State) -> None:
        summary = self.summaries.get(call.callee)
        callee = self.module.functions.get(call.callee)
        if summary is None or callee is None:
            # Unknown callee: clobber every global scalar, result is ⊤.
            for name in self.module.globals:
                state.pop(name, None)
        else:
            mapping = _ref_mapping(call, callee)
            for written in summary.writes:
                target = mapping.get(written, written)
                if target in self.module.globals:
                    self._set(state, target, summary.global_exit.get(written))
                # Ref-formal targets are caller arrays: content untracked.
        if call.dest is not None:
            iv = summary.returns if summary is not None else None
            if iv is not None:
                iv = iv.wrapped(call.dest.type)
            self._set(state, "%" + call.dest.name, iv)

    # -- widening ----------------------------------------------------------

    def _collect_thresholds(self) -> List[int]:
        """Widening landing points: every literal in the function (±1 for
        strict/non-strict comparison slack) plus all involved type
        bounds. Finite, so iterated widening terminates."""
        points: Set[int] = {0, 1, -1}
        for t in self._key_types.values():
            points.add(t.min_value)
            points.add(t.max_value)
        for block in self.func.blocks.values():
            for inst in block:
                for operand in getattr(inst, "__dict__", {}).values():
                    if isinstance(operand, Const):
                        points.update(
                            (operand.value - 1, operand.value, operand.value + 1)
                        )
        return sorted(points)

    def _retreat_targets(self) -> FrozenSet[str]:
        """Targets of retreating edges — loop headers on reducible CFGs,
        and a safe superset on irreducible ones."""
        rpo = self.cfg.rpo_index()
        return frozenset(
            edge.dst
            for edge in self.cfg.edges()
            if edge.dst in rpo and edge.src in rpo
            and rpo[edge.dst] <= rpo[edge.src]
        )

    def _threshold_below(self, value: int) -> int:
        best = self._thresholds[0]
        for point in self._thresholds:
            if point <= value:
                best = point
            else:
                break
        return min(best, value)

    def _threshold_above(self, value: int) -> int:
        for point in self._thresholds:
            if point >= value:
                return point
        return max(self._thresholds[-1], value)

    def _widen(self, old: State, new: State) -> State:
        out: State = {}
        for key, niv in new.items():
            oiv = old.get(key)
            if oiv is None:
                continue  # was already ⊤ at this point
            lo = oiv.lo if niv.lo >= oiv.lo else self._threshold_below(niv.lo)
            hi = oiv.hi if niv.hi <= oiv.hi else self._threshold_above(niv.hi)
            widened = self._norm(key, Interval(min(lo, hi), max(lo, hi)))
            if widened is not None:
                out[key] = widened
        return out

    # -- branch-condition resolution and edge refinement -------------------

    def _resolve_branch_conds(self) -> Dict[str, BlockCond]:
        conds: Dict[str, BlockCond] = {}
        for label, block in self.func.blocks.items():
            if not block.instructions:
                continue
            term = block.instructions[-1]
            if not isinstance(term, Branch):
                continue
            syms = self._block_symbols(label)
            cond: Optional[Sym]
            if isinstance(term.cond, Const):
                cond = ("const", term.cond.value)
            elif isinstance(term.cond, Register):
                cond = syms.get(term.cond.name)
            else:
                cond = None
            conds[label] = BlockCond(cond, term.if_true, term.if_false)
        return conds

    def _block_symbols(self, label: str) -> Dict[str, Optional[Sym]]:
        """Register -> symbol at the end of ``label`` (in-block only)."""
        syms: Dict[str, Optional[Sym]] = {}

        def operand_sym(operand: Value) -> Optional[Sym]:
            if isinstance(operand, Const):
                return ("const", operand.value)
            if isinstance(operand, Register):
                return syms.get(operand.name)
            return None

        def kill_vars(name: Optional[str]) -> None:
            for reg, sym in list(syms.items()):
                if _sym_mentions_var(sym, name):
                    syms[reg] = None

        for inst in self.func.blocks[label].instructions:
            if isinstance(inst, Load):
                sym: Optional[Sym] = None
                var = inst.var
                if var.is_const and not var.is_array and var.init is not None:
                    sym = ("const", inst.dest.type.wrap(var.init[0]))
                elif (
                    inst.index is None
                    and not var.is_ref
                    and _value_preserving(var.type, inst.dest.type)
                ):
                    sym = ("var", var.name, var.type)
                syms[inst.dest.name] = sym
            elif isinstance(inst, Move):
                sym = operand_sym(inst.src)
                syms[inst.dest.name] = (
                    sym if _sym_survives_wrap(sym, inst.dest.type) else None
                )
            elif isinstance(inst, BinOp):
                if inst.op.is_comparison:
                    lhs, rhs = operand_sym(inst.lhs), operand_sym(inst.rhs)
                    syms[inst.dest.name] = (
                        ("cmp", inst.op, lhs, rhs)
                        if lhs is not None and rhs is not None
                        else None
                    )
                else:
                    syms[inst.dest.name] = None
            elif isinstance(inst, UnOp):
                if inst.op is UnaryOpcode.LNOT:
                    src = operand_sym(inst.src)
                    syms[inst.dest.name] = (
                        ("lnot", src) if src is not None else None
                    )
                else:
                    syms[inst.dest.name] = None
            elif isinstance(inst, Store):
                kill_vars(inst.var.name)
            elif isinstance(inst, Call):
                kill_vars(None)  # any variable may change
                if inst.dest is not None:
                    syms[inst.dest.name] = None
        return syms

    def _edge_transfer(
        self, src: str, dst: str, state: State
    ) -> Optional[State]:
        cond = self._block_conds.get(src)
        if cond is None or cond.cond is None or cond.if_true == cond.if_false:
            return state
        if dst == cond.if_true:
            return self._refine(state, cond.cond, True)
        if dst == cond.if_false:
            return self._refine(state, cond.cond, False)
        return state

    def _sym_interval(self, state: State, sym: Sym) -> Interval:
        tag = sym[0]
        if tag == "const":
            return Interval.point(sym[1])
        if tag == "var":
            iv = state.get(sym[1])
            return iv if iv is not None else Interval.of_type(sym[2])
        return Interval(0, 1)  # cmp / lnot results

    def _refine(
        self, state: State, sym: Sym, want: bool
    ) -> Optional[State]:
        """``state`` restricted to executions where ``sym`` is truthy
        (``want``) or falsy; None when the edge is infeasible."""
        tag = sym[0]
        if tag == "const":
            return state if (sym[1] != 0) == want else None
        if tag == "lnot":
            return self._refine(state, sym[1], not want)
        if tag == "var":
            iv = self._sym_interval(state, sym)
            refined = _refine_truthiness(iv, want)
            if refined is None:
                return None
            if refined != iv:
                state = dict(state)
                self._set(state, sym[1], refined)
            return state
        if tag == "cmp":
            op: Opcode = sym[1] if want else NEGATED[sym[1]]
            lhs_sym, rhs_sym = sym[2], sym[3]
            lhs = self._sym_interval(state, lhs_sym)
            rhs = self._sym_interval(state, rhs_sym)
            if _compare_intervals(op, lhs, rhs) is False:
                return None
            new_lhs = _refine_against(lhs, op, rhs)
            new_rhs = _refine_against(rhs, MIRRORED[op], lhs)
            if new_lhs is None or new_rhs is None:
                return None
            changed = False
            for side_sym, refined, before in (
                (lhs_sym, new_lhs, lhs),
                (rhs_sym, new_rhs, rhs),
            ):
                if side_sym[0] == "var" and refined != before:
                    if not changed:
                        state = dict(state)
                        changed = True
                    self._set(state, side_sym[1], refined)
            return state
        return state

    # -- trip-count derivation ---------------------------------------------

    def _derive_trip(self, loop: Loop) -> Optional[TripBound]:
        cond = self._block_conds.get(loop.header)
        if cond is None or cond.cond is None:
            return None
        stay_on_true = cond.if_true in loop.body
        if stay_on_true == (cond.if_false in loop.body):
            return None  # no exit (or no stay) decision at the header
        sym = cond.cond
        while sym is not None and sym[0] == "lnot":
            sym = sym[1]
            stay_on_true = not stay_on_true
        if sym is None or sym[0] != "cmp":
            return None
        op: Opcode = sym[1] if stay_on_true else NEGATED[sym[1]]
        lhs, rhs = sym[2], sym[3]

        best: Optional[TripBound] = None
        for counter_side, bound_side, cont_op in (
            (lhs, rhs, op),
            (rhs, lhs, MIRRORED[op]),
        ):
            if counter_side[0] != "var":
                continue
            derived = self._try_counter(loop, cont_op, counter_side, bound_side)
            if derived is None:
                continue
            if (
                best is None
                or (derived.exact and not best.exact)
                or (derived.exact == best.exact
                    and derived.max_trips < best.max_trips)
            ):
                best = derived
        return best

    def _try_counter(
        self,
        loop: Loop,
        cont_op: Opcode,
        counter_side: Sym,
        bound_side: Sym,
    ) -> Optional[TripBound]:
        counter = self._vars.get(counter_side[1])
        if (
            counter is None
            or counter.is_array
            or counter.is_ref
            or counter.is_const
        ):
            return None
        if len(loop.latches) != 1:
            return None
        step = self._find_step(loop, counter)
        if step is None:
            return None
        step_c, load_t, binop_t = step
        if counter.is_global and self._loop_calls_write(loop, counter.name):
            return None

        # The bound operand: a literal, or a loop-invariant scalar.
        if bound_side[0] == "const":
            bound_iv: Interval = Interval.point(bound_side[1])
            bound_is_point = True
        elif bound_side[0] == "var":
            bvar = self._vars.get(bound_side[1])
            if bvar is None or bvar.is_array or bvar.is_ref:
                return None
            if not bvar.is_const:
                for label in loop.body:
                    for inst in self.func.blocks[label].instructions:
                        if isinstance(inst, Store) and inst.var.name == bvar.name:
                            return None
                if bvar.is_global and self._loop_calls_write(loop, bvar.name):
                    return None
            header_in = self.solution.block_in.get(loop.header)
            if header_in is None:
                return None  # loop unreachable
            bound_iv = self._load_interval(header_in, bvar)
            bound_is_point = bound_iv.is_point
        else:
            return None
        if bound_iv.width > _WIDTH_CAP:
            return None

        # Initial value: joined over the loop-entry edges.
        init_iv: Optional[Interval] = None
        for pred in self.cfg.preds[loop.header]:
            if pred in loop.body:
                continue
            out = self.solution.block_out.get(pred)
            if out is None:
                continue  # unreachable entry path
            refined = self._edge_transfer(pred, loop.header, out)
            if refined is None:
                continue  # statically infeasible entry edge
            piece = self._var_interval(refined, counter)
            init_iv = piece if init_iv is None else init_iv.join(piece)
        if init_iv is None or init_iv.width > _WIDTH_CAP:
            return None

        trips = _trip_formula(
            cont_op, step_c, init_iv, bound_iv, counter.type, (load_t, binop_t)
        )
        if trips is None:
            return None
        ub, exact_n = trips
        if ub > TRIP_CAP:
            return None
        header_only_exit = all(
            edge.src == loop.header for edge in loop.exit_edges(self.cfg)
        )
        exact = (
            exact_n is not None
            and init_iv.is_point
            and bound_is_point
            and header_only_exit
        )
        return TripBound(
            header=loop.header,
            max_trips=ub,
            min_trips=exact_n if exact else 0,
            exact=exact,
            counter=counter.name,
        )

    def _find_step(
        self, loop: Loop, counter: Variable
    ) -> Optional[Tuple[int, IntType, IntType]]:
        """The loop's unique ``counter = counter ± c`` update. Returns
        ``(signed step, load dest type, binop dest type)``; None unless
        the update provably executes exactly once per iteration."""
        stores: List[Tuple[str, int, Store]] = []
        for label in loop.body:
            for idx, inst in enumerate(self.func.blocks[label].instructions):
                if isinstance(inst, Store) and inst.var.name == counter.name:
                    stores.append((label, idx, inst))
        if len(stores) != 1:
            return None
        label, idx, store = stores[0]
        if store.index is not None or label == loop.header:
            return None
        if self.nest is None or self.nest.innermost.get(label) is not loop:
            return None  # inside a nested loop: runs more than once per trip
        if not self.nest.dom.dominates(label, loop.latch):
            return None  # conditional update: trajectory unknown
        if not isinstance(store.value, Register):
            return None

        insts = self.func.blocks[label].instructions
        defs: Dict[str, Tuple[int, Instruction]] = {}
        for i, inst in enumerate(insts[:idx]):
            for reg in inst.defs():
                defs[reg.name] = (i, inst)
        entry = defs.get(store.value.name)
        if entry is None or not isinstance(entry[1], BinOp):
            return None
        binop = entry[1]
        if binop.op not in (Opcode.ADD, Opcode.SUB):
            return None

        def load_of_counter(operand: Value) -> Optional[Load]:
            if not isinstance(operand, Register):
                return None
            found = defs.get(operand.name)
            if found is None or not isinstance(found[1], Load):
                return None
            load = found[1]
            if load.var.name != counter.name or load.index is not None:
                return None
            return load

        lhs_load = load_of_counter(binop.lhs)
        rhs_load = load_of_counter(binop.rhs)
        if binop.op is Opcode.ADD:
            if lhs_load is not None and isinstance(binop.rhs, Const):
                load, c = lhs_load, binop.rhs.value
            elif rhs_load is not None and isinstance(binop.lhs, Const):
                load, c = rhs_load, binop.lhs.value
            else:
                return None
        else:  # SUB: only `counter - c` is an induction step
            if lhs_load is not None and isinstance(binop.rhs, Const):
                load, c = lhs_load, -binop.rhs.value
            else:
                return None
        if c == 0:
            return None
        return c, load.dest.type, binop.dest.type

    def _loop_calls_write(self, loop: Loop, name: str) -> bool:
        """May any call inside the loop write caller-visible ``name``?"""
        for label in loop.body:
            for inst in self.func.blocks[label].instructions:
                if not isinstance(inst, Call):
                    continue
                summary = self.summaries.get(inst.callee)
                callee = self.module.functions.get(inst.callee)
                if summary is None or callee is None:
                    return True
                mapping = _ref_mapping(inst, callee)
                if any(
                    mapping.get(w, w) == name for w in summary.writes
                ):
                    return True
        return False

    # -- post-fixpoint queries ---------------------------------------------

    def reachable_blocks(self) -> List[str]:
        return [
            label
            for label in self.cfg.reverse_postorder()
            if label in self.solution.block_in
        ]

    def infeasible_edges(self) -> List[Tuple[str, str]]:
        """Branch edges that can never be taken (reachable source, but
        the refined state on the edge is empty)."""
        edges: List[Tuple[str, str]] = []
        for src in self.reachable_blocks():
            cond = self._block_conds.get(src)
            if cond is None or cond.if_true == cond.if_false:
                continue
            out = self.solution.block_out.get(src)
            if out is None:
                continue
            for dst in (cond.if_true, cond.if_false):
                if self._edge_transfer(src, dst, out) is None:
                    edges.append((src, dst))
        return edges

    def visit_reachable(
        self, visit: Callable[[str, int, Instruction, State], None]
    ) -> None:
        """Re-run the transfer over every reachable block, observing the
        state right before each instruction."""
        for label in self.reachable_blocks():
            state = self.solution.block_in[label]
            self._exec_block(
                label, state,
                visit=lambda idx, inst, st, _l=label: visit(_l, idx, inst, st),
            )

    def state_at(self, label: str, index: int) -> Optional[State]:
        """The abstract state right before ``blocks[label][index]``."""
        state = self.solution.block_in.get(label)
        if state is None:
            return None
        new = dict(state)
        for idx, inst in enumerate(self.func.blocks[label].instructions):
            if idx == index:
                return new
            self._exec_inst(inst, new)
        return new

    # -- summary construction ----------------------------------------------

    def _collect_return_interval(self) -> Optional[Interval]:
        if self.func.return_type is None:
            return None
        result: Optional[Interval] = None

        for label in self.reachable_blocks():
            block = self.func.blocks[label]
            if not block.instructions:
                continue
            term = block.instructions[-1]
            if not isinstance(term, Ret) or term.value is None:
                continue
            state = self.state_at(label, len(block.instructions) - 1)
            if state is None:
                continue
            iv = self._value(state, term.value)
            if iv is None:
                iv = Interval.of_type(self.func.return_type)
            iv = iv.wrapped(self.func.return_type)
            result = iv if result is None else result.join(iv)
        return result

    def _exit_global_state(self) -> State:
        """Join of the abstract states at every reachable return."""
        result: Optional[State] = None
        for label in self.reachable_blocks():
            block = self.func.blocks[label]
            if not block.instructions:
                continue
            if not isinstance(block.instructions[-1], Ret):
                continue
            state = self.state_at(label, len(block.instructions) - 1)
            if state is None:
                continue
            result = state if result is None else self._join(result, state)
        return result or {}

    def _build_summary(self) -> FunctionSummary:
        ref_formals = {
            var.name
            for var in self.func.variables.values()
            if var.is_ref
        }
        writes: Set[str] = set()
        for block in self.func.blocks.values():
            for inst in block:
                if isinstance(inst, Store):
                    writes.add(inst.var.name)
                elif isinstance(inst, Call):
                    summary = self.summaries.get(inst.callee)
                    callee = self.module.functions.get(inst.callee)
                    if summary is None or callee is None:
                        writes.update(self.module.globals)
                        continue
                    mapping = _ref_mapping(inst, callee)
                    writes.update(mapping.get(w, w) for w in summary.writes)
        visible = frozenset(
            w for w in writes if w in self.module.globals or w in ref_formals
        )
        exit_state = self._exit_global_state()
        global_exit = {
            name: exit_state[name]
            for name in visible
            if name in self.module.globals and name in exit_state
        }
        return FunctionSummary(
            returns=self.return_interval,
            writes=visible,
            global_exit=global_exit,
        )


def _refine_truthiness(iv: Interval, want: bool) -> Optional[Interval]:
    """Restrict ``iv`` to nonzero (``want``) or zero values."""
    if want:
        if iv.is_point and iv.lo == 0:
            return None
        lo = 1 if iv.lo == 0 else iv.lo
        hi = -1 if iv.hi == 0 else iv.hi
        if lo > hi:  # only possible for [0, 0], handled above
            return None
        return Interval(lo, hi)
    return iv.meet(Interval.point(0))


def _refine_against(
    iv: Interval, op: Opcode, other: Interval
) -> Optional[Interval]:
    """``iv`` restricted to values for which ``value <op> other`` can
    hold for some value of ``other``; None when no value qualifies."""
    lo, hi = iv.lo, iv.hi
    if op is Opcode.LT:
        hi = min(hi, other.hi - 1)
    elif op is Opcode.LE:
        hi = min(hi, other.hi)
    elif op is Opcode.GT:
        lo = max(lo, other.lo + 1)
    elif op is Opcode.GE:
        lo = max(lo, other.lo)
    elif op is Opcode.EQ:
        lo, hi = max(lo, other.lo), min(hi, other.hi)
    elif op is Opcode.NE:
        if other.is_point:
            if lo == other.lo:
                lo += 1
            if hi == other.lo:
                hi -= 1
    if lo > hi:
        return None
    return Interval(lo, hi)


def _trip_formula(
    op: Opcode,
    step: int,
    init: Interval,
    bound: Interval,
    counter_type: IntType,
    chain_types: Tuple[IntType, IntType],
) -> Optional[Tuple[int, Optional[int]]]:
    """``(upper bound, exact count or None)`` for a loop that stays while
    ``counter <op> bound`` holds and steps by ``step`` each iteration.

    Sound only when the whole counter trajectory is wrap-free: the
    trajectory extremes must be representable in the counter's type *and*
    in every register type on the load -> add -> store chain, so that the
    abstract ±step per iteration is the concrete one.
    """
    increasing = step > 0
    s = abs(step)

    if op is Opcode.LT and increasing:
        last_in = bound.hi - 1  # largest value that still iterates
        ub = max(0, _ceildiv(bound.hi - init.lo, s))
        exact = max(0, _ceildiv(bound.lo - init.hi, s))
    elif op is Opcode.LE and increasing:
        last_in = bound.hi
        ub = max(0, (bound.hi - init.lo) // s + 1)
        exact = max(0, (bound.lo - init.hi) // s + 1)
    elif op is Opcode.GT and not increasing:
        last_in = bound.lo + 1
        ub = max(0, _ceildiv(init.hi - bound.lo, s))
        exact = max(0, _ceildiv(init.lo - bound.hi, s))
    elif op is Opcode.GE and not increasing:
        last_in = bound.lo
        ub = max(0, (init.hi - bound.lo) // s + 1)
        exact = max(0, (init.lo - bound.hi) // s + 1)
    elif op is Opcode.NE and s == 1:
        # Equality exit: the counter must approach the bound from the
        # correct side and the bound must be attainable in-type.
        if not (
            counter_type.contains(bound.lo)
            and counter_type.contains(bound.hi)
        ):
            return None
        if increasing:
            if init.hi > bound.lo:
                return None
            last_in, ub = bound.hi - 1, max(0, bound.hi - init.lo)
            exact = max(0, bound.lo - init.hi)
        else:
            if init.lo < bound.hi:
                return None
            last_in, ub = bound.lo + 1, max(0, init.hi - bound.lo)
            exact = max(0, init.lo - bound.hi)
    else:
        return None  # step moves away from the exit, or an EQ guard

    # Wrap-freedom: every value the counter visits — initial values plus
    # one step past the last in-loop value — must stay in range.
    if increasing:
        traj_lo, traj_hi = init.lo, max(init.hi, last_in + s)
    else:
        traj_lo, traj_hi = min(init.lo, last_in - s), init.hi
    for t in (counter_type,) + chain_types:
        if not (t.contains(traj_lo) and t.contains(traj_hi)):
            return None
    return ub, exact


# ---------------------------------------------------------------------------
# Module driver
# ---------------------------------------------------------------------------


class ModuleRanges:
    """Callee-first range analysis of every function in a module."""

    def __init__(self, module: Module):
        self.module = module
        self.functions: Dict[str, FunctionRanges] = {}
        summaries: Dict[str, FunctionSummary] = {}
        for name in CallGraph(module).reverse_topological():
            ranges = FunctionRanges(module, module.functions[name], summaries)
            summaries[name] = ranges.summary
            self.functions[name] = ranges

    def trip_bound(self, function: str, header: str) -> Optional[TripBound]:
        ranges = self.functions.get(function)
        return ranges.trip_bounds.get(header) if ranges else None


def infer_module_bounds(
    module: Module, ranges: Optional[ModuleRanges] = None
) -> Dict[Tuple[str, str], int]:
    """Proven iteration bounds: ``(function, header) -> max trips``.

    Covers every derivable loop, annotated or not; bounds are clamped to
    at least 1 so they compose with ``numit``/window arithmetic that
    treats ``maxiter`` as a positive count.
    """
    ranges = ranges or ModuleRanges(module)
    return {
        (name, bound.header): max(1, bound.max_trips)
        for name, fr in ranges.functions.items()
        for bound in fr.trip_bounds.values()
    }


def apply_inferred_bounds(
    module: Module, ranges: Optional[ModuleRanges] = None
) -> Dict[Tuple[str, str], int]:
    """Fill missing ``Function.loop_maxiter`` entries with proven bounds.

    Existing annotations are left untouched (they are *verified*
    separately by the BOUND001 rule, not silently overwritten), so
    placement on fully annotated modules is unchanged. Returns the
    entries that were added.
    """
    applied: Dict[Tuple[str, str], int] = {}
    for (name, header), trips in infer_module_bounds(module, ranges).items():
        func = module.functions[name]
        if header not in func.loop_maxiter:
            func.loop_maxiter[header] = trips
            applied[(name, header)] = trips
    return applied


def _sym_survives_wrap(sym: Optional[Sym], dest: IntType) -> bool:
    """Is a Move of this symbol to ``dest`` value-preserving?"""
    if sym is None:
        return False
    tag = sym[0]
    if tag == "const":
        return dest.contains(sym[1])
    if tag == "var":
        return _value_preserving(sym[2], dest)
    return True  # cmp / lnot produce 0/1, which every type holds
