"""Table II — execution time and minimal number of power failures (§IV-C).

"We measured the execution time (in clock cycles, with all data in VM) of
the benchmarks"; the minimal number of power failures for a TBPF is how
many periodic outages an execution of that length must survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import EvaluationContext, TBPF_VALUES

#: Paper values for side-by-side comparison (clock cycles).
PAPER_CYCLES = {
    "aes": 1_079_363,
    "basicmath": 169_599,
    "bitcount": 819_411,
    "crc": 41_133,
    "dijkstra": 1_381_746,
    "fft": 377_578,
    "randmath": 15_062,
    "rc4": 437_335,
}


@dataclass
class Table2Row:
    benchmark: str
    cycles: int
    paper_cycles: int
    failures: Dict[int, int]  # tbpf -> minimal number of power failures


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def render(self) -> str:
        lines = [
            "Table II: execution time and minimal number of power failures",
            f"{'benchmark':<12}{'cycles':>10}{'paper':>10}"
            + "".join(f"{f'TBPF={t}':>12}" for t in TBPF_VALUES),
        ]
        for row in self.rows:
            lines.append(
                f"{row.benchmark:<12}{row.cycles:>10}{row.paper_cycles:>10}"
                + "".join(
                    f"{row.failures[t]:>12}" for t in TBPF_VALUES
                )
            )
        return "\n".join(lines)


def run(ctx: Optional[EvaluationContext] = None) -> Table2Result:
    ctx = ctx or EvaluationContext()
    rows: List[Table2Row] = []
    for name in ctx.benchmark_names:
        ref = ctx.vm_reference(name)
        cycles = ref.active_cycles
        failures = {tbpf: cycles // tbpf for tbpf in TBPF_VALUES}
        rows.append(
            Table2Row(
                benchmark=name,
                cycles=cycles,
                paper_cycles=PAPER_CYCLES.get(name, 0),
                failures=failures,
            )
        )
    return Table2Result(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
