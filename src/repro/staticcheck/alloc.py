"""VM-residency consistency: do accesses match the checkpointed allocation?

At run time a variable is VM-resident exactly when the last executed
checkpoint's ``alloc_after`` mapped it to VM (the restore clears VM and
reloads that set; a roll-back-mode migration adjusts residency to the
same set). A ``load.vm``/``store.vm`` therefore faults — even under
continuous power — whenever some path reaches it without a checkpoint
establishing residency for that variable. This is the failure mode of a
broken transformation (e.g. a stripped migration checkpoint), and the
class of sabotage the dynamic testkit reports as ``crash``.

The analysis is a forward must-dataflow with a three-valued per-variable
domain: *resident* (``yes``), *non-resident* (``no``), or *same as on
function entry* (``same``, the default) — the last makes the transfer
functions of callees composable without knowing the caller's state.

- A taken checkpoint sets residency to exactly its VM allocation set.
- A conditional or skippable checkpoint may or may not fire: each
  variable keeps the weaker of its current state and the post-fire one.
- At a call, the callee's summary effect is composed and its ``requires``
  set (VM accesses that need entry residency) is checked.

Function-level checkpoint metadata checks (unknown names, restore/alloc
inconsistencies, VM capacity) live here too: residency is their topic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG
from repro.analysis.dataflow import solve_forward
from repro.ir.function import Function
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.ir.values import MemorySpace, Variable
from repro.staticcheck.common import (
    CHECKPOINT_KINDS,
    FindingSink,
    checkpoint_clears,
    resolve_space,
    variable_map,
    vm_set,
)
from repro.staticcheck.findings import Finding, Location
from repro.staticcheck.rules import RULES

#: (definitely VM-resident, definitely not resident); disjoint sets —
#: everything else is in its function-entry state.
_State = Tuple[FrozenSet[str], FrozenSet[str]]


@dataclass(frozen=True)
class ResidencySummary:
    """Caller-visible residency behaviour of one function."""

    #: Variables the function VM-accesses while they are still in their
    #: entry state — the caller must have them resident at the call.
    requires: FrozenSet[str]
    #: Effect on residency: (made resident, made non-resident); variables
    #: in neither set keep the residency they had at the call.
    effect: _State


def _join(a: _State, b: _State) -> _State:
    # Per-variable minimum over no < same < yes: resident only when both
    # paths agree, non-resident when either path says so.
    yes = (a[0] & b[0]) - (a[1] | b[1])
    no = a[1] | b[1]
    return (yes, no)


def _compose(state: _State, effect: _State) -> _State:
    yes = effect[0] | (state[0] - effect[1])
    no = effect[1] | (state[1] - effect[0])
    return (yes, no)


class _FunctionResidency:
    def __init__(
        self,
        module: Module,
        func: Function,
        summaries: Dict[str, ResidencySummary],
        variables: Dict[str, Variable],
        universe: FrozenSet[str],
        policy_may_skip: bool,
        default_space: MemorySpace,
        is_entry: bool,
    ):
        self.module = module
        self.func = func
        self.summaries = summaries
        self.variables = variables
        self.universe = universe
        self.policy_may_skip = policy_may_skip
        self.default_space = default_space
        self.is_entry = is_entry
        self.cfg = CFG(func)

    def run(self, sink: Optional[FindingSink]) -> ResidencySummary:
        # At boot VM is empty, so the entry function starts all-no; other
        # functions start all-same and report entry needs via `requires`.
        entry: _State = (
            (frozenset(), self.universe) if self.is_entry else (frozenset(), frozenset())
        )
        solution = solve_forward(self.cfg, entry, self._transfer, _join)

        requires: Set[str] = set()
        for label, state in solution.block_in.items():
            self._walk(label, state, sink, requires)

        exit_state: Optional[_State] = None
        for label in self.cfg.exit_labels():
            out = solution.block_out.get(label)
            if out is None:
                continue
            exit_state = out if exit_state is None else _join(exit_state, out)
        if exit_state is None:
            exit_state = (frozenset(), frozenset())
        return ResidencySummary(
            requires=frozenset(requires), effect=exit_state
        )

    # -- transfer ----------------------------------------------------------

    def _transfer(self, label: str, state: _State) -> _State:
        return self._walk(label, state, sink=None, requires=None)

    def _walk(
        self,
        label: str,
        state: _State,
        sink: Optional[FindingSink],
        requires: Optional[Set[str]],
    ) -> _State:
        yes, no = state
        for i, inst in enumerate(self.func.blocks[label].instructions):
            if isinstance(inst, (Load, Store)):
                self._check_access(inst, label, i, yes, no, sink, requires)
            elif isinstance(inst, CHECKPOINT_KINDS):
                if sink is not None:
                    self._check_save_residency(inst, label, i, no, sink)
                target = vm_set(inst.alloc_after)
                if checkpoint_clears(inst, self.policy_may_skip):
                    yes, no = target, self.universe - target
                else:
                    # May or may not fire: keep the weaker state.
                    yes = yes & target
                    no = no | (self.universe - target)
            elif isinstance(inst, Call):
                summary = self.summaries[inst.callee]
                if sink is not None or requires is not None:
                    for name in sorted(summary.requires):
                        if name in no and sink is not None:
                            self._report_no_residency(
                                sink, label, i, name, via=inst.callee
                            )
                        elif (
                            name not in no
                            and name not in yes
                            and requires is not None
                        ):
                            requires.add(name)
                yes, no = _compose((yes, no), summary.effect)
        return (yes, no)

    def _check_access(
        self,
        inst,
        label: str,
        index: int,
        yes: FrozenSet[str],
        no: FrozenSet[str],
        sink: Optional[FindingSink],
        requires: Optional[Set[str]],
    ) -> None:
        name = inst.var.name
        if inst.var.is_ref:
            # By-reference formals alias caller storage and are pinned to
            # NVM by every placement pass; residency is not tracked.
            return
        space = resolve_space(inst.space, self.default_space)
        if space is MemorySpace.VM:
            if name in no:
                if sink is not None:
                    self._report_no_residency(sink, label, index, name, via=None)
            elif name not in yes and requires is not None:
                requires.add(name)
        elif space is MemorySpace.NVM and name in yes and sink is not None:
            rule = RULES["ALLOC002"]
            sink.add(
                Finding(
                    rule_id=rule.rule_id,
                    severity=rule.default_severity,
                    location=Location(self.func.name, label, index),
                    message=(
                        f"NVM access to @{name} while it is VM-resident; "
                        f"the NVM home is stale until the next checkpoint "
                        f"save flushes it"
                    ),
                    details={"variable": name},
                )
            )

    def _check_save_residency(
        self, inst, label: str, index: int, no: FrozenSet[str], sink: FindingSink
    ) -> None:
        stale = sorted(set(inst.save_vars) & no)
        for name in stale:
            rule = RULES["CKPT002"]
            sink.add(
                Finding(
                    rule_id=rule.rule_id,
                    severity=rule.default_severity,
                    location=Location(self.func.name, label, index),
                    message=(
                        f"checkpoint #{inst.ckpt_id} saves @{name}, which "
                        f"is not VM-resident on some path to this point"
                    ),
                    details={"variable": name, "ckpt_id": inst.ckpt_id},
                )
            )

    def _report_no_residency(
        self,
        sink: FindingSink,
        label: str,
        index: int,
        name: str,
        via: Optional[str],
    ) -> None:
        rule = RULES["ALLOC001"]
        accessor = f"call to @{via} accesses" if via else "access to"
        sink.add(
            Finding(
                rule_id=rule.rule_id,
                severity=rule.default_severity,
                location=Location(self.func.name, label, index),
                message=(
                    f"{accessor} @{name} in VM, but no checkpoint on some "
                    f"path here establishes VM residency for it (the "
                    f"access faults even under continuous power)"
                ),
                details={"variable": name, "via": via},
            )
        )


def check_checkpoint_metadata(
    module: Module,
    sink: FindingSink,
    vm_size: Optional[int] = None,
) -> None:
    """Per-checkpoint structural checks: unknown names (CKPT001),
    restore/alloc inconsistency (CKPT002), VM capacity (ALLOC003)."""
    variables = variable_map(module)
    for func in module.functions.values():
        for label, block in func.blocks.items():
            for i, inst in enumerate(block.instructions):
                if not isinstance(inst, CHECKPOINT_KINDS):
                    continue
                location = Location(func.name, label, i)
                named = (
                    list(inst.save_vars)
                    + list(inst.restore_vars)
                    + list(inst.alloc_after)
                )
                for name in sorted(set(named)):
                    if name not in variables:
                        rule = RULES["CKPT001"]
                        sink.add(
                            Finding(
                                rule_id=rule.rule_id,
                                severity=rule.default_severity,
                                location=location,
                                message=(
                                    f"checkpoint #{inst.ckpt_id} references "
                                    f"unknown variable @{name}"
                                ),
                                details={"variable": name, "ckpt_id": inst.ckpt_id},
                            )
                        )
                vm_names = vm_set(inst.alloc_after)
                for name in sorted(set(inst.restore_vars) - vm_names):
                    rule = RULES["CKPT002"]
                    sink.add(
                        Finding(
                            rule_id=rule.rule_id,
                            severity=rule.default_severity,
                            location=location,
                            message=(
                                f"checkpoint #{inst.ckpt_id} restores "
                                f"@{name}, which its alloc_after does not "
                                f"map to VM"
                            ),
                            details={"variable": name, "ckpt_id": inst.ckpt_id},
                        )
                    )
                if vm_size is not None:
                    used = sum(
                        variables[name].size_bytes
                        for name in vm_names
                        if name in variables
                    )
                    if used > vm_size:
                        rule = RULES["ALLOC003"]
                        sink.add(
                            Finding(
                                rule_id=rule.rule_id,
                                severity=rule.default_severity,
                                location=location,
                                message=(
                                    f"checkpoint #{inst.ckpt_id} maps "
                                    f"{used} bytes into VM, exceeding the "
                                    f"platform's {vm_size}-byte capacity"
                                ),
                                details={
                                    "ckpt_id": inst.ckpt_id,
                                    "vm_bytes": used,
                                    "vm_size": vm_size,
                                },
                            )
                        )


def analyze_residency(
    module: Module,
    sink: Optional[FindingSink] = None,
    policy_may_skip: bool = False,
    default_space: MemorySpace = MemorySpace.NVM,
) -> Dict[str, ResidencySummary]:
    """Run the residency analysis module-wide, callee-first."""
    variables = variable_map(module)
    universe = frozenset(
        name for name, var in variables.items() if not var.is_ref
    )
    summaries: Dict[str, ResidencySummary] = {}
    for name in CallGraph(module).reverse_topological():
        func = module.function(name)
        summaries[name] = _FunctionResidency(
            module,
            func,
            summaries,
            variables,
            universe,
            policy_may_skip,
            default_space,
            is_entry=(name == module.entry),
        ).run(sink)
    return summaries
