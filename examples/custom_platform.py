"""Targeting a custom platform: how the VM/NVM gap drives allocation.

SCHEMATIC's inputs are the platform parameters (paper §II-B): the energy
model, the VM size and the capacitor budget. This example defines two
hypothetical platforms — one whose NVM is barely more expensive than VM
(fast MRAM-class) and one with a wide gap (flash-class) — and shows how the
same program gets a different memory allocation on each.

Run: ``python examples/custom_platform.py``
"""

import random
from dataclasses import replace

from repro.core import Schematic
from repro.core.placement import SchematicConfig
from repro.emulator import PowerManager, run_intermittent
from repro.emulator.runtime import CheckpointPolicy
from repro.energy import EnergyModel, Platform
from repro.frontend import compile_source
from repro.ir import Load, MemorySpace, Store

SOURCE = """
u32 out;
u32 window[64];
u16 weights[64];

void main() {
    u32 acc = 0;
    for (i32 round = 0; round < 4; round++) {
        for (i32 i = 0; i < 64; i++) {
            acc += window[i] * (u32) weights[i];
            window[i] = acc & 0xffff;
        }
    }
    out = acc;
}
"""


def vm_variables(module):
    names = set()
    for func in module.functions.values():
        for block in func.blocks.values():
            for inst in block:
                if isinstance(inst, (Load, Store)):
                    if inst.space is MemorySpace.VM:
                        names.add(inst.var.name)
    return sorted(names)


def main() -> None:
    base_model = EnergyModel()
    platforms = {
        "mram-like (NVM 1.1x VM)": Platform(
            model=replace(base_model, nvm_access_ratio=1.1, nvm_access_cycles=0),
            vm_size=512,
            eb=8_000.0,
        ),
        "fram-like (NVM 2.47x VM)": Platform(
            model=base_model, vm_size=512, eb=8_000.0
        ),
        "flash-like (NVM 8x VM)": Platform(
            model=replace(base_model, nvm_access_ratio=8.0, nvm_access_cycles=3),
            vm_size=512,
            eb=8_000.0,
        ),
    }

    module = compile_source(SOURCE, "custom")

    def gen(run: int):
        rng = random.Random(run)
        return {
            "window": [rng.randrange(0, 1 << 16) for _ in range(64)],
            "weights": [rng.randrange(0, 256) for _ in range(64)],
        }

    inputs = gen(999)
    for name, platform in platforms.items():
        result = Schematic(platform, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=gen
        )
        report = run_intermittent(
            result.module,
            platform.model,
            CheckpointPolicy.wait_mode("schematic"),
            PowerManager.energy_budget(platform.eb),
            vm_size=platform.vm_size,
            inputs=inputs,
        )
        print(f"== {name} ==")
        print(f"  VM-allocated variables: {vm_variables(result.module) or '(none)'}")
        print(f"  checkpoints inserted:   {result.checkpoints_inserted}")
        print(f"  total energy:           {report.energy.total / 1000:.1f} uJ "
              f"(completed={report.completed})")
        print()

    print(
        "The wider the VM/NVM gap, the more aggressively SCHEMATIC caches\n"
        "data in VM — on the MRAM-like platform caching barely pays, while\n"
        "on the flash-like one even the 256 B window array earns its keep."
    )


if __name__ == "__main__":
    main()
