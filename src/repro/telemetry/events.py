"""The trace event schema and its validator.

A trace is a JSON-lines file: one header line, then one record per
span/event, then one ``metrics`` line. Every record is a flat JSON
object with a ``kind`` discriminator:

``header``
    ``{"kind": "header", "schema": 1, "meta": {...}}`` — always first.
``span``
    ``{"kind": "span", "track": str, "name": str, "ts": int,
    "dur": int, "attrs": {...}?}`` — a timed phase. ``ts``/``dur`` are
    microseconds of real time on the ``compiler`` track.
``event``
    ``{"kind": "event", "track": str, "name": str, "ts": int,
    "attrs": {...}?}`` — instantaneous. On the ``runtime`` track ``ts``
    is the PowerManager timeline in *emulated cycles* and ``attrs.run``
    numbers the emulation run (each run's timeline restarts at zero).
``metrics``
    ``{"kind": "metrics", "metrics": [...]}`` — the final registry
    snapshot (counters/gauges/histograms as rendered by
    :meth:`~repro.telemetry.core.Telemetry.metrics_snapshot`).

Well-known event names (all optional in a trace):

=====================  =====================================================
name                   attrs
=====================  =====================================================
``run-begin``          ``run``, ``technique``, ``power_mode``
``run-end``            ``run``, ``completed``, ``failures``, ``saves``,
                       ``restores``, ``skips``
``ckpt-save``          ``run``, ``ckpt``, ``from_ckpt`` (None = boot),
                       ``window_nj`` (committed energy of the segment the
                       save closes), ``save_nj``, ``payload_bytes``
``ckpt-restore``       ``run``, ``ckpt``, ``restore_nj``, ``reason``
                       (``wake`` | ``rollback``)
``ckpt-skip``          ``run``, ``ckpt`` (MEMENTOS voltage check passed)
``migrate``            ``run``, ``ckpt``, ``payload_bytes`` (roll-back
                       mode allocation change)
``power-failure``      ``run``, ``attempt``
``reboot``             ``run`` (restart from boot, no snapshot yet)
``segment-bound``      ``ckpt``, ``bound_nj`` (static certifier's proven
                       worst case for windows closing at that ckpt),
                       ``eb_nj`` — on the ``static`` track
=====================  =====================================================

The validator is deliberately structural (types and required fields,
not names): traces may carry new event names without a schema bump.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.telemetry.core import SCHEMA_VERSION

#: Record kinds a trace line may carry.
KINDS = ("header", "span", "event", "metrics")


class TraceSchemaError(ValueError):
    """A trace line violates the schema."""


def header_record(meta: Dict[str, Any]) -> Dict[str, Any]:
    return {"kind": "header", "schema": SCHEMA_VERSION, "meta": dict(meta)}


def metrics_record(metrics: List[Dict[str, Any]]) -> Dict[str, Any]:
    return {"kind": "metrics", "metrics": list(metrics)}


def _require(cond: bool, lineno: int, message: str) -> None:
    if not cond:
        raise TraceSchemaError(f"trace line {lineno}: {message}")


def validate_record(record: Dict[str, Any], lineno: int = 0) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` is well-formed."""
    _require(isinstance(record, dict), lineno, "record is not an object")
    kind = record.get("kind")
    _require(kind in KINDS, lineno, f"unknown kind {kind!r}")
    if kind == "header":
        _require(
            isinstance(record.get("schema"), int), lineno,
            "header without integer schema",
        )
        _require(
            record["schema"] <= SCHEMA_VERSION, lineno,
            f"trace schema {record['schema']} is newer than "
            f"supported {SCHEMA_VERSION}",
        )
        _require(
            isinstance(record.get("meta"), dict), lineno,
            "header without meta object",
        )
        return
    if kind == "metrics":
        _require(
            isinstance(record.get("metrics"), list), lineno,
            "metrics record without metrics list",
        )
        return
    # span | event
    _require(
        isinstance(record.get("track"), str) and record["track"], lineno,
        "span/event without track",
    )
    _require(
        isinstance(record.get("name"), str) and record["name"], lineno,
        "span/event without name",
    )
    _require(
        isinstance(record.get("ts"), int) and not isinstance(
            record["ts"], bool
        ),
        lineno, "span/event without integer ts",
    )
    if kind == "span":
        _require(
            isinstance(record.get("dur"), int) and record["dur"] >= 0,
            lineno, "span without non-negative integer dur",
        )
    attrs = record.get("attrs")
    if attrs is not None:
        _require(isinstance(attrs, dict), lineno, "attrs is not an object")


def validate_trace(records: List[Dict[str, Any]]) -> None:
    """Validate a full record list: header first, every line well-formed."""
    if not records:
        raise TraceSchemaError("empty trace")
    if records[0].get("kind") != "header":
        raise TraceSchemaError("trace does not start with a header record")
    for lineno, record in enumerate(records, start=1):
        validate_record(record, lineno)
