"""End-to-end SCHEMATIC tests: compile many programs across budgets and
verify correctness, forward progress and the paper's qualitative claims."""

import pytest

from repro.core import Schematic, SchematicResult, verify_forward_progress
from repro.core.placement import SchematicConfig
from repro.emulator import PowerManager, run_continuous, run_intermittent
from repro.energy import msp430fr5969_model
from repro.frontend import compile_source
from repro.ir import Checkpoint, CondCheckpoint, Load, MemorySpace, Store
from tests.helpers import (
    BRANCHY_SRC,
    CALLS_SRC,
    SUM_LOOP_SRC,
    branchy_inputs,
    calls_inputs,
    compile_branchy,
    compile_calls,
    compile_sum_loop,
    platform,
    sum_loop_inputs,
)

MODEL = msp430fr5969_model()


def gen_for(inputs_fn):
    def gen(run):
        return inputs_fn(seed=run + 10)

    return gen


def compile_and_verify(module, reference, inputs, input_gen, eb, vm_size=2048):
    plat = platform(eb=eb, vm_size=vm_size)
    result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
        module, input_generator=input_gen
    )
    verdict = verify_forward_progress(
        result.module, reference, plat.model, eb, vm_size, inputs=inputs
    )
    assert verdict.completed, verdict.failure_reason
    assert verdict.outputs_match
    assert verdict.power_failures == 0
    return result


class TestEndToEnd:
    @pytest.mark.parametrize("eb", [600.0, 1500.0, 10_000.0, 200_000.0])
    def test_sum_loop_across_budgets(self, eb):
        compile_and_verify(
            compile_sum_loop(),
            compile_sum_loop(),
            sum_loop_inputs(),
            gen_for(sum_loop_inputs),
            eb,
        )

    @pytest.mark.parametrize("eb", [1200.0, 4000.0, 50_000.0])
    def test_calls_across_budgets(self, eb):
        compile_and_verify(
            compile_calls(),
            compile_calls(),
            calls_inputs(),
            gen_for(calls_inputs),
            eb,
        )

    @pytest.mark.parametrize("eb", [800.0, 5000.0])
    def test_branchy_across_budgets(self, eb):
        compile_and_verify(
            compile_branchy(),
            compile_branchy(),
            branchy_inputs(),
            gen_for(branchy_inputs),
            eb,
        )

    def test_original_module_unchanged(self):
        module = compile_sum_loop()
        before = module.instruction_count()
        Schematic(platform(eb=1000.0), SchematicConfig(profile_runs=1)).compile(
            module, input_generator=gen_for(sum_loop_inputs)
        )
        assert module.instruction_count() == before
        for func in module.functions.values():
            for block in func.blocks.values():
                for inst in block:
                    if isinstance(inst, (Load, Store)):
                        assert inst.space is MemorySpace.AUTO


class TestTransformedShape:
    def _compile(self, eb=1500.0) -> SchematicResult:
        return Schematic(
            platform(eb=eb), SchematicConfig(profile_runs=2)
        ).compile(compile_sum_loop(), input_generator=gen_for(sum_loop_inputs))

    def test_no_auto_spaces_survive(self):
        result = self._compile()
        for func in result.module.functions.values():
            for block in func.blocks.values():
                for inst in block:
                    if isinstance(inst, (Load, Store)):
                        assert inst.space is not MemorySpace.AUTO

    def test_entry_checkpoint_present(self):
        result = self._compile()
        entry = result.module.entry_function.entry
        assert isinstance(entry.instructions[0], Checkpoint)

    def test_exit_checkpoint_before_return(self):
        result = self._compile()
        main = result.module.entry_function
        for block in main.exit_blocks():
            assert any(
                isinstance(i, (Checkpoint, CondCheckpoint))
                for i in block.instructions
            )

    def test_checkpoint_ids_unique_per_function(self):
        result = self._compile()
        for func in result.module.functions.values():
            ids = [
                inst.ckpt_id
                for block in func.blocks.values()
                for inst in block
                if isinstance(inst, (Checkpoint, CondCheckpoint))
            ]
            assert len(ids) == len(set(ids))

    def test_hot_scalars_in_vm(self):
        result = self._compile()
        spaces = {
            (inst.var.name, inst.space)
            for func in result.module.functions.values()
            for block in func.blocks.values()
            for inst in block
            if isinstance(inst, (Load, Store))
        }
        vm_vars = {name for name, space in spaces if space is MemorySpace.VM}
        assert "main.acc" in vm_vars
        assert "main.i" in vm_vars

    def test_conditional_checkpoint_in_tight_budget(self):
        # With a small budget the 16-iteration loop cannot run entirely:
        # a conditional checkpoint must guard the back edge.
        result = Schematic(
            platform(eb=250.0), SchematicConfig(profile_runs=1)
        ).compile(compile_sum_loop(), input_generator=gen_for(sum_loop_inputs))
        ckpts = [
            inst
            for func in result.module.functions.values()
            for block in func.blocks.values()
            for inst in block
            if isinstance(inst, (Checkpoint, CondCheckpoint))
        ]
        assert len(ckpts) >= 3  # entry + exit + loop guard
        assert any(isinstance(c, CondCheckpoint) for c in ckpts)

    def test_infeasible_budget_reported(self):
        from repro.errors import InfeasibleBudgetError

        with pytest.raises(InfeasibleBudgetError):
            Schematic(
                platform(eb=120.0), SchematicConfig(profile_runs=1)
            ).compile(
                compile_sum_loop(), input_generator=gen_for(sum_loop_inputs)
            )

    def test_huge_budget_minimal_checkpoints(self):
        result = self._compile(eb=1_000_000.0)
        # Entry + exit only: everything fits in one charge.
        assert result.checkpoints_inserted == 2


class TestVMCapacityAdaptation:
    def test_respects_tiny_vm(self):
        module = compile_sum_loop()
        plat = platform(eb=2000.0, vm_size=4)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=gen_for(sum_loop_inputs)
        )
        report = run_intermittent(
            result.module,
            MODEL,
            __import__("repro.emulator.runtime", fromlist=["CheckpointPolicy"])
            .CheckpointPolicy.wait_mode("schematic"),
            PowerManager.energy_budget(plat.eb),
            vm_size=plat.vm_size,
            inputs=sum_loop_inputs(),
        )
        assert report.completed
        assert report.peak_vm_bytes <= 4

    def test_all_nvm_config_uses_no_vm(self):
        module = compile_sum_loop()
        result = Schematic(
            platform(eb=2000.0),
            SchematicConfig(profile_runs=1, all_nvm=True),
        ).compile(module, input_generator=gen_for(sum_loop_inputs))
        for func in result.module.functions.values():
            for block in func.blocks.values():
                for inst in block:
                    if isinstance(inst, (Load, Store)):
                        assert inst.space is MemorySpace.NVM

    def test_vm_version_cheaper_than_allnvm(self):
        module = compile_sum_loop()
        inputs = sum_loop_inputs()
        plat = platform(eb=2000.0)
        policy_mod = __import__(
            "repro.emulator.runtime", fromlist=["CheckpointPolicy"]
        )
        energies = {}
        for all_nvm in (False, True):
            result = Schematic(
                plat, SchematicConfig(profile_runs=1, all_nvm=all_nvm)
            ).compile(module, input_generator=gen_for(sum_loop_inputs))
            report = run_intermittent(
                result.module,
                MODEL,
                policy_mod.CheckpointPolicy.wait_mode("s"),
                PowerManager.energy_budget(plat.eb),
                vm_size=plat.vm_size,
                inputs=inputs,
            )
            energies[all_nvm] = report.energy.total
        assert energies[False] < energies[True]


class TestPointerRule:
    def test_ref_accessed_arrays_stay_nvm(self):
        src = """
        u32 out; i32 data[32];
        void touch(i32 buf[]) {
            for (i32 i = 0; i < 32; i++) { buf[i] += 1; }
        }
        void main() {
            touch(data);
            u32 acc = 0;
            for (i32 i = 0; i < 32; i++) { acc += (u32) data[i]; }
            out = acc;
        }
        """
        module = compile_source(src)

        def gen(run):
            import random

            rng = random.Random(run)
            return {"data": [rng.randrange(0, 9) for _ in range(32)]}

        result = Schematic(
            platform(eb=4000.0), SchematicConfig(profile_runs=1)
        ).compile(module, input_generator=gen)
        for func in result.module.functions.values():
            for block in func.blocks.values():
                for inst in block:
                    if isinstance(inst, (Load, Store)) and inst.var.name in (
                        "data",
                        "touch.buf",
                    ):
                        assert inst.space is MemorySpace.NVM


class TestDeterminism:
    def test_same_inputs_same_placement(self):
        module = compile_sum_loop()
        results = [
            Schematic(
                platform(eb=1500.0), SchematicConfig(profile_runs=2)
            ).compile(module, input_generator=gen_for(sum_loop_inputs))
            for _ in range(2)
        ]
        from repro.ir import print_module

        assert print_module(results[0].module) == print_module(results[1].module)
