"""dijkstra — single-source shortest paths on a dense adjacency matrix
(MiBench2 ``dijkstra``). V = 86 nodes give the ~30 KB matrix the paper
reports ("dijkstra ... needs 30 KB of VM", §IV-B), far beyond the 2 KB VM.
Runs from several sources and accumulates the distance sums.
"""

from __future__ import annotations

from repro.programs.base import Benchmark

V = 86
SOURCES = 2
INFINITY = 0x3FFFFFFF

SOURCE = f"""
i32 adjmat[{V * V}];
u32 dist[{V}];
u8 visited[{V}];
u32 dist_total;

void run_dijkstra(i32 source) {{
    for (i32 i = 0; i < {V}; i++) {{
        dist[i] = {INFINITY};
        visited[i] = 0;
    }}
    dist[source] = 0;
    for (i32 iter = 0; iter < {V}; iter++) {{
        u32 best = {INFINITY};
        i32 best_node = -1;
        for (i32 i = 0; i < {V}; i++) {{
            if (visited[i] == 0 && dist[i] < best) {{
                best = dist[i];
                best_node = i;
            }}
        }}
        if (best_node < 0) {{
            break;
        }}
        visited[best_node] = 1;
        i32 row = best_node * {V};
        for (i32 j = 0; j < {V}; j++) {{
            i32 w = adjmat[row + j];
            if (w > 0 && visited[j] == 0) {{
                u32 cand = best + (u32) w;
                if (cand < dist[j]) {{
                    dist[j] = cand;
                }}
            }}
        }}
    }}
}}

void main() {{
    u32 acc = 0;
    for (i32 s = 0; s < {SOURCES}; s++) {{
        run_dijkstra(s * 13 % {V});
        for (i32 i = 0; i < {V}; i++) {{
            if (dist[i] < {INFINITY}) {{
                acc += dist[i];
            }}
        }}
    }}
    dist_total = acc;
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="dijkstra",
        source=SOURCE,
        input_vars={"adjmat": 100},
        output_vars=["dist", "dist_total"],
    )
