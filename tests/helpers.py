"""Shared test fixtures: tiny programs, platforms, and run helpers."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines import COMPILERS
from repro.core.tracing import Profile, collect_profile
from repro.emulator import PowerManager, run_continuous, run_intermittent
from repro.energy import Platform, msp430fr5969_model, msp430fr5969_platform
from repro.frontend import compile_source
from repro.ir import Module

MODEL = msp430fr5969_model()

#: A small accumulate-over-array kernel exercising loops and allocation.
SUM_LOOP_SRC = """
u32 result;
i32 data[16];
void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 16; i++) {
        acc += (u32) data[i] * 3;
    }
    result = acc;
}
"""

#: Functions (scalar + by-reference array parameters), nested loops,
#: branches — the frontend/core integration workhorse.
CALLS_SRC = """
u32 result;
u32 aux;
i32 data[24];
u16 table[8];

u32 weight(u32 x) {
    u32 w = 0;
    @maxiter(32)
    while (x != 0) {
        w += x & 1;
        x >>= 1;
    }
    return w;
}

void scale(i32 buf[], i32 n) {
    for (i32 i = 0; i < 24; i++) {
        if (i < n) {
            buf[i] = buf[i] * 2 + 1;
        }
    }
}

void main() {
    scale(data, 20);
    u32 acc = 0;
    for (i32 i = 0; i < 24; i++) {
        for (i32 j = 0; j < 2; j++) {
            acc += weight((u32) data[i] + (u32) j);
        }
        acc += (u32) table[i % 8];
    }
    result = acc;
    aux = acc ^ 0xbeef;
}
"""

#: Branch-heavy program with different hot/cold paths.
BRANCHY_SRC = """
u32 result;
u32 selector;
i32 data[12];
void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 12; i++) {
        if ((selector & 1) != 0) {
            acc += (u32) data[i] * 5;
        } else {
            acc ^= (u32) data[i];
        }
        if (acc > 10000) {
            acc %= 997;
        }
    }
    result = acc;
}
"""


def compile_sum_loop() -> Module:
    return compile_source(SUM_LOOP_SRC, "sum_loop")


def compile_calls() -> Module:
    return compile_source(CALLS_SRC, "calls")


def compile_branchy() -> Module:
    return compile_source(BRANCHY_SRC, "branchy")


def sum_loop_inputs(seed: int = 5) -> Dict[str, List[int]]:
    rng = random.Random(seed)
    return {"data": [rng.randrange(0, 100) for _ in range(16)]}


def calls_inputs(seed: int = 5) -> Dict[str, List[int]]:
    rng = random.Random(seed)
    return {
        "data": [rng.randrange(0, 50) for _ in range(24)],
        "table": [rng.randrange(0, 1000) for _ in range(8)],
    }


def branchy_inputs(seed: int = 5) -> Dict[str, List[int]]:
    rng = random.Random(seed)
    return {
        "data": [rng.randrange(0, 200) for _ in range(12)],
        "selector": [seed % 2],
    }


def make_input_generator(template: Dict[str, int], sizes: Dict[str, int]):
    """Generator producing seeded random inputs per profiling run."""

    def generate(run: int) -> Dict[str, List[int]]:
        rng = random.Random(("gen", run))
        return {
            name: [rng.randrange(0, bound) for _ in range(sizes[name])]
            for name, bound in template.items()
        }

    return generate


def platform(eb: float = 3000.0, vm_size: int = 2048) -> Platform:
    return msp430fr5969_platform(eb=eb).with_vm_size(vm_size)


def run_technique(
    name: str,
    module: Module,
    plat: Platform,
    inputs: Dict[str, List[int]],
    profile: Optional[Profile] = None,
    input_generator=None,
):
    """Compile with one technique and run it intermittently; returns
    (CompiledTechnique, ExecutionReport or None)."""
    compiler = COMPILERS[name]
    if name in ("schematic", "rockclimb", "allnvm"):
        compiled = compiler(
            module, plat, profile=profile, input_generator=input_generator
        )
    else:
        compiled = compiler(module, plat)
    if not compiled.feasible:
        return compiled, None
    report = run_intermittent(
        compiled.module,
        plat.model,
        compiled.policy,
        PowerManager.energy_budget(plat.eb),
        vm_size=plat.vm_size,
        inputs=inputs,
    )
    return compiled, report


def reference_outputs(module: Module, inputs: Dict[str, List[int]]):
    return run_continuous(MODEL and module, MODEL, inputs=inputs).outputs


def quick_profile(module: Module, input_generator, runs: int = 2) -> Profile:
    return collect_profile(module, MODEL, input_generator, runs=runs)
