"""Execution reports returned by the emulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.emulator.meter import EnergyBreakdown


@dataclass
class ExecutionReport:
    """Everything an experiment needs to know about one emulated run.

    Attributes:
        technique: name of the checkpoint policy that ran.
        completed: the program ran to termination (Table III's check mark).
        failure_reason: why it did not complete (``"no forward progress"``,
            ``"vm capacity exceeded"``, ...), empty when completed.
        energy: committed energy per category (nJ).
        active_cycles: CPU cycles spent executing (sleep excluded).
        instructions: IR instructions executed (re-executions included).
        power_failures: number of power failures experienced.
        checkpoints_saved / checkpoints_restored: runtime counts.
        checkpoints_skipped: MEMENTOS-style skipped checkpoint decisions.
        vm_accesses / nvm_accesses: committed memory-access counts.
        outputs: final values of every non-const global variable.
        peak_vm_bytes: maximum VM occupancy observed.
        power_mode: the :class:`~repro.emulator.power.PowerMode` value of
            the run's power manager.
        failure_offsets: pre-step timeline offsets (active cycles since
            boot) of each power failure — feeding them into
            ``PowerManager.scheduled`` replays this run's failures
            deterministically (the testkit's shrinker relies on it).
    """

    technique: str
    completed: bool
    failure_reason: str = ""
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    active_cycles: int = 0
    instructions: int = 0
    power_failures: int = 0
    checkpoints_saved: int = 0
    checkpoints_restored: int = 0
    checkpoints_skipped: int = 0
    vm_accesses: int = 0
    nvm_accesses: int = 0
    outputs: Dict[str, List[int]] = field(default_factory=dict)
    peak_vm_bytes: int = 0
    power_mode: str = ""
    failure_offsets: List[int] = field(default_factory=list)

    @property
    def total_energy_uj(self) -> float:
        return self.energy.total / 1000.0

    def matches_outputs(self, reference: "ExecutionReport") -> bool:
        """Compare final global values against a reference run (memory
        anomalies show up here as mismatches)."""
        return self.outputs == reference.outputs

    def summary(self) -> str:
        status = "completed" if self.completed else f"FAILED ({self.failure_reason})"
        return (
            f"[{self.technique}] {status}: "
            f"{self.energy.total / 1000.0:.2f} uJ "
            f"(comp {self.energy.computation / 1000.0:.2f}, "
            f"save {self.energy.save / 1000.0:.2f}, "
            f"restore {self.energy.restore / 1000.0:.2f}, "
            f"reexec {self.energy.reexecution / 1000.0:.2f}), "
            f"{self.active_cycles} cycles, "
            f"{self.power_failures} failures, "
            f"{self.checkpoints_saved} saves"
        )
