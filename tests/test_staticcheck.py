"""Unit tests for the compile-time intermittent-safety checker.

Each analyzer is exercised on purpose-built miniature modules: the WAR
dataflow (exposure, definite-write shadowing, checkpoint clearing,
interprocedural hazards), the VM-residency analysis, the checkpoint
metadata checks, the energy certifier, and the findings/rules plumbing
(severities, suppression, deduplication, report rendering).
"""

import json

import pytest

from repro.baselines.common import set_all_spaces
from repro.baselines.ratchet import compile_ratchet
from repro.frontend import compile_source
from repro.ir.instructions import Checkpoint, CondCheckpoint, Load, Store
from repro.ir.values import MemorySpace
from repro.staticcheck import (
    CheckReport,
    RULES,
    RuleConfig,
    Severity,
    analyze_residency,
    analyze_war,
    certify_energy,
    check_module,
    get_rule,
)
from repro.staticcheck.alloc import check_checkpoint_metadata
from repro.staticcheck.common import FindingSink
from repro.staticcheck.findings import Finding, Location
from repro.staticcheck.rules import render_catalog

from tests.helpers import MODEL, platform


def war_findings(module, **kwargs):
    sink = FindingSink()
    analyze_war(module, sink, **kwargs)
    return sink.findings


def find_instruction(func, kind, var_name):
    for label, block in func.blocks.items():
        for i, inst in enumerate(block.instructions):
            if isinstance(inst, kind) and inst.var.name == var_name:
                return label, i
    raise AssertionError(f"no {kind.__name__} of {var_name}")


WAR_SRC = """
u32 x;
u32 y;
void main() {
    y = x + 1;
    x = x + 1;
}
"""


class TestWarAnalysis:
    def test_scalar_write_after_read_flagged(self):
        module = compile_source(WAR_SRC, "war")
        findings = war_findings(module)
        assert [f.rule_id for f in findings] == ["WAR001"]
        assert findings[0].details["variable"] == "x"
        assert findings[0].severity is Severity.ERROR

    def test_checkpoint_between_clears_the_region(self):
        module = compile_source(WAR_SRC, "war")
        func = module.functions["main"]
        label, i = find_instruction(func, Store, "x")
        func.blocks[label].instructions.insert(
            i, Checkpoint(ckpt_id=1, skippable=False)
        )
        assert war_findings(module) == []

    def test_skippable_checkpoint_clears_only_without_skip_policy(self):
        module = compile_source(WAR_SRC, "war")
        func = module.functions["main"]
        label, i = find_instruction(func, Store, "x")
        func.blocks[label].instructions.insert(
            i, Checkpoint(ckpt_id=1, skippable=True)
        )
        assert war_findings(module, policy_may_skip=False) == []
        # Under a MEMENTOS-style skip heuristic the checkpoint may be
        # elided, so the region is not reliably ended.
        flagged = war_findings(module, policy_may_skip=True)
        assert [f.rule_id for f in flagged] == ["WAR001"]

    def test_conditional_checkpoint_never_clears(self):
        module = compile_source(WAR_SRC, "war")
        func = module.functions["main"]
        label, i = find_instruction(func, Store, "x")
        func.blocks[label].instructions.insert(
            i, CondCheckpoint(ckpt_id=1, every=4)
        )
        assert [f.rule_id for f in war_findings(module)] == ["WAR001"]

    def test_write_read_write_is_idempotent(self):
        module = compile_source(
            """
            u32 x;
            u32 y;
            void main() {
                x = 5;
                y = x;
                x = x + 1;
            }
            """,
            "idem",
        )
        # Replays re-execute the leading full write first, so the read
        # always observes the same value (Ratchet's first-access rule).
        assert war_findings(module) == []

    def test_array_write_after_read_is_a_warning(self):
        module = compile_source(
            """
            i32 a[4];
            void main() {
                a[0] = a[1] + 1;
            }
            """,
            "arr",
        )
        findings = war_findings(module)
        assert [f.rule_id for f in findings] == ["WAR002"]
        assert findings[0].severity is Severity.WARNING

    def test_vm_accesses_are_not_hazards(self):
        module = compile_source(WAR_SRC, "war")
        set_all_spaces(module, MemorySpace.VM)
        assert war_findings(module) == []


CROSS_SRC = """
u32 g;
u32 h;
u32 peek() { return g; }
void poke() { g = 7; }
void main() { h = peek(); poke(); }
"""


class TestInterproceduralWar:
    def test_exposed_read_meets_later_callee_write(self):
        module = compile_source(CROSS_SRC, "cross")
        sink = FindingSink()
        summaries = analyze_war(module, sink)
        assert summaries["peek"].exposed_at_exit == {"g"}
        assert summaries["poke"].writes_before_clear == {"g"}
        assert not summaries["poke"].always_clears
        findings = sink.findings
        assert [f.rule_id for f in findings] == ["WAR001"]
        assert findings[0].location.function == "main"
        assert findings[0].details["via"] == "poke"

    def test_callee_checkpoint_discharges_the_hazard(self):
        module = compile_source(CROSS_SRC, "cross")
        poke = module.functions["poke"]
        poke.entry.instructions.insert(
            0, Checkpoint(ckpt_id=1, skippable=False)
        )
        sink = FindingSink()
        summaries = analyze_war(module, sink)
        assert summaries["poke"].always_clears
        assert sink.findings == []

    def test_ratchet_breaks_cross_call_war_through_callee_locals(self):
        """Regression: a callee's statically allocated locals alias the
        same NVM storage on every call, so a read left exposed by one
        call forms a WAR hazard with the next call's write. RATCHET's
        placement must break it (it used to see only caller-visible
        effect sets and miss it)."""
        module = compile_source(
            """
            u32 r1;
            u32 r2;
            u32 f(u32 x) {
                u32 acc = 0;
                for (i32 i = 0; i < 4; i++) {
                    acc = acc + x;
                }
                return acc;
            }
            void main() {
                r1 = f(3);
                r2 = f(5);
            }
            """,
            "crosslocal",
        )
        compiled = compile_ratchet(module, platform())
        assert war_findings(compiled.module) == []


class TestResidencyAnalysis:
    SRC = """
    u32 x;
    u32 y;
    void main() {
        x = 1;
        y = x + 2;
    }
    """

    def build(self):
        module = compile_source(self.SRC, "res")
        set_all_spaces(module, MemorySpace.NVM)
        func = module.functions["main"]
        label, i = find_instruction(func, Store, "x")
        func.blocks[label].instructions[i].space = MemorySpace.VM
        return module, func

    def residency_findings(self, module):
        sink = FindingSink()
        analyze_residency(module, sink)
        return sink.findings

    def test_vm_access_without_residency(self):
        module, _ = self.build()
        findings = self.residency_findings(module)
        assert [f.rule_id for f in findings] == ["ALLOC001"]
        assert findings[0].details["variable"] == "x"

    def test_checkpoint_establishes_residency(self):
        module, func = self.build()
        func.entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={"x": MemorySpace.VM},
                skippable=False,
            ),
        )
        findings = self.residency_findings(module)
        # The VM store is fine now, but the later NVM load of x observes
        # a stale home while x is VM-resident.
        assert [f.rule_id for f in findings] == ["ALLOC002"]
        label, i = find_instruction(func, Load, "x")
        assert findings[0].location == Location("main", label, i)

    def test_skippable_checkpoint_does_not_establish_residency(self):
        module, func = self.build()
        func.entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={"x": MemorySpace.VM},
                skippable=True,
            ),
        )
        sink = FindingSink()
        analyze_residency(module, sink, policy_may_skip=True)
        assert "ALLOC001" in {f.rule_id for f in sink.findings}


class TestCheckpointMetadata:
    def metadata_findings(self, module, vm_size=None):
        sink = FindingSink()
        check_checkpoint_metadata(module, sink, vm_size=vm_size)
        return sink.findings

    def simple_module(self):
        return compile_source(
            "u32 x;\nu32 y;\nvoid main() { x = 1; y = x; }", "meta"
        )

    def test_unknown_names_and_unallocated_restores(self):
        module = self.simple_module()
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                save_vars=("ghost",),
                restore_vars=("y",),
                alloc_after={},
                skippable=False,
            ),
        )
        by_rule = {}
        for f in self.metadata_findings(module):
            by_rule.setdefault(f.rule_id, []).append(f.details["variable"])
        assert by_rule["CKPT001"] == ["ghost"]
        # y is restored but alloc_after does not map it to VM.
        assert by_rule["CKPT002"] == ["y"]

    def test_vm_capacity_exceeded(self):
        module = self.simple_module()
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={
                    "x": MemorySpace.VM,
                    "y": MemorySpace.VM,
                },
                skippable=False,
            ),
        )
        findings = self.metadata_findings(module, vm_size=4)
        assert [f.rule_id for f in findings] == ["ALLOC003"]
        assert findings[0].details["vm_bytes"] == 8
        assert self.metadata_findings(module, vm_size=8) == []

    def test_vm_capacity_exact_fit_is_certified(self):
        # The rule is "exceeds", not "reaches": a working set of exactly
        # vm_size bytes is certified, one byte less of capacity convicts.
        module = self.simple_module()
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={
                    "x": MemorySpace.VM,
                    "y": MemorySpace.VM,
                },
                skippable=False,
            ),
        )
        assert self.metadata_findings(module, vm_size=8) == []
        findings = self.metadata_findings(module, vm_size=7)
        assert [f.rule_id for f in findings] == ["ALLOC003"]
        assert findings[0].details["vm_bytes"] == 8
        assert findings[0].details["vm_size"] == 7

    def test_zero_byte_vm_platform(self):
        # A platform with no volatile memory at all: NVM-only checkpoints
        # are fine, the first VM mapping of any size convicts.
        module = self.simple_module()
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={"x": MemorySpace.NVM},
                skippable=False,
            ),
        )
        assert self.metadata_findings(module, vm_size=0) == []
        module = self.simple_module()
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={"x": MemorySpace.VM},
                skippable=False,
            ),
        )
        findings = self.metadata_findings(module, vm_size=0)
        assert [f.rule_id for f in findings] == ["ALLOC003"]
        assert findings[0].details["vm_bytes"] == 4
        assert findings[0].details["vm_size"] == 0

    def test_vm_capacity_uses_declared_element_counts(self):
        # The working set is sized from the declared variables (count x
        # element width), not from the subset of elements the code
        # happens to touch: u16 table[8] costs 16 bytes even though main
        # reads one element.
        module = compile_source(
            "u16 table[8];\nu32 x;\nvoid main() { x = (u32) table[0]; }",
            "declared",
        )
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={
                    "table": MemorySpace.VM,
                    "x": MemorySpace.VM,
                },
                skippable=False,
            ),
        )
        assert self.metadata_findings(module, vm_size=20) == []
        findings = self.metadata_findings(module, vm_size=19)
        assert [f.rule_id for f in findings] == ["ALLOC003"]
        assert findings[0].details["vm_bytes"] == 20

    def test_vm_capacity_skips_unknown_names(self):
        # An alloc_after entry naming a variable that does not exist is
        # CKPT001's conviction; the capacity sum counts only declared
        # variables instead of crashing on (or guessing) the ghost.
        module = self.simple_module()
        module.functions["main"].entry.instructions.insert(
            0,
            Checkpoint(
                ckpt_id=1,
                alloc_after={
                    "ghost": MemorySpace.VM,
                    "x": MemorySpace.VM,
                },
                skippable=False,
            ),
        )
        findings = self.metadata_findings(module, vm_size=4)
        assert [f.rule_id for f in findings] == ["CKPT001"]
        findings = self.metadata_findings(module, vm_size=3)
        assert sorted(f.rule_id for f in findings) == ["ALLOC003", "CKPT001"]
        alloc = [f for f in findings if f.rule_id == "ALLOC003"][0]
        assert alloc.details["vm_bytes"] == 4


class TestEnergyCertifier:
    def test_unbounded_checkpoint_free_loop(self):
        module = compile_source(
            """
            u32 x;
            u32 y;
            void main() {
                while (x != 0) {
                    x = x >> 1;
                }
                y = 1;
            }
            """,
            "unb",
        )
        set_all_spaces(module, MemorySpace.NVM)
        sink = FindingSink()
        certify_energy(module, MODEL, 3000.0, sink)
        assert [f.rule_id for f in sink.findings] == ["ENER002"]
        # Reported at the loop header, without an instruction index.
        assert sink.findings[0].location.index is None

    def test_certified_window_is_tight(self, schematic_sumloop):
        compiled, plat = schematic_sumloop
        sink = FindingSink()
        certifier = certify_energy(
            compiled.module, plat.model, plat.eb, sink
        )
        assert sink.findings == []
        worst = certifier.worst_window
        assert 0 < worst <= plat.eb

        # Just above the measured worst case: still certified.
        sink = FindingSink()
        certify_energy(compiled.module, plat.model, worst + 1.0, sink)
        assert sink.findings == []

        # Just below: the same window is now over budget.
        sink = FindingSink()
        certify_energy(compiled.module, plat.model, worst * 0.99, sink)
        assert {f.rule_id for f in sink.findings} == {"ENER001"}


@pytest.fixture(scope="module")
def schematic_sumloop():
    from repro.testkit.corpus import compile_for, load_program

    bench = load_program("sumloop")
    plat = platform()
    compiled = compile_for(
        "schematic",
        bench.module,
        plat,
        input_generator=bench.input_generator(),
    )
    return compiled, plat


class TestFindingsAndRules:
    def test_severity_parse(self):
        assert Severity.parse(" Error ") is Severity.ERROR
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        with pytest.raises(ValueError, match="warning"):
            Severity.parse("fatal")

    def test_get_rule_lists_choices(self):
        with pytest.raises(KeyError, match="WAR001"):
            get_rule("NOPE999")

    def test_catalog_covers_every_rule(self):
        catalog = render_catalog()
        for rule_id in RULES:
            assert rule_id in catalog

    def test_rule_config_rejects_unknown_ids(self):
        with pytest.raises(KeyError):
            RuleConfig(suppressed=frozenset({"NOPE999"}))
        with pytest.raises(KeyError):
            RuleConfig(severity_overrides={"NOPE999": Severity.INFO})

    def test_rule_config_suppresses_and_overrides(self):
        finding = Finding(
            rule_id="WAR001",
            severity=Severity.ERROR,
            location=Location("main", "entry", 0),
            message="m",
        )
        assert RuleConfig(suppressed=frozenset({"WAR001"})).apply(finding) is None
        demoted = RuleConfig(
            severity_overrides={"WAR001": Severity.INFO}
        ).apply(finding)
        assert demoted.severity is Severity.INFO
        assert demoted.rule_id == "WAR001"
        untouched = RuleConfig().apply(finding)
        assert untouched is finding

    def test_finding_sink_deduplicates(self):
        sink = FindingSink()
        finding = Finding(
            rule_id="WAR001",
            severity=Severity.ERROR,
            location=Location("main", "entry", 0),
            message="m",
        )
        sink.add(finding)
        sink.add(finding)
        assert len(sink.findings) == 1

    def test_location_and_finding_render(self):
        location = Location("main", "body", 3)
        assert str(location) == "@main/.body[3]"
        finding = Finding(
            rule_id="WAR001",
            severity=Severity.ERROR,
            location=location,
            message="boom",
        )
        assert finding.render() == "WAR001 error @main/.body[3]: boom"

    def test_findings_sort_most_severe_first(self):
        info = Finding("WAR002", Severity.INFO, Location("a"), "i")
        error = Finding("WAR001", Severity.ERROR, Location("z"), "e")
        ordered = sorted([info, error], key=Finding.sort_key)
        assert ordered[0] is error


class TestCheckModule:
    def test_report_gating_thresholds(self):
        module = compile_source(WAR_SRC, "war")
        report = check_module(module)
        assert not report.ok()
        assert report.ok(Severity.ERROR) is False
        assert report.max_severity() is Severity.ERROR
        demoted = check_module(
            module,
            config=RuleConfig(severity_overrides={"WAR001": Severity.INFO}),
        )
        assert demoted.ok()
        assert not demoted.ok(Severity.INFO)

    def test_energy_runs_only_for_wait_mode(self, schematic_sumloop):
        compiled, plat = schematic_sumloop
        report = check_module(
            compiled.module,
            plat.model,
            policy=compiled.policy,
            eb=plat.eb,
            vm_size=plat.vm_size,
        )
        assert "energy" in report.stats["analyses"]
        assert report.stats["worst_window_nj"] <= plat.eb

        from repro.emulator.runtime import CheckpointPolicy

        rollback = check_module(
            compiled.module,
            plat.model,
            policy=CheckpointPolicy.rollback_mode("x"),
            eb=plat.eb,
            vm_size=plat.vm_size,
        )
        assert "energy" not in rollback.stats["analyses"]

    def test_report_render_and_json(self):
        module = compile_source(WAR_SRC, "war")
        report = check_module(module)
        text = report.render()
        assert "WAR001" in text
        assert "1 error" in text
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["findings"][0]["rule"] == "WAR001"
        assert doc["stats"]["functions"] == 1

    def test_clean_module_report(self):
        module = compile_source(
            "u32 x;\nvoid main() { x = 1; }", "clean"
        )
        report = check_module(module)
        assert report.ok(Severity.INFO)
        assert report.findings == []
        assert report.max_severity() is None
        assert "0 findings" in report.render()


class TestMergeFindings:
    """The canonical merged-path normalization (satellite of the TV
    work): suppression is decided strictly before severity overrides,
    so a rule that is both suppressed and overridden stays suppressed
    on every merged path."""

    def _finding(self, rule_id, severity, function="f", message="m"):
        return Finding(
            rule_id=rule_id, severity=severity,
            location=Location(function), message=message,
        )

    def test_suppressed_and_overridden_rule_stays_suppressed(self):
        from repro.staticcheck import merge_findings

        config = RuleConfig(
            suppressed=frozenset({"WAR001"}),
            severity_overrides={"WAR001": Severity.INFO},
        )
        groups = [
            [self._finding("WAR001", Severity.ERROR)],
            [self._finding("WAR001", Severity.ERROR, function="g")],
        ]
        assert merge_findings(groups, config) == []

    def test_merge_applies_overrides_and_sorts_severity_major(self):
        from repro.staticcheck import merge_findings

        config = RuleConfig(severity_overrides={"WAR002": Severity.ERROR})
        merged = merge_findings(
            [
                [self._finding("ENER002", Severity.INFO, function="b")],
                [self._finding("WAR002", Severity.WARNING, function="a")],
            ],
            config,
        )
        # The override promotes WAR002 above the info finding, and the
        # result is sorted most-severe first regardless of group order.
        assert [(f.rule_id, f.severity) for f in merged] == [
            ("WAR002", Severity.ERROR),
            ("ENER002", Severity.INFO),
        ]

    def test_merge_without_config_only_sorts(self):
        from repro.staticcheck import merge_findings

        one = self._finding("WAR001", Severity.ERROR)
        two = self._finding("WAR002", Severity.WARNING)
        assert merge_findings([[two], [one]]) == [one, two]
