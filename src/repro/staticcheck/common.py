"""Shared plumbing of the static checkers.

All three analyzers (WAR, residency, energy) walk the same structures:
instructions with resolved memory spaces, checkpoints with clearing
semantics that depend on the runtime policy, and call sites whose
by-reference formals must be substituted with the caller's actuals.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    Checkpoint,
    CondCheckpoint,
    Instruction,
)
from repro.ir.module import Module
from repro.ir.values import MemorySpace, Variable, VarRef

#: Instruction kinds that may take a snapshot at run time.
CHECKPOINT_KINDS = (Checkpoint, CondCheckpoint)


def variable_map(module: Module) -> Dict[str, Variable]:
    """Mangled variable name -> Variable, for the whole module."""
    return {var.name: var for var in module.all_variables()}


def iter_instructions(
    func: Function,
) -> Iterator[Tuple[str, int, Instruction]]:
    """(block label, index, instruction) in block order."""
    for label, block in func.blocks.items():
        for i, inst in enumerate(block.instructions):
            yield label, i, inst


def resolve_space(space: MemorySpace, default: MemorySpace) -> MemorySpace:
    """AUTO accesses execute in the interpreter's default space."""
    return default if space is MemorySpace.AUTO else space


def checkpoint_clears(inst: Instruction, policy_may_skip: bool) -> bool:
    """Whether this checkpoint is guaranteed to take a snapshot when
    execution passes it.

    A :class:`CondCheckpoint` fires only every ``every`` iterations, so a
    single pass may not snapshot. A skippable :class:`Checkpoint` under a
    policy with a skip heuristic (MEMENTOS) may be elided at run time.
    Both must be treated as *not* ending the current replay region."""
    if isinstance(inst, CondCheckpoint):
        return False
    if isinstance(inst, Checkpoint):
        return not (policy_may_skip and inst.skippable)
    return False


def ref_formals(func: Function) -> List[str]:
    """Mangled names of the by-reference formals, in parameter order."""
    return [
        func.variables[param.name].name
        for param in func.params
        if param.is_ref
    ]


def call_ref_mapping(call: Call, callee: Function) -> Dict[str, str]:
    """Callee ref-formal mangled name -> caller-side actual mangled name.

    The actual may itself be a ref formal of the caller; the caller's own
    summary keeps it symbolic and its caller substitutes in turn."""
    mapping: Dict[str, str] = {}
    for arg, param in zip(call.args, callee.params):
        if isinstance(arg, VarRef):
            mapping[callee.variables[param.name].name] = arg.variable.name
    return mapping


def substitute(names: FrozenSet[str], mapping: Dict[str, str]) -> FrozenSet[str]:
    """Rewrite ref-formal names through a call-site mapping."""
    if not mapping:
        return names
    return frozenset(mapping.get(name, name) for name in names)


def vm_set(alloc_after: Dict[str, MemorySpace]) -> FrozenSet[str]:
    """Names a checkpoint's allocation maps into VM."""
    return frozenset(
        name
        for name, space in alloc_after.items()
        if space is MemorySpace.VM
    )


def checkpoint_payload_bytes(
    names: Tuple[str, ...], variables: Dict[str, Variable]
) -> int:
    """Total size of the named variables (unknown names count zero; they
    are reported separately by rule CKPT001)."""
    total = 0
    for name in names:
        var = variables.get(name)
        if var is not None:
            total += var.size_bytes
    return total


class FindingSink:
    """Deduplicating collector: analyzers may traverse a block more than
    once (fixpoints, loop summaries applied at several call sites), but a
    defect at one location is one finding."""

    def __init__(self) -> None:
        self._seen: Set[Tuple[object, ...]] = set()
        self.findings: List = []

    def add(self, finding) -> None:
        key = (finding.rule_id, finding.location, finding.message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(finding)
