"""The flight recorder: bounded ring semantics, lazy state providers
(including providers that raise mid-crash), postmortem bundle dumps and
the global enable/get/disable discipline.
"""

import json

import pytest

from repro.telemetry import flight, metrics
from repro.telemetry.flight import FlightRecorder, read_bundles, render_bundle


@pytest.fixture(autouse=True)
def _no_leak():
    yield
    assert flight.get() is None
    flight.disable()
    metrics.disable()


def test_ring_is_bounded_and_ordered():
    fr = FlightRecorder(capacity=3)
    for i in range(10):
        fr.record("tick", i=i)
    events = fr.events()
    assert [e["i"] for e in events] == [7, 8, 9], "oldest dropped first"
    assert [e["seq"] for e in events] == [8, 9, 10], "seq keeps counting"


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_providers_are_sampled_lazily_and_last_wins():
    calls = []

    def provider():
        calls.append(1)
        return {"run": 42}

    fr = FlightRecorder()
    fr.provide("interp", lambda: {"run": 0})
    fr.provide("interp", provider)  # replaces the stale closure
    assert calls == [], "providers must not run before dump"
    assert fr.state() == {"interp": {"run": 42}}
    assert calls == [1]


def test_provider_errors_never_kill_the_dump(tmp_path):
    fr = FlightRecorder()
    fr.provide("broken", lambda: 1 / 0)
    fr.provide("fine", lambda: {"ok": True})
    path = fr.dump(str(tmp_path), reason="crash")
    doc = json.loads(open(path).read())
    assert doc["state"]["fine"] == {"ok": True}
    assert "ZeroDivisionError" in doc["state"]["broken"]["provider_error"]


def test_bundle_captures_error_and_metrics_snapshot(tmp_path):
    fr = FlightRecorder()
    fr.record("cell-start", benchmark="crc", technique="schematic")
    with metrics.enabled() as mm:
        mm.counter("interp.reboots").add(4)
        try:
            raise RuntimeError("worker died")
        except RuntimeError as exc:
            path = fr.dump(str(tmp_path), reason="cell crc failed",
                           error=exc, extra={"cell": "run"})
    doc = json.loads(open(path).read())
    assert doc["kind"] == "postmortem" and doc["schema"] == 1
    assert doc["reason"] == "cell crc failed"
    assert doc["cell"] == "run"
    assert doc["error"]["type"] == "RuntimeError"
    assert "worker died" in doc["error"]["traceback"]
    assert {"kind": "counter", "name": "interp.reboots", "value": 4} in (
        doc["metrics"]
    )


def test_bundle_without_metrics_has_no_metrics_key(tmp_path):
    path = FlightRecorder().dump(str(tmp_path), reason="r")
    assert "metrics" not in json.loads(open(path).read())


def test_read_bundles_sorted_and_render(tmp_path):
    a = FlightRecorder()
    a.record("x", n=1)
    a.dump(str(tmp_path), reason="first")
    # A second 'process' bundle, forged by renaming.
    b = FlightRecorder()
    b.record("y", n=2)
    src = b.dump(str(tmp_path / "other"), reason="second")
    (tmp_path / "postmortem-zzz.json").write_text(open(src).read())

    bundles = read_bundles(str(tmp_path))
    assert len(bundles) == 2
    assert bundles[0]["_file"] < bundles[1]["_file"]
    text = render_bundle(bundles[0])
    assert "reason: first" in text and "[     1] x" in text
    assert read_bundles(str(tmp_path / "missing")) == []


def test_global_handle_discipline():
    assert flight.get() is None
    fr = flight.enable(capacity=8)
    assert flight.get() is fr
    assert flight.disable() is fr
    assert flight.get() is None
