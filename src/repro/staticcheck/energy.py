"""Static energy certification: every inter-checkpoint segment fits EB.

A wait-mode runtime (SCHEMATIC, Fig. 3) sleeps until the capacitor is
full at every taken checkpoint, so the forward-progress guarantee
(paper §II-B) holds exactly when the worst-case energy consumed between
two successive full recharges — restore, region instructions, and the
closing save — never exceeds the budget ``EB``. This module re-derives
that bound from the :class:`~repro.energy.model.EnergyModel` and the
transformed IR alone, independently of the bookkeeping inside
``core/path_analysis.py``; agreement between the two (and with the
dynamic testkit) is the cross-validation the testkit oracle closes.

The certification is compositional:

- Within an acyclic region, the worst window is a longest-path problem:
  a two-component state ``(a, b)`` is propagated in topological order,
  where ``a`` is the worst energy accumulated since the *region entry*
  along paths with no taken checkpoint yet (parametric in the caller's
  incoming window) and ``b`` is the worst *absolute* window since the
  last taken checkpoint's recharge. Merges take the component-wise max.
- Every step is abstracted as a :class:`StepEffect` — the worst
  checkpoint-free traversal energy (``nock``), the worst checkpoint-free
  prefix energy including closing-save exposures (``peek``), and the
  worst exit window when an internal checkpoint was taken (``tail``).
  Instructions, whole callees, and collapsed loops all fit this shape,
  which is what makes calls and nested loops composable.
- Loops are collapsed innermost-first (the paper's bottom-up traversal,
  §III-B2). A latch ``CondCheckpoint(every=N)`` fires every N
  iterations, so at most ``N-1`` checkpoint-free iterations separate
  taken checkpoints (``numit``-bounded windows, Algorithm 1); a bounded
  loop without one chains at most ``maxiter-1``. A checkpoint-free loop
  with neither bound cannot be certified (rule ENER002).

Unlike Algorithm 1's placement-time accounting, the certifier charges
the conditional checkpoint's iteration-count test
(:data:`~repro.emulator.interpreter.COND_CHECK_CYCLES`) to the enclosing
window, because the interpreter does; the placement leaves enough slack
for this in practice, and a disagreement here is exactly what the
checker exists to surface.

Energy rules only apply to wait-mode policies: roll-back baselines make
progress by replaying, not by fitting segments into the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG
from repro.analysis.loops import Loop, LoopNest
from repro.emulator.interpreter import COND_CHECK_CYCLES
from repro.energy.model import EnergyModel
from repro.ir.function import Function
from repro.ir.instructions import Call, Checkpoint, CondCheckpoint
from repro.ir.module import Module
from repro.staticcheck.common import (
    FindingSink,
    checkpoint_payload_bytes,
    variable_map,
)
from repro.staticcheck.findings import Finding, Location
from repro.staticcheck.rules import RULES


@dataclass(frozen=True)
class StepEffect:
    """Worst-case energy behaviour of one step (instruction, call, or
    collapsed loop) with respect to checkpoint windows."""

    #: Max energy of a traversal that takes no checkpoint (None if every
    #: path through the step checkpoints).
    nock: Optional[float]
    #: Max checkpoint-free prefix energy, including the exposure of
    #: completing an internal save. This is the single number a caller
    #: needs to bound its window across the step: in-window + peek <= EB.
    peek: float
    #: Max absolute window on exit for paths whose last taken checkpoint
    #: is internal to the step (None if no such path).
    tail: Optional[float]
    #: Per-checkpoint breakdown of ``peek``: ckpt_id -> max checkpoint-free
    #: prefix energy for windows *closing at that save* (save included).
    #: Lets a caller attribute the absolute bound ``b + peek_by[id]`` to
    #: the specific internal checkpoint instead of only to the aggregate.
    peek_by: Dict[int, float] = field(default_factory=dict)


def _max_opt(*values: Optional[float]) -> Optional[float]:
    alive = [v for v in values if v is not None]
    return max(alive) if alive else None


def _bump_close(store: Dict[int, float], close_id: int, value: float) -> None:
    if value > store.get(close_id, 0.0):
        store[close_id] = value


@dataclass
class _CondSite:
    ckpt_id: int
    every: int
    save: float
    restore: float
    location: Location


@dataclass
class _RegionResult:
    """Worst-case state at the boundaries of one region."""

    peek: float
    #: Per-closing-checkpoint breakdown of ``peek`` (see StepEffect).
    peek_by: Dict[int, float] = field(default_factory=dict)
    #: Container exit edges (u, v) -> joined (a, b) at the edge.
    exits: Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]] = field(
        default_factory=dict
    )
    #: Joined state on the back edges (loop regions only).
    latch: Optional[Tuple[Optional[float], Optional[float]]] = None
    #: Function exits (blocks without successors; top-level regions only).
    returns: Optional[Tuple[Optional[float], Optional[float]]] = None
    cond_sites: List[_CondSite] = field(default_factory=list)


@dataclass
class _LoopEffect:
    """A collapsed loop as seen by its parent region."""

    header: str
    peek: float
    #: Exit edge (u, v) -> per-edge effect.
    exits: Dict[Tuple[str, str], StepEffect] = field(default_factory=dict)
    #: Per-closing-checkpoint breakdown of ``peek`` (see StepEffect).
    peek_by: Dict[int, float] = field(default_factory=dict)


class EnergyCertifier:
    """Certify one transformed module against a budget ``EB``."""

    def __init__(
        self,
        module: Module,
        model: EnergyModel,
        eb: float,
        sink: FindingSink,
        inferred_bounds: Optional[Dict[Tuple[str, str], int]] = None,
    ):
        self.module = module
        self.model = model
        self.eb = eb
        self.sink = sink
        #: Proven trip bounds from the value-range analysis,
        #: ``(function, header) -> max trips`` — consulted when a loop
        #: carries no ``@maxiter`` of its own.
        self.inferred_bounds = dict(inferred_bounds or {})
        self.variables = variable_map(module)
        self.summaries: Dict[str, StepEffect] = {}
        #: Largest certified absolute window — the margin statistic.
        self.worst_window = 0.0
        #: ckpt_id -> largest certified absolute window *closing* at that
        #: checkpoint's save. Any dynamic wait-mode window that commits at
        #: checkpoint C (restore + compute + save) is bounded by
        #: ``segment_bounds[C]``; the telemetry headroom report
        #: cross-validates observed windows against these.
        self.segment_bounds: Dict[int, float] = {}
        self._tol = 1e-6 + abs(eb) * 1e-9
        self._itercheck = COND_CHECK_CYCLES * model.energy_per_cycle

    # -- driver ------------------------------------------------------------

    def run(self) -> Dict[str, StepEffect]:
        for name in CallGraph(self.module).reverse_topological():
            func = self.module.function(name)
            self.summaries[name] = self._analyze_function(
                func, is_entry=(name == self.module.entry)
            )
        return self.summaries

    def _analyze_function(self, func: Function, is_entry: bool) -> StepEffect:
        cfg = CFG(func)
        nest = LoopNest(cfg)
        loop_effects: Dict[str, _LoopEffect] = {}
        for loop in nest.bottom_up():
            loop_effects[loop.header] = self._summarize_loop(
                func, cfg, nest, loop, loop_effects
            )
        # Boot is a recharge boundary: a restart replays from the entry
        # after paying an empty restore, so the entry function's windows
        # are absolute from the start. Callees start parametric (a=0).
        if is_entry:
            entry_state = (None, self.model.restore_energy(0))
        else:
            entry_state = (0.0, None)
        result = self._analyze_region(
            func, cfg, nest, None, loop_effects, entry_state
        )
        returns = result.returns or (None, None)
        return StepEffect(
            nock=returns[0],
            peek=result.peek,
            tail=returns[1],
            peek_by=dict(result.peek_by),
        )

    # -- region propagation ------------------------------------------------

    def _analyze_region(
        self,
        func: Function,
        cfg: CFG,
        nest: LoopNest,
        container: Optional[Loop],
        loop_effects: Dict[str, _LoopEffect],
        entry_state: Tuple[Optional[float], Optional[float]],
    ) -> _RegionResult:
        members = [
            label
            for label in cfg.labels
            if nest.loop_of(label) is container
            and (container is None or label in container.body)
        ]
        children = (
            nest.top_level() if container is None else container.children
        )
        child_of = {child.header: child for child in children}
        nodes = set(members) | set(child_of)
        entry_node = cfg.entry if container is None else container.header

        result = _RegionResult(peek=0.0)

        # Node adjacency: member block -> successors; child loop -> the
        # targets of its exit edges. Back edges (to the container header)
        # and container exits are routed to the result instead.
        out_edges: Dict[str, List[Tuple[str, Optional[Tuple[str, str]]]]] = {
            node: [] for node in nodes
        }

        def classify(u: str, v: str, node: str) -> None:
            """Route edge u->v leaving `node` (u==node for blocks; for a
            collapsed child, u is the in-loop source of its exit edge)."""
            if container is not None and v == container.header:
                out_edges[node].append(("<latch>", (u, v)))
            elif container is not None and v not in container.body:
                out_edges[node].append(("<exit>", (u, v)))
            elif v in child_of:
                out_edges[node].append((v, (u, v)))
            else:
                out_edges[node].append((v, (u, v)))

        for label in members:
            for succ in cfg.succs[label]:
                classify(label, succ, label)
        for child in children:
            for edge in child.exit_edges(cfg):
                classify(edge.src, edge.dst, child.header)

        # Kahn topological order over the region DAG.
        indeg = {node: 0 for node in nodes}
        for node in nodes:
            for target, _ in out_edges[node]:
                if target in indeg:
                    indeg[target] += 1
        ready = [n for n in sorted(nodes) if indeg[n] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for target, _ in out_edges[node]:
                if target in indeg:
                    indeg[target] -= 1
                    if indeg[target] == 0:
                        ready.append(target)

        states: Dict[str, Tuple[Optional[float], Optional[float]]] = {
            entry_node: entry_state
        }

        def merge_into(
            key: str,
            state: Tuple[Optional[float], Optional[float]],
            store: Dict,
        ) -> None:
            old = store.get(key)
            if old is None:
                store[key] = state
            else:
                store[key] = (
                    _max_opt(old[0], state[0]),
                    _max_opt(old[1], state[1]),
                )

        exit_states: Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]] = {}
        latch_state: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
        return_state: Dict[str, Tuple[Optional[float], Optional[float]]] = {}

        for node in order:
            in_state = states.get(node)
            if in_state is None:
                continue  # not reachable within this region
            if node in child_of:
                per_edge = self._apply_loop(
                    func, loop_effects[node], in_state, result
                )
                for target, edge in out_edges[node]:
                    assert edge is not None
                    out_state = per_edge.get(edge)
                    if out_state is None:
                        continue
                    if target == "<latch>":
                        merge_into("latch", out_state, latch_state)
                    elif target == "<exit>":
                        merge_into(edge, out_state, exit_states)
                    else:
                        merge_into(target, out_state, states)
            else:
                out_state = self._walk_block(
                    func, node, in_state, container, result
                )
                if not cfg.succs[node]:
                    merge_into("ret", out_state, return_state)
                for target, edge in out_edges[node]:
                    if target == "<latch>":
                        merge_into("latch", out_state, latch_state)
                    elif target == "<exit>":
                        assert edge is not None
                        merge_into(edge, out_state, exit_states)
                    else:
                        merge_into(target, out_state, states)

        result.exits = exit_states
        result.latch = latch_state.get("latch")
        result.returns = return_state.get("ret")
        return result

    # -- steps -------------------------------------------------------------

    def _walk_block(
        self,
        func: Function,
        label: str,
        state: Tuple[Optional[float], Optional[float]],
        container: Optional[Loop],
        result: _RegionResult,
    ) -> Tuple[Optional[float], Optional[float]]:
        a, b = state
        is_latch = container is not None and label in container.latches
        for i, inst in enumerate(func.blocks[label].instructions):
            location = Location(func.name, label, i)
            if isinstance(inst, Checkpoint):
                save = self.model.save_energy(
                    checkpoint_payload_bytes(inst.save_vars, self.variables)
                )
                restore = self.model.restore_energy(
                    checkpoint_payload_bytes(inst.restore_vars, self.variables)
                )
                if a is not None:
                    result.peek = max(result.peek, a + save)
                    _bump_close(result.peek_by, inst.ckpt_id, a + save)
                self._check_window(
                    b, save, location,
                    f"window closing at checkpoint #{inst.ckpt_id} "
                    f"(save {save:.1f} nJ)",
                    close_id=inst.ckpt_id,
                )
                a = None
                b = restore
                self._check_window(b, 0.0, location,
                                   f"restore of checkpoint #{inst.ckpt_id}")
            elif isinstance(inst, CondCheckpoint):
                save = self.model.save_energy(
                    checkpoint_payload_bytes(inst.save_vars, self.variables)
                )
                restore = self.model.restore_energy(
                    checkpoint_payload_bytes(inst.restore_vars, self.variables)
                )
                if a is not None:
                    a += self._itercheck
                if b is not None:
                    b += self._itercheck
                    self._check_window(b, 0.0, location, "iteration-count test")
                if is_latch:
                    # The loop summary accounts for when this fires.
                    result.cond_sites.append(
                        _CondSite(
                            ckpt_id=inst.ckpt_id,
                            every=inst.every,
                            save=save,
                            restore=restore,
                            location=location,
                        )
                    )
                else:
                    # Off the latch its counter phase is unknown: it may
                    # fire on any visit, or not at all.
                    if a is not None:
                        result.peek = max(result.peek, a + save)
                        _bump_close(result.peek_by, inst.ckpt_id, a + save)
                    self._check_window(
                        b, save, location,
                        f"window closing at conditional checkpoint "
                        f"#{inst.ckpt_id} (save {save:.1f} nJ)",
                        close_id=inst.ckpt_id,
                    )
                    b = _max_opt(b, restore)
            elif isinstance(inst, Call):
                effect = self.summaries[inst.callee]
                # The dispatch itself costs energy (call_cycles) before
                # any callee instruction runs; the emulator charges it
                # inside the window, so the certifier must too (the
                # telemetry headroom report falsifies bounds without it).
                dispatch = self.model.instruction_energy(inst)
                if a is not None:
                    a += dispatch
                if b is not None:
                    b += dispatch
                if a is not None:
                    result.peek = max(result.peek, a + effect.peek)
                    for cid, p in effect.peek_by.items():
                        _bump_close(result.peek_by, cid, a + p)
                if b is not None:
                    # Attribute absolute windows closing at the callee's
                    # internal checkpoints; the aggregate check below
                    # already flags any EB violation among them.
                    for cid, p in effect.peek_by.items():
                        self._note_close(cid, b + p)
                self._check_window(
                    b, effect.peek, location,
                    f"window through call to @{inst.callee}",
                )
                a = (
                    a + effect.nock
                    if a is not None and effect.nock is not None
                    else None
                )
                b = _max_opt(
                    b + effect.nock
                    if b is not None and effect.nock is not None
                    else None,
                    effect.tail,
                )
            else:
                energy = self.model.instruction_energy(inst)
                if a is not None:
                    a += energy
                if b is not None:
                    b += energy
                    self._check_window(b, 0.0, location, f"after {inst}")
            if a is not None:
                result.peek = max(result.peek, a)
        return (a, b)

    def _apply_loop(
        self,
        func: Function,
        effect: _LoopEffect,
        state: Tuple[Optional[float], Optional[float]],
        result: _RegionResult,
    ) -> Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]]:
        a, b = state
        location = Location(func.name, effect.header)
        if a is not None:
            result.peek = max(result.peek, a + effect.peek)
            for cid, p in effect.peek_by.items():
                _bump_close(result.peek_by, cid, a + p)
        if b is not None:
            for cid, p in effect.peek_by.items():
                self._note_close(cid, b + p)
        self._check_window(
            b, effect.peek, location,
            f"window through the loop at .{effect.header}",
        )
        per_edge: Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]] = {}
        for edge, step in effect.exits.items():
            out_a = a + step.nock if a is not None and step.nock is not None else None
            out_b = _max_opt(
                b + step.nock
                if b is not None and step.nock is not None
                else None,
                step.tail,
            )
            per_edge[edge] = (out_a, out_b)
        return per_edge

    # -- loops -------------------------------------------------------------

    def _summarize_loop(
        self,
        func: Function,
        cfg: CFG,
        nest: LoopNest,
        loop: Loop,
        loop_effects: Dict[str, _LoopEffect],
    ) -> _LoopEffect:
        body = self._analyze_region(
            func, cfg, nest, loop, loop_effects, (0.0, None)
        )
        header_loc = Location(func.name, loop.header)
        it, ltb = body.latch if body.latch is not None else (None, None)
        cond = min(body.cond_sites, key=lambda c: c.every) if body.cond_sites else None
        trips = loop.maxiter
        if trips is None:
            trips = self.inferred_bounds.get((func.name, loop.header))

        fire_possible = cond is not None and (trips is None or trips >= cond.every)
        if it is not None and trips is None and not fire_possible:
            rule = RULES["ENER002"]
            self.sink.add(
                Finding(
                    rule_id=rule.rule_id,
                    severity=rule.default_severity,
                    location=header_loc,
                    message=(
                        f"loop at .{loop.header} has a checkpoint-free "
                        f"path from header to latch, no trip bound, and "
                        f"no conditional latch checkpoint: its worst-case "
                        f"checkpoint-to-checkpoint energy is unbounded"
                    ),
                    details={"loop": loop.header},
                )
            )
            it = None  # already reported; avoid cascading window errors

        # Max checkpoint-free full iterations, from two viewpoints:
        #
        # - ``spins``/``growth`` — *additional* iterations after a window
        #   (re)opened inside the loop (an internal close consumed one of
        #   the ``trips`` passes, a fire resets the counter): trips - 1,
        #   or every - 1 once a conditional latch checkpoint is in play;
        # - ``entry_spins``/``entry_growth`` — iterations on a traversal
        #   that *enters and leaves* the loop without checkpointing. A
        #   while-shaped loop runs all ``trips`` full iterations and then
        #   exits from the header, so the exit-edge state (header-only)
        #   must ride on trips full iterations, not trips - 1 (using
        #   trips - 1 under-counted every nock/tail/peek by one iteration
        #   — falsified by the telemetry headroom report).
        if it is None:
            spins = 0
            entry_spins = 0
        elif cond is not None:
            spins = cond.every - 1
            entry_spins = cond.every - 1
            if trips is not None:
                spins = min(spins, trips - 1)
                entry_spins = min(entry_spins, trips)
        else:
            spins = (trips or 1) - 1
            entry_spins = trips or 1
        spins = max(spins, 0)
        entry_spins = max(entry_spins, 0)
        growth = spins * it if it is not None else 0.0
        entry_growth = entry_spins * it if it is not None else 0.0

        # Absolute windows that live entirely inside the loop.
        starts = [ltb]
        if fire_possible and cond is not None:
            starts.append(cond.restore)
        start = _max_opt(*starts)
        if start is not None:
            self._check_window(
                start + growth, body.peek, header_loc,
                f"window re-entering the loop at .{loop.header}",
            )
            for cid, p in body.peek_by.items():
                self._note_close(cid, start + growth + p)
            if fire_possible and cond is not None:
                per_round = cond.every if trips is None else min(cond.every, trips)
                fire_base = start + (per_round * it if it is not None else 0.0)
                self._check_window(
                    fire_base, cond.save, cond.location,
                    f"window closing at conditional checkpoint "
                    f"#{cond.ckpt_id} (fires every {cond.every} "
                    f"iterations; save {cond.save:.1f} nJ)",
                    close_id=cond.ckpt_id,
                )

        # Checkpoint-free prefix exposure seen from the loop entry. The
        # in-pass prefix ``body.peek`` belongs to one of the body-running
        # passes, so it rides on ``growth``; the conservative
        # ``entry_growth`` also covers a header-only prefix after the
        # final full iteration.
        peek = body.peek + entry_growth
        peek_by = {cid: p + growth for cid, p in body.peek_by.items()}
        if fire_possible and cond is not None and it is not None:
            peek = max(peek, growth + it + cond.save)
            _bump_close(peek_by, cond.ckpt_id, growth + it + cond.save)

        exits: Dict[Tuple[str, str], StepEffect] = {}
        for edge, (a_e, b_e) in body.exits.items():
            nock_e = a_e + entry_growth if a_e is not None else None
            tail_parts = [b_e]
            if a_e is not None:
                if ltb is not None:
                    tail_parts.append(ltb + growth + a_e)
                if fire_possible and cond is not None:
                    tail_parts.append(cond.restore + growth + a_e)
            exits[edge] = StepEffect(
                nock=nock_e, peek=peek, tail=_max_opt(*tail_parts),
                peek_by=peek_by,
            )
        return _LoopEffect(
            header=loop.header, peek=peek, exits=exits, peek_by=peek_by
        )

    # -- window accounting -------------------------------------------------

    def _note_close(self, close_id: int, total: float) -> None:
        """Attribute an absolute window closing at ``close_id`` without
        re-checking it against EB: the enclosing aggregate peek check at
        the same program point already reports any violation, so this
        only sharpens :attr:`segment_bounds` attribution."""
        self.worst_window = max(self.worst_window, total)
        if total > self.segment_bounds.get(close_id, 0.0):
            self.segment_bounds[close_id] = total

    def _check_window(
        self,
        window: Optional[float],
        extra: float,
        location: Location,
        context: str,
        close_id: Optional[int] = None,
    ) -> None:
        """Record/flag the absolute window ``window + extra``.

        ``close_id`` marks windows that *close* at a checkpoint save:
        their totals also feed :attr:`segment_bounds` under that id."""
        if window is None:
            return
        total = window + extra
        self.worst_window = max(self.worst_window, total)
        if close_id is not None:
            previous = self.segment_bounds.get(close_id, 0.0)
            if total > previous:
                self.segment_bounds[close_id] = total
        if total > self.eb + self._tol:
            rule = RULES["ENER001"]
            self.sink.add(
                Finding(
                    rule_id=rule.rule_id,
                    severity=rule.default_severity,
                    location=location,
                    message=(
                        f"worst-case energy window {total:.1f} nJ exceeds "
                        f"the budget EB={self.eb:g} nJ ({context}); a "
                        f"wait-mode runtime dies mid-segment here"
                    ),
                    details={
                        "window_nj": round(total, 3),
                        "eb_nj": self.eb,
                        "context": context,
                    },
                )
            )


def certify_energy(
    module: Module,
    model: EnergyModel,
    eb: float,
    sink: FindingSink,
    inferred_bounds: Optional[Dict[Tuple[str, str], int]] = None,
) -> EnergyCertifier:
    """Run the certifier; returns it for its summaries/statistics.

    ``inferred_bounds`` supplies proven trip counts for loops without an
    ``@maxiter`` (see :mod:`repro.analysis.ranges`), turning previously
    ENER002-uncertifiable loops certifiable."""
    certifier = EnergyCertifier(module, model, eb, sink, inferred_bounds)
    certifier.run()
    return certifier
