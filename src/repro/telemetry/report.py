"""The human-readable trace report.

Distills a JSONL trace into the three things a person tunes with:

1. **segment-energy headroom** — per checkpoint: the observed maximum
   committed window energy across all runs vs the static certifier's
   proven bound vs EB, with an EB-utilisation bar. Observed must never
   exceed the bound (that would falsify the certifier), and the bound
   never exceeds EB on a feasible placement; a violation renders with
   ``!!`` and makes :func:`headroom_violations` non-empty (the CLI turns
   that into exit status 1).
2. **checkpoint traffic** — save/restore/skip/failure/reboot totals.
3. **phase-time breakdown** — where compile time went, summed per span
   name (nested spans each report their own inclusive time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Slack for float round-trips through JSON; observed windows exceeding
#: the certified bound by more than this are real violations.
HEADROOM_TOL = 1e-6

#: Width of the EB-utilisation bar, in characters.
BAR_WIDTH = 24


@dataclass
class SegmentStat:
    """One checkpoint's windows, aggregated over every traced run."""

    benchmark: str
    technique: str
    eb: Optional[float]
    ckpt: Any
    observed_max: float = 0.0
    closes: int = 0
    #: Static certifier's worst case for windows closing here (None when
    #: the trace carries no segment-bound events for this placement).
    bound: Optional[float] = None

    @property
    def utilization(self) -> Optional[float]:
        if not self.eb:
            return None
        return self.observed_max / self.eb

    @property
    def violates(self) -> bool:
        return (
            self.bound is not None
            and self.observed_max > self.bound + HEADROOM_TOL
        )


@dataclass
class TraceSummary:
    meta: Dict[str, Any] = field(default_factory=dict)
    segments: List[SegmentStat] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)
    #: span name -> (count, total microseconds), insertion-ordered.
    phases: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    runs: int = 0


def _seg_key(attrs: Dict[str, Any]) -> Tuple[str, str, Optional[float], Any]:
    return (
        str(attrs.get("benchmark", "?")),
        str(attrs.get("technique", "?")),
        attrs.get("eb"),
        attrs.get("ckpt"),
    )


def analyze(records: List[Dict[str, Any]]) -> TraceSummary:
    """Aggregate validated trace records into a :class:`TraceSummary`."""
    summary = TraceSummary()
    segments: Dict[Tuple, SegmentStat] = {}
    run_ids = set()

    for record in records:
        kind = record.get("kind")
        if kind == "header":
            summary.meta = record.get("meta", {})
            continue
        if kind == "span":
            count, total = summary.phases.get(record["name"], (0, 0))
            summary.phases[record["name"]] = (
                count + 1, total + record.get("dur", 0)
            )
            continue
        if kind != "event":
            continue
        name = record["name"]
        attrs = record.get("attrs", {})
        if record.get("track") == "runtime":
            summary.totals[name] = summary.totals.get(name, 0) + 1
            if "run" in attrs:
                run_ids.add(attrs["run"])
        if name == "ckpt-save":
            key = _seg_key(attrs)
            stat = segments.get(key)
            if stat is None:
                stat = segments[key] = SegmentStat(
                    benchmark=key[0], technique=key[1], eb=key[2],
                    ckpt=key[3],
                )
            stat.closes += 1
            window = float(attrs.get("window_nj", 0.0))
            stat.observed_max = max(stat.observed_max, window)
        elif name == "segment-bound":
            key = _seg_key(attrs)
            stat = segments.get(key)
            if stat is None:
                stat = segments[key] = SegmentStat(
                    benchmark=key[0], technique=key[1], eb=key[2],
                    ckpt=key[3],
                )
            bound = float(attrs.get("bound_nj", 0.0))
            stat.bound = max(stat.bound or 0.0, bound)
            if stat.eb is None and "eb_nj" in attrs:
                stat.eb = float(attrs["eb_nj"])

    summary.segments = sorted(
        segments.values(),
        key=lambda s: s.observed_max,
        reverse=True,
    )
    summary.runs = len(run_ids)
    return summary


def headroom_violations(summary: TraceSummary) -> List[SegmentStat]:
    """Segments whose observed max exceeds the certified static bound."""
    return [seg for seg in summary.segments if seg.violates]


# ---------------------------------------------------------------- render


def _bar(fraction: Optional[float]) -> str:
    if fraction is None:
        return " " * BAR_WIDTH
    filled = min(max(int(round(fraction * BAR_WIDTH)), 0), BAR_WIDTH)
    return "#" * filled + "." * (BAR_WIDTH - filled)


def _fmt(value: Optional[float]) -> str:
    return f"{value:10.1f}" if value is not None else " " * 10


def render(summary: TraceSummary, top: Optional[int] = 10) -> str:
    """The text report; ``top`` limits the headroom table (None = all)."""
    lines: List[str] = []
    if summary.meta:
        described = ", ".join(
            f"{k}={v}" for k, v in sorted(summary.meta.items())
        )
        lines.append(f"trace: {described}")
        lines.append("")

    lines.append(
        "segment-energy headroom "
        "(observed max vs certified bound vs EB, hottest first)"
    )
    shown = summary.segments if top is None else summary.segments[:top]
    bench_w = max([len("benchmark")] + [len(s.benchmark) for s in shown]) + 2
    tech_w = max([len("technique")] + [len(s.technique) for s in shown]) + 2
    header = (
        f"{'benchmark':<{bench_w}}{'technique':<{tech_w}}{'ckpt':>5}"
        f"{'observed':>11}{'bound':>11}{'EB':>11}  EB utilisation"
    )
    lines.append(header)
    for seg in shown:
        flag = " !!" if seg.violates else ""
        util = seg.utilization
        pct = f" {util * 100:5.1f}%" if util is not None else ""
        lines.append(
            f"{seg.benchmark:<{bench_w}}{seg.technique:<{tech_w}}"
            f"{str(seg.ckpt):>5}"
            f"{seg.observed_max:>11.1f}{_fmt(seg.bound)}"
            f"{_fmt(seg.eb)}  |{_bar(util)}|{pct}{flag}"
        )
    if len(summary.segments) > len(shown):
        lines.append(
            f"... {len(summary.segments) - len(shown)} cooler segments "
            f"not shown (--top)"
        )
    if not summary.segments:
        lines.append("(no checkpoint saves in this trace)")

    violations = headroom_violations(summary)
    lines.append("")
    if violations:
        lines.append(
            f"!! {len(violations)} segment(s) exceed their certified "
            f"bound — the static certifier is falsified"
        )
    else:
        certified = sum(1 for s in summary.segments if s.bound is not None)
        lines.append(
            f"headroom ok: {certified} certified segment(s), every "
            f"observed window <= its static bound"
        )

    lines.append("")
    lines.append(f"checkpoint traffic across {summary.runs} run(s)")
    for name in (
        "ckpt-save", "ckpt-restore", "ckpt-skip", "migrate",
        "power-failure", "reboot",
    ):
        if name in summary.totals:
            lines.append(f"  {name:<14}{summary.totals[name]:>8}")
    if not any(
        name in summary.totals
        for name in ("ckpt-save", "ckpt-restore", "power-failure")
    ):
        lines.append("  (no runtime events in this trace)")

    if summary.phases:
        lines.append("")
        lines.append("compile-phase breakdown (inclusive, per span name)")
        width = max(len(name) for name in summary.phases) + 2
        for name, (count, total_us) in sorted(
            summary.phases.items(), key=lambda kv: kv[1][1], reverse=True
        ):
            lines.append(
                f"  {name:<{width}}{total_us / 1000:>9.1f} ms"
                f"  x{count}"
            )
    return "\n".join(lines)
