"""Findings: what the static checker reports.

A :class:`Finding` pins one rule violation to a precise location
(``function/block/instruction``) and renders both as a human-readable
diagnostic line and as a JSON-able dict, so the CLI can serve terminals
and CI tooling from the same objects. :func:`sarif_document` exports a
batch of findings as SARIF 2.1.0 for code-scanning UIs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so comparisons read naturally:
    ``Severity.ERROR > Severity.WARNING``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; "
                f"choose from {[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Location:
    """A program point: function, block label, instruction index.

    ``block``/``index`` may be None for function-level findings (e.g. an
    unbounded loop is reported at its header block without an index).
    """

    function: str
    block: Optional[str] = None
    index: Optional[int] = None

    def __str__(self) -> str:
        text = f"@{self.function}"
        if self.block is not None:
            text += f"/.{self.block}"
            if self.index is not None:
                text += f"[{self.index}]"
        return text

    def sort_key(self):
        return (self.function, self.block or "", self.index or -1)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    severity: Severity
    location: Location
    message: str
    #: Structured context (variable name, measured window, budget, ...);
    #: values must be JSON-serializable.
    details: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return f"{self.rule_id} {self.severity} {self.location}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "function": self.location.function,
            "block": self.location.block,
            "index": self.location.index,
            "message": self.message,
            "details": dict(self.details),
        }

    def sort_key(self):
        # Most severe first, then stable source order.
        return (-int(self.severity), self.location.sort_key(), self.rule_id)


def merge_findings(
    groups: Iterable[Iterable["Finding"]],
    config: Optional[object] = None,
) -> List["Finding"]:
    """Merge findings from several rule families into one stably-ordered
    list (most severe first, then source order).

    When ``config`` (a :class:`repro.staticcheck.rules.RuleConfig`, duck-
    typed here to avoid the import cycle) is given, it is re-applied to
    the merged list with **suppression decided strictly before severity
    overrides**. The order matters: an override applied first would
    rebuild the finding as a new object whose severity no longer matches
    the suppression decision taken per-family, resurrecting findings the
    configuration dropped. Every merged path must normalize through this
    helper rather than re-implementing the two steps.
    """
    merged: List[Finding] = []
    suppressed = getattr(config, "suppressed", frozenset())
    overrides = getattr(config, "severity_overrides", {})
    for group in groups:
        for finding in group:
            if finding.rule_id in suppressed:
                continue
            override = overrides.get(finding.rule_id)
            if override is not None and override != finding.severity:
                finding = Finding(
                    rule_id=finding.rule_id,
                    severity=override,
                    location=finding.location,
                    message=finding.message,
                    details=finding.details,
                )
            merged.append(finding)
    merged.sort(key=Finding.sort_key)
    return merged


# -- SARIF 2.1.0 export ---------------------------------------------------

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: SARIF result levels for this library's severities.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def sarif_document(
    findings: Iterable[Tuple[str, str, "Finding"]],
    *,
    tool_version: Optional[str] = None,
) -> Dict[str, object]:
    """Findings as one SARIF 2.1.0 run.

    ``findings`` yields ``(program, technique, finding)`` triples — the
    CLI checks a matrix of cells and SARIF wants one flat result list.
    Results are deduplicated on (rule, logical location, message) and
    emitted in a stable order (program, technique, severity-major
    finding order), so reruns produce byte-identical documents and
    golden-file tests are meaningful.
    """
    # Imported lazily: rules.py imports this module for Severity/Finding.
    from repro.staticcheck.rules import RULE_SCHEMA_VERSION, RULES

    ordered = sorted(
        findings,
        key=lambda item: (item[0], item[1], item[2].sort_key()),
    )
    results: List[Dict[str, object]] = []
    seen = set()
    used_rules: List[str] = []
    for program, technique, finding in ordered:
        fqn = f"{program}/{technique}:{finding.location}"
        dedup = (finding.rule_id, fqn, finding.message)
        if dedup in seen:
            continue
        seen.add(dedup)
        if finding.rule_id not in used_rules:
            used_rules.append(finding.rule_id)
        results.append({
            "ruleId": finding.rule_id,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [{
                "logicalLocations": [{
                    "fullyQualifiedName": fqn,
                    "kind": "function",
                }],
            }],
            "properties": {
                "program": program,
                "technique": technique,
                "function": finding.location.function,
                "block": finding.location.block,
                "index": finding.location.index,
                "details": dict(finding.details),
            },
        })
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(used_rules))}
    for result in results:
        result["ruleIndex"] = rule_index[result["ruleId"]]
    rules = [
        {
            "id": rule_id,
            "name": RULES[rule_id].title,
            "shortDescription": {"text": RULES[rule_id].title},
            "fullDescription": {"text": RULES[rule_id].description},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[RULES[rule_id].default_severity],
            },
        }
        for rule_id in sorted(used_rules)
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-staticcheck",
                    "version": tool_version
                    or f"rules-v{RULE_SCHEMA_VERSION}",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
