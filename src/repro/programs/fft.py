"""fft — 512-point fixed-point radix-2 FFT on complex input
(MiBench2 ``fft``).

Q14 twiddle factors live in const tables; per-stage >>1 scaling keeps the
i32 working arrays in range. The working set (two 2 KB input arrays, two
2 KB working arrays, two 512 B twiddle tables) is ~9.3 KB — above the 2 KB
VM like the paper's fft (16.7 KB in their build), so the Table I
infeasibility class is preserved.
"""

from __future__ import annotations

import math

from repro.programs.base import Benchmark, format_table

N = 512
LOG2N = 9
Q = 14


def _twiddles():
    sin_t = []
    cos_t = []
    for i in range(N // 2):
        angle = 2.0 * math.pi * i / N
        sin_t.append(int(round(math.sin(angle) * (1 << Q))))
        cos_t.append(int(round(math.cos(angle) * (1 << Q))))
    clamp = lambda v: max(-32768, min(32767, v))
    return [clamp(v) for v in sin_t], [clamp(v) for v in cos_t]


SIN_T, COS_T = _twiddles()

SOURCE = f"""
const i16 sin_tab[{N // 2}] = {format_table(SIN_T)};
const i16 cos_tab[{N // 2}] = {format_table(COS_T)};

i32 input_re[{N}];
i32 input_im[{N}];
i32 re[{N}];
i32 im[{N}];
u32 spectrum_sum;

void bit_reverse_copy() {{
    for (i32 i = 0; i < {N}; i++) {{
        i32 r = 0;
        for (i32 b = 0; b < {LOG2N}; b++) {{
            r = (r << 1) | ((i >> b) & 1);
        }}
        re[r] = input_re[i];
        im[r] = input_im[i];
    }}
}}

void fft() {{
    bit_reverse_copy();
    i32 step = {N} / 2;
    @maxiter({LOG2N})
    for (i32 len = 2; len <= {N}; len <<= 1) {{
        i32 half = len >> 1;
        @maxiter({N})
        for (i32 base = 0; base < {N}; base += len) {{
            @maxiter({N // 2})
            for (i32 k = 0; k < half; k++) {{
                i32 tw = k * step;
                i32 wr = (i32) cos_tab[tw];
                i32 wi = -(i32) sin_tab[tw];
                i32 a = base + k;
                i32 b = a + half;
                i32 tr = (re[b] * wr - im[b] * wi) >> {Q};
                i32 ti = (re[b] * wi + im[b] * wr) >> {Q};
                i32 ur = re[a];
                i32 ui = im[a];
                re[a] = (ur + tr) >> 1;
                im[a] = (ui + ti) >> 1;
                re[b] = (ur - tr) >> 1;
                im[b] = (ui - ti) >> 1;
            }}
        }}
        step >>= 1;
    }}
}}

void main() {{
    fft();
    u32 acc = 0;
    for (i32 i = 0; i < {N}; i++) {{
        i32 r = re[i];
        i32 m = im[i];
        if (r < 0) {{ r = -r; }}
        if (m < 0) {{ m = -m; }}
        acc += (u32) (r + m);
    }}
    spectrum_sum = acc;
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="fft",
        source=SOURCE,
        input_vars={"input_re": 4096, "input_im": 4096},
        output_vars=["re", "im", "spectrum_sum"],
    )
