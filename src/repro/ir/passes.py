"""Classic IR cleanup passes: constant folding, branch simplification,
jump threading and unreachable-block elimination.

These run *before* checkpoint placement (they change code layout, which
placement treats as final). They deliberately do **not** promote variables
to registers — the paper's setting keeps variables memory-resident so the
allocation passes can reason about them (§II-A) — so loads/stores are
untouched except where their operands fold.

Use :func:`optimize_module` for the standard pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Instruction,
    Jump,
    Move,
    Opcode,
    UnOp,
    UnaryOpcode,
)
from repro.ir.module import Module
from repro.ir.values import Const, Register, Value


def _fold_binop(op: Opcode, a: int, b: int, dest_type) -> Optional[int]:
    """Evaluate a binary op on constants with the interpreter's semantics;
    None when the operation would trap (division by zero stays in the code
    so the runtime error is preserved)."""
    if op is Opcode.ADD:
        result = a + b
    elif op is Opcode.SUB:
        result = a - b
    elif op is Opcode.MUL:
        result = a * b
    elif op is Opcode.DIV:
        if b == 0:
            return None
        result = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            result = -result
    elif op is Opcode.REM:
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        result = a - quotient * b
    elif op is Opcode.AND:
        result = a & b
    elif op is Opcode.OR:
        result = a | b
    elif op is Opcode.XOR:
        result = a ^ b
    elif op is Opcode.SHL:
        result = a << (b & 31)
    elif op is Opcode.SHR:
        result = a >> (b & 31)
    elif op is Opcode.EQ:
        result = int(a == b)
    elif op is Opcode.NE:
        result = int(a != b)
    elif op is Opcode.LT:
        result = int(a < b)
    elif op is Opcode.LE:
        result = int(a <= b)
    elif op is Opcode.GT:
        result = int(a > b)
    else:
        result = int(a >= b)
    return dest_type.wrap(result)


class _ConstEnv:
    """Block-local constant tracking for registers (registers are written
    once per block in practice, but the analysis stays sound for re-writes
    by updating the binding at each definition)."""

    def __init__(self) -> None:
        self.values: Dict[str, int] = {}

    def resolve(self, value: Value) -> Value:
        if isinstance(value, Register) and value.name in self.values:
            return Const(value.type.wrap(self.values[value.name]), value.type)
        return value

    def define(self, reg: Register, value: Optional[int]) -> None:
        if value is None:
            self.values.pop(reg.name, None)
        else:
            self.values[reg.name] = value


def fold_constants(func: Function) -> int:
    """Block-local constant folding and copy propagation through Moves.

    Returns the number of instructions simplified. Cross-block registers
    (e.g. the short-circuit result registers) are never folded: the
    environment resets at block entry.
    """
    folded = 0
    for block in func.blocks.values():
        env = _ConstEnv()
        new_instructions: List[Instruction] = []
        for inst in block.instructions:
            if isinstance(inst, Move):
                src = env.resolve(inst.src)
                if isinstance(src, Const):
                    env.define(inst.dest, inst.dest.type.wrap(src.value))
                    new_instructions.append(Move(inst.dest, src))
                    folded += 1 if src is not inst.src else 0
                    continue
                env.define(inst.dest, None)
                new_instructions.append(inst)
            elif isinstance(inst, UnOp):
                src = env.resolve(inst.src)
                if isinstance(src, Const):
                    if inst.op is UnaryOpcode.NEG:
                        value = -src.value
                    elif inst.op is UnaryOpcode.NOT:
                        value = ~src.value
                    else:
                        value = int(src.value == 0)
                    value = inst.dest.type.wrap(value)
                    env.define(inst.dest, value)
                    new_instructions.append(
                        Move(inst.dest, Const(value, inst.dest.type))
                    )
                    folded += 1
                    continue
                env.define(inst.dest, None)
                new_instructions.append(inst)
            elif isinstance(inst, BinOp):
                lhs = env.resolve(inst.lhs)
                rhs = env.resolve(inst.rhs)
                if isinstance(lhs, Const) and isinstance(rhs, Const):
                    value = _fold_binop(
                        inst.op, lhs.value, rhs.value, inst.dest.type
                    )
                    if value is not None:
                        env.define(inst.dest, value)
                        new_instructions.append(
                            Move(inst.dest, Const(value, inst.dest.type))
                        )
                        folded += 1
                        continue
                if lhs is not inst.lhs or rhs is not inst.rhs:
                    folded += 1
                env.define(inst.dest, None)
                new_instructions.append(BinOp(inst.op, inst.dest, lhs, rhs))
            elif isinstance(inst, Branch):
                cond = env.resolve(inst.cond)
                if isinstance(cond, Const):
                    target = inst.if_true if cond.value != 0 else inst.if_false
                    new_instructions.append(Jump(target))
                    folded += 1
                else:
                    new_instructions.append(inst)
            else:
                for reg in inst.defs():
                    env.define(reg, None)
                new_instructions.append(inst)
        block.instructions = new_instructions
    return folded


def thread_jumps(func: Function) -> int:
    """Redirect edges that land on empty forwarding blocks (a lone Jump).

    The forwarding blocks themselves become unreachable and are removed by
    :func:`remove_unreachable_blocks`. Self-forwarding cycles are left
    alone. Blocks holding checkpoint instructions are never threaded away.
    """
    forwards: Dict[str, str] = {}
    for label, block in func.blocks.items():
        if len(block.instructions) == 1 and isinstance(
            block.instructions[0], Jump
        ):
            forwards[label] = block.instructions[0].target

    def final_target(label: str) -> str:
        seen = {label}
        while label in forwards:
            label = forwards[label]
            if label in seen:
                return label  # cycle: give up
            seen.add(label)
        return label

    changed = 0
    for block in func.blocks.values():
        term = block.terminator
        if isinstance(term, Jump):
            target = final_target(term.target)
            if target != term.target and target != block.label:
                term.target = target
                changed += 1
        elif isinstance(term, Branch):
            for attr in ("if_true", "if_false"):
                target = final_target(getattr(term, attr))
                if target != getattr(term, attr) and target != block.label:
                    setattr(term, attr, target)
                    changed += 1
    # The entry block may itself be a forwarder; don't remove it (callers
    # rely on the first block being the entry), remove_unreachable keeps it.
    return changed


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks unreachable from the entry. Returns how many."""
    reachable: Set[str] = set()
    work = [func.entry.label]
    while work:
        label = work.pop()
        if label in reachable:
            continue
        reachable.add(label)
        work.extend(func.blocks[label].successor_labels())
    doomed = [label for label in func.blocks if label not in reachable]
    for label in doomed:
        del func.blocks[label]
        func.loop_maxiter.pop(label, None)
        func.atomic_ranges = [
            r for r in func.atomic_ranges if r[0] != label
        ]
    return len(doomed)


def optimize_function(func: Function) -> Dict[str, int]:
    """Run the standard pipeline to a fixpoint on one function."""
    stats = {"folded": 0, "threaded": 0, "removed_blocks": 0}
    for _ in range(8):  # fixpoint bound; each round strictly shrinks work
        folded = fold_constants(func)
        threaded = thread_jumps(func)
        removed = remove_unreachable_blocks(func)
        stats["folded"] += folded
        stats["threaded"] += threaded
        stats["removed_blocks"] += removed
        if not (folded or threaded or removed):
            break
    return stats


def optimize_module(module: Module) -> Dict[str, int]:
    """Optimize every function in place; returns aggregate statistics."""
    totals = {"folded": 0, "threaded": 0, "removed_blocks": 0}
    for func in module.functions.values():
        stats = optimize_function(func)
        for key, value in stats.items():
            totals[key] += value
    return totals
