"""Per-process metrics sidecars and the deterministic cross-process merge.

Worker pools (:mod:`repro.experiments.engine`, testkit sweeps) cannot
share one in-memory registry — each process accumulates its own
:class:`~repro.telemetry.metrics.MetricsRegistry` and flushes it to a
*sidecar*: one JSONL file per process in a shared metrics directory,
named ``metrics-<pid>.jsonl`` (collision-free because pids are unique
among live processes and each worker owns exactly one file, rewritten
atomically after every unit of work so a crash never loses more than the
cell in flight).

A sidecar is a header line followed by one snapshot record per metric::

    {"kind": "metrics_header", "schema": 1, "pid": 1234, "meta": {...}}
    {"kind": "counter", "name": "interp.ckpt_saves", "value": 812}
    {"kind": "gauge", "name": "engine.heartbeat_us", "value": 9.1e8, ...}
    {"kind": "histogram", "name": "engine.cells_per_worker", ...}

:func:`rollup_directory` reads every ``metrics-*.jsonl`` in sorted
filename order and folds them with the registry's commutative merge, so
serial and parallel runs of the same work produce identical rollups for
deterministic counters (pinned by ``tests/test_metrics_rollup.py``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .metrics import (
    METRICS_SCHEMA,
    MetricsError,
    MetricsRegistry,
    validate_metric_record,
)

SIDECAR_PREFIX = "metrics-"
SIDECAR_SUFFIX = ".jsonl"


def sidecar_path(metrics_dir: str, pid: Optional[int] = None) -> str:
    """This process's sidecar path inside ``metrics_dir``."""
    if pid is None:
        pid = os.getpid()
    return os.path.join(metrics_dir, f"{SIDECAR_PREFIX}{pid}{SIDECAR_SUFFIX}")


def write_sidecar(
    registry: MetricsRegistry, metrics_dir: str, pid: Optional[int] = None
) -> str:
    """Atomically (re)write this process's sidecar: full snapshot via a
    temp file + rename, so readers never observe a torn file and a crash
    mid-flush leaves the previous complete snapshot in place."""
    os.makedirs(metrics_dir, exist_ok=True)
    path = sidecar_path(metrics_dir, pid=pid)
    header = {
        "kind": "metrics_header",
        "schema": METRICS_SCHEMA,
        "pid": os.getpid() if pid is None else pid,
        "meta": registry.meta,
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(record, sort_keys=True) for record in registry.snapshot()
    )
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    os.replace(tmp, path)
    return path


def read_sidecar(path: str) -> List[Dict[str, Any]]:
    """Parse and validate one sidecar; returns its metric records (header
    excluded). Raises :class:`MetricsError` on malformed content."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MetricsError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if lineno == 1:
                if (
                    not isinstance(record, dict)
                    or record.get("kind") != "metrics_header"
                ):
                    raise MetricsError(
                        f"{path}:1: sidecar must start with a "
                        f"metrics_header record"
                    )
                if record.get("schema") != METRICS_SCHEMA:
                    raise MetricsError(
                        f"{path}:1: sidecar schema {record.get('schema')!r} "
                        f"!= supported {METRICS_SCHEMA}"
                    )
                continue
            validate_metric_record(record)
            records.append(record)
    if not records and not os.path.getsize(path):
        raise MetricsError(f"{path}: empty sidecar (no header)")
    return records


def rollup_directory(
    metrics_dir: str, into: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Merge every ``metrics-*.jsonl`` under ``metrics_dir`` (sorted
    filename order — merge order is irrelevant by construction, sorting
    just makes failures reproducible) into ``into`` (or a fresh
    registry)."""
    registry = into if into is not None else MetricsRegistry()
    if not os.path.isdir(metrics_dir):
        return registry
    for name in sorted(os.listdir(metrics_dir)):
        if not (
            name.startswith(SIDECAR_PREFIX) and name.endswith(SIDECAR_SUFFIX)
        ):
            continue
        registry.merge_records(read_sidecar(os.path.join(metrics_dir, name)))
    return registry


def rollup_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """The manifest-embeddable rollup object: schema + sorted records."""
    return {
        "schema": METRICS_SCHEMA,
        "metrics": registry.snapshot(),
    }


# ------------------------------------------------------- stats bridging


def publish_cache_stats(
    registry: MetricsRegistry, stats: Dict[str, Any]
) -> None:
    """Fold an ArtifactCache ``stats_dict()`` into ``registry`` as
    ``cache.*`` counters — the single path both the ``--cache-stats``
    stderr line and the trace/manifest rollups are derived from."""
    for name in ("hits", "misses", "stores", "pruned"):
        value = int(stats.get(name, 0))
        if value:
            registry.counter(f"cache.{name}").add(value)
    for category, triple in sorted(
        (stats.get("categories") or {}).items()
    ):
        for name in ("hits", "misses", "stores"):
            value = int(triple.get(name, 0))
            if value:
                registry.counter(f"cache.{category}.{name}").add(value)


def publish_diffemu_stats(
    registry: MetricsRegistry, stats: Dict[str, Any]
) -> None:
    """Fold a diffemu planner ``stats`` dict (cells synthesized / forked
    / cold, tapes recorded) into ``registry`` as ``diffemu.*`` counters."""
    for name, value in sorted(stats.items()):
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        if value:
            registry.counter(f"diffemu.{name}").add(value)
