"""Checkpoint runtime policies and snapshots.

Two families of checkpointing runtimes exist in the paper's evaluation:

- **wait mode** (SCHEMATIC, ROCKCLIMB — Fig. 3): on reaching an enabled
  checkpoint, save volatile data to NVM, sleep until the capacitor is fully
  replenished, restore volatile data, continue. Execution never rolls back.
- **roll-back mode** (RATCHET, MEMENTOS, ALFRED): run until the power
  fails, then restart from the last saved snapshot and *re-execute* the
  lost work. MEMENTOS additionally decides at run time whether to skip a
  checkpoint given the measured remaining energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: MEMENTOS saves a checkpoint when the measured remaining energy drops
#: below this fraction of a full capacitor (the paper's "voltage threshold"
#: emulated on the energy budget).
MEMENTOS_THRESHOLD = 0.5


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a technique's runtime treats checkpoint instructions.

    Attributes:
        name: technique name (reporting only).
        wait_for_full_recharge: wait mode if True, roll-back mode otherwise.
        skip_threshold: if not None, a checkpoint is *skipped* unless the
            remaining capacitor fraction is below this value (MEMENTOS's
            dynamic decision). Wait-mode techniques never skip.
        check_energy: small fixed energy (nJ) of the voltage measurement
            performed at each potential checkpoint when ``skip_threshold``
            is set.
    """

    name: str
    wait_for_full_recharge: bool
    skip_threshold: Optional[float] = None
    check_energy: float = 5.0

    @classmethod
    def wait_mode(cls, name: str) -> "CheckpointPolicy":
        return cls(name=name, wait_for_full_recharge=True)

    @classmethod
    def rollback_mode(
        cls, name: str, skip_threshold: Optional[float] = None
    ) -> "CheckpointPolicy":
        return cls(
            name=name,
            wait_for_full_recharge=False,
            skip_threshold=skip_threshold,
        )


@dataclass
class FrameSnapshot:
    """Serialized activation record."""

    function: str
    block: str
    index: int
    registers: Dict[str, int]
    ref_bindings: Dict[str, str]
    ret_target: Optional[str]  # caller register receiving the return value


@dataclass
class Snapshot:
    """Everything needed to resume after a power failure: the serialized
    call stack at the checkpoint. VM contents are *not* stored — the save
    preceding the snapshot flushed every dirty live variable to its NVM
    home, so the restore path reconstructs VM from NVM (which also models
    the real systems' behaviour: RAM contents never survive an outage).
    """

    ckpt_id: int
    frames: List[FrameSnapshot]
    #: Payload size of the variables the restore is billed for.
    payload_bytes: int = 0
