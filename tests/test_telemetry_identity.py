"""The telemetry-off contract and the headroom cross-validation.

Two guarantees the subsystem makes:

1. **Bit-identity when disabled** — enabling telemetry for one run and
   then disabling it must leave every subsequent emulation bit-identical
   to a process that never enabled it; and even *while* enabled, tracing
   must not perturb emulation results (it only observes).
2. **Observed <= certified <= EB** — for wait-mode placements, every
   committed segment window observed at runtime stays within the static
   certifier's per-checkpoint bound, which itself stays within EB. This
   is the contract ``python -m repro.telemetry report`` enforces; here it
   runs in-process over real corpus programs.
"""

import pytest

from repro import telemetry
from repro.emulator import PowerManager, run_intermittent
from repro.energy import msp430fr5969_platform
from repro.experiments.common import emit_segment_bounds
from repro.telemetry.exporters import trace_records
from repro.telemetry.report import HEADROOM_TOL, analyze, headroom_violations
from repro.testkit.corpus import compile_for, load_program

EB = 3000.0


@pytest.fixture(autouse=True)
def _no_global_leak():
    yield
    assert telemetry.get() is None, "test leaked an enabled telemetry handle"
    telemetry.disable()


def _emulate(compiled, plat, inputs):
    return run_intermittent(
        compiled.module, plat.model, compiled.policy,
        PowerManager.energy_budget(EB), vm_size=plat.vm_size,
        inputs=inputs,
    )


def _compiled(program, technique):
    plat = msp430fr5969_platform(eb=EB)
    bench = load_program(program)
    compiled = compile_for(
        technique, bench.module, plat,
        input_generator=bench.input_generator(),
    )
    return plat, bench, compiled


# -- bit-identity -------------------------------------------------------------


def test_emulation_is_bit_identical_with_telemetry_off_and_on():
    plat, bench, compiled = _compiled("warloop", "schematic")
    inputs = bench.default_inputs()

    baseline = _emulate(compiled, plat, inputs)  # never enabled
    with telemetry.enabled() as tm:
        traced = _emulate(compiled, plat, inputs)
    after = _emulate(compiled, plat, inputs)  # enabled then disabled

    # The full report dataclass: outputs, energy breakdown, cycle and
    # checkpoint counts, failure offsets — everything.
    assert traced == baseline, "tracing perturbed the emulation"
    assert after == baseline, "a past telemetry session left residue"
    assert tm.events, "the traced run recorded no events"


def test_telemetry_off_emits_nothing_during_emulation():
    plat, bench, compiled = _compiled("warloop", "ratchet")
    _emulate(compiled, plat, bench.default_inputs())
    assert telemetry.get() is None


# -- headroom cross-validation ------------------------------------------------

# (program, technique) pairs covering both wait-mode placements and the
# certifier's trickiest summaries: `calls` exercises Call-dispatch
# accounting, `warloop` while-shaped loop entry/exit traversals.
CORPUS = [
    ("warloop", "schematic"),
    ("warloop", "rockclimb"),
    ("sumloop", "schematic"),
    ("calls", "schematic"),
    ("branchy", "schematic"),
]


@pytest.mark.parametrize("program,technique", CORPUS)
def test_observed_window_within_certified_bound_within_eb(program, technique):
    plat, bench, compiled = _compiled(program, technique)
    if not compiled.feasible:
        pytest.skip(f"{technique} infeasible on {program} at EB={EB}")
    assert compiled.policy.wait_for_full_recharge, (
        "corpus rows must be wait-mode placements (bounds are only "
        "certified there)"
    )

    with telemetry.enabled(meta={"tool": "pytest"}) as tm:
        with tm.scope(benchmark=program, technique=technique, eb=EB):
            emit_segment_bounds(tm, compiled, plat.model, EB)
            report = _emulate(compiled, plat, bench.default_inputs())

    assert report.completed, "wait-mode run must complete under EB power"
    summary = analyze(trace_records(tm))
    assert headroom_violations(summary) == []

    certified = [s for s in summary.segments if s.bound is not None]
    observed = [s for s in certified if s.closes]
    assert certified, "no segment bounds were emitted"
    assert observed, "no certified segment was ever closed at runtime"
    for seg in certified:
        assert seg.observed_max <= seg.bound + HEADROOM_TOL, (
            f"ckpt {seg.ckpt}: observed {seg.observed_max} exceeds "
            f"certified bound {seg.bound}"
        )
        assert seg.bound <= EB + HEADROOM_TOL, (
            f"ckpt {seg.ckpt}: certified bound {seg.bound} exceeds EB {EB}"
        )


def test_bound_is_tight_on_straightline_corpus():
    """On a deterministic single-path program the certifier's worst case
    is the path the emulator takes, so at least one segment's bound is
    *achieved*, not just respected — pinning the two analyses to the
    same energy accounting (a drifting constant would open a gap)."""
    plat, bench, compiled = _compiled("sumloop", "schematic")
    if not compiled.feasible:
        pytest.skip("schematic infeasible on sumloop")
    with telemetry.enabled() as tm:
        with tm.scope(benchmark="sumloop", technique="schematic", eb=EB):
            emit_segment_bounds(tm, compiled, plat.model, EB)
            _emulate(compiled, plat, bench.default_inputs())
    summary = analyze(trace_records(tm))
    tight = [
        s for s in summary.segments
        if s.bound is not None and s.closes
        and abs(s.observed_max - s.bound) <= HEADROOM_TOL
    ]
    assert tight, (
        "no segment achieved its certified bound — the static and "
        "dynamic energy accounting have drifted apart"
    )
