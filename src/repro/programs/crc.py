"""crc — CRC-32 (IEEE 802.3, table-driven) over an input buffer
(MiBench2 ``crc``). Two passes: once over the raw buffer, once over the
buffer XORed with the first pass's result, mirroring the original's
checksum-of-checksums structure.
"""

from __future__ import annotations

from repro.programs.base import Benchmark, format_table

BUF = 512
POLY = 0xEDB88320


def _crc_table():
    table = []
    for i in range(256):
        value = i
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ POLY
            else:
                value >>= 1
        table.append(value)
    return table


SOURCE = f"""
const u32 crc_table[256] = {format_table(_crc_table())};

u8 buffer[{BUF}];
u32 crc_out;
u32 crc_out2;

u32 crc32(u32 seed, u32 mix) {{
    u32 crc = seed;
    for (i32 i = 0; i < {BUF}; i++) {{
        u32 byte = (u32) buffer[i] ^ (mix & 255);
        u32 index = (crc ^ byte) & 255;
        crc = (crc >> 8) ^ crc_table[index];
    }}
    return ~crc;
}}

void main() {{
    crc_out = crc32(0xffffffff, 0);
    crc_out2 = crc32(0xffffffff, crc_out);
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="crc",
        source=SOURCE,
        input_vars={"buffer": 256},
        output_vars=["crc_out", "crc_out2"],
    )
