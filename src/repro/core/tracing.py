"""Execution-trace collection and path extraction (paper §III-A3).

"Path prioritization is performed by extensive instrumentation of the code
with varied input data, to gather execution traces, formed of sequences of
executed basic blocks. Traces are sorted on a per-function basis."

The profiler runs the program under continuous power with seeded random
inputs and records, per function invocation, the sequence of basic blocks
executed. Path extraction then *condenses* those block sequences onto a
region graph: blocks expand to their atoms, collapsed loops contract to
their loop atom, and consecutive repeats (loop iterations) deduplicate.
Loop-body paths are extracted from the iteration sub-sequences between
successive header occurrences.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.loops import Loop
from repro.core.region import RegionGraph
from repro.emulator.interpreter import run_continuous
from repro.energy.model import EnergyModel
from repro.ir.module import Module

#: An input generator: run index -> {global name: values}.
InputGenerator = Callable[[int], Dict[str, List[int]]]


@dataclass
class Profile:
    """Per-function invocation traces with multiplicities."""

    #: function -> [(block label sequence, occurrence count)], sorted by
    #: decreasing count.
    traces: Dict[str, List[Tuple[Tuple[str, ...], int]]] = field(
        default_factory=dict
    )

    def function_traces(self, name: str) -> List[Tuple[Tuple[str, ...], int]]:
        return self.traces.get(name, [])


class _TraceCollector:
    """Reconstructs per-invocation block sequences from the interpreter's
    (function, label) trace callback using a shadow call stack (recursion is
    rejected upstream, so a function name identifies a stack level)."""

    def __init__(self) -> None:
        self.stack: List[Tuple[str, List[str]]] = []
        self.finished: Dict[str, Counter] = {}

    def __call__(self, function: str, label: str) -> None:
        if self.stack and self.stack[-1][0] == function:
            blocks = self.stack[-1][1]
            if not blocks or blocks[-1] != label:
                blocks.append(label)
            return
        # Either a call into a new function, or a return to a caller lower
        # in the stack.
        for depth in range(len(self.stack) - 1, -1, -1):
            if self.stack[depth][0] == function:
                # Return: finalize everything above this level.
                while len(self.stack) - 1 > depth:
                    self._finish(*self.stack.pop())
                blocks = self.stack[-1][1]
                if not blocks or blocks[-1] != label:
                    blocks.append(label)
                return
        self.stack.append((function, [label]))

    def _finish(self, function: str, blocks: List[str]) -> None:
        self.finished.setdefault(function, Counter())[tuple(blocks)] += 1

    def finalize(self) -> None:
        while self.stack:
            self._finish(*self.stack.pop())


def collect_profile(
    module: Module,
    model: EnergyModel,
    input_generator: Optional[InputGenerator] = None,
    runs: int = 4,
    seed: int = 20240301,
    max_instructions: int = 50_000_000,
) -> Profile:
    """Run the program ``runs`` times with varied inputs and collect traces.

    Without an input generator, a default one writes seeded random values
    into every non-const global array/scalar whose name starts with ``in``
    or that is listed nowhere — callers normally pass the benchmark's own
    generator.
    """
    if input_generator is None:
        rng = random.Random(seed)

        def default_gen(_run: int) -> Dict[str, List[int]]:
            inputs: Dict[str, List[int]] = {}
            for name, var in module.globals.items():
                if var.is_const or var.init is not None:
                    continue
                inputs[name] = [
                    rng.randrange(0, max(var.type.max_value, 1) + 1)
                    for _ in range(var.count)
                ]
            return inputs

        input_generator = default_gen

    collector = _TraceCollector()
    for run in range(runs):
        inputs = input_generator(run)
        collector.stack = []
        report = run_continuous(
            module,
            model,
            inputs=inputs,
            trace=collector,
            max_instructions=max_instructions,
        )
        collector.finalize()
        if not report.completed:
            raise RuntimeError(
                f"profiling run {run} did not complete: {report.failure_reason}"
            )

    profile = Profile()
    for function, counter in collector.finished.items():
        profile.traces[function] = sorted(
            counter.items(), key=lambda item: (-item[1], item[0])
        )
    return profile


# ---------------------------------------------------------------- condensation


def condense_block_sequence(
    region: RegionGraph, blocks: Sequence[str]
) -> Optional[Tuple[int, ...]]:
    """Map a block sequence onto a region atom path.

    Blocks inside collapsed loops contract to the loop atom (consecutive
    repeats deduplicated); other blocks expand to their atom lists. Returns
    None if the sequence touches blocks outside the region.
    """
    path: List[int] = []
    for label in blocks:
        if label in region.loop_atom_of:
            uid = region.loop_atom_of[label]
            if not path or path[-1] != uid:
                path.append(uid)
        elif label in region.block_atoms:
            for uid in region.block_atoms[label]:
                path.append(uid)
        else:
            return None
    return tuple(path)


def region_paths_from_traces(
    region: RegionGraph,
    traces: Sequence[Tuple[Tuple[str, ...], int]],
) -> List[Tuple[int, ...]]:
    """Condensed atom paths for a *function-level* region, ordered by
    decreasing trace frequency (duplicates merged)."""
    counter: Counter = Counter()
    order: Dict[Tuple[int, ...], int] = {}
    for blocks, count in traces:
        path = condense_block_sequence(region, blocks)
        if path is None or not path:
            continue
        if path[0] != region.entry_uid:
            continue
        counter[path] += count
        order.setdefault(path, len(order))
    return [
        path
        for path, _ in sorted(
            counter.items(), key=lambda item: (-item[1], order[item[0]])
        )
    ]


def loop_iteration_sequences(
    loop: Loop, blocks: Sequence[str]
) -> List[Tuple[str, ...]]:
    """Split one invocation trace into that loop's iteration sub-sequences.

    Each iteration runs from one occurrence of the loop header to just
    before the next (or to where the trace leaves the loop body)."""
    iterations: List[Tuple[str, ...]] = []
    current: List[str] = []
    inside = False
    for label in blocks:
        if label == loop.header:
            if inside and current:
                iterations.append(tuple(current))
            current = [label]
            inside = True
        elif inside:
            if label in loop.body:
                current.append(label)
            else:
                if current:
                    iterations.append(tuple(current))
                current = []
                inside = False
    if inside and current:
        iterations.append(tuple(current))
    return iterations


def loop_region_paths(
    region: RegionGraph,
    loop: Loop,
    traces: Sequence[Tuple[Tuple[str, ...], int]],
) -> List[Tuple[int, ...]]:
    """Condensed body paths for one loop, by decreasing frequency."""
    counter: Counter = Counter()
    order: Dict[Tuple[int, ...], int] = {}
    for blocks, count in traces:
        for iteration in loop_iteration_sequences(loop, blocks):
            path = condense_block_sequence(region, iteration)
            if path is None or not path or path[0] != region.entry_uid:
                continue
            counter[path] += count
            order.setdefault(path, len(order))
    return [
        path
        for path, _ in sorted(
            counter.items(), key=lambda item: (-item[1], order[item[0]])
        )
    ]
