"""Bench target regenerating Figure 7 (SCHEMATIC vs All-NVM)."""

from conftest import once

from repro.experiments import figure7_allocation_quality


def test_figure7_allocation_quality(benchmark, ctx):
    result = once(benchmark, lambda: figure7_allocation_quality.run(ctx))
    print()
    print(result.render())
    # Paper: ~25% computation-energy reduction, most accesses hit VM.
    assert 0.05 < result.computation_reduction() < 0.6
    assert result.vm_access_share() > 0.5
