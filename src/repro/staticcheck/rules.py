"""The rule catalog: ids, default severities, suppression.

Every diagnostic the checker can emit is declared here with a stable id,
so findings are suppressible (``--suppress WAR002``) and re-classifiable
(severity overrides) without touching analysis code. The analyzers emit
*candidate* findings at the rule's default severity; a
:class:`RuleConfig` then drops suppressed rules and rewrites severities
— that is also how the CLI downgrades in-contract-only rules for
techniques whose runtime contract excludes the triggering schedules
(wait mode, see :data:`repro.testkit.corpus.WAIT_MODE_TECHNIQUES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.staticcheck.findings import Finding, Severity


@dataclass(frozen=True)
class Rule:
    """One diagnostic the checker can produce."""

    rule_id: str
    title: str
    default_severity: Severity
    description: str


_RULES: List[Rule] = [
    Rule(
        "WAR001",
        "scalar NVM write-after-read",
        Severity.ERROR,
        "A scalar NVM variable is read and later written within one "
        "replay region (no taken checkpoint between the accesses). A "
        "power failure after the write replays the region with the "
        "updated value — the re-execution is not idempotent and the "
        "final memory state can differ from a continuous-power run.",
    ),
    Rule(
        "WAR002",
        "array NVM write-after-read",
        Severity.WARNING,
        "An NVM array is read and later written within one replay "
        "region. The analysis is element-insensitive: the read and the "
        "write may target different elements, so this is a may-alias "
        "warning rather than a definite violation.",
    ),
    Rule(
        "ENER001",
        "energy window exceeds the budget",
        Severity.ERROR,
        "The worst-case energy consumed between two successive "
        "checkpoints (including the closing save) exceeds the capacitor "
        "budget EB. A wait-mode runtime compiled for EB would die "
        "mid-segment — the forward-progress guarantee (paper 2II-B) "
        "does not hold.",
    ),
    Rule(
        "ENER002",
        "unbounded checkpoint-free loop",
        Severity.ERROR,
        "A loop has a checkpoint-free path from header to latch, no "
        "trip bound, and no conditional latch checkpoint: its "
        "worst-case checkpoint-to-checkpoint energy is unbounded and "
        "cannot be certified against any finite EB.",
    ),
    Rule(
        "BOUND001",
        "unsound @maxiter annotation",
        Severity.ERROR,
        "A loop's declared @maxiter is smaller than its provable trip "
        "count: the value-range analysis derives an exact iteration "
        "count above the annotation. Placement decisions (back-edge "
        "checkpoint elision, numit windows) and the energy certificate "
        "built on the annotation are void — the loop runs longer than "
        "everything downstream assumed.",
    ),
    Rule(
        "BOUND002",
        "inferred bound for unannotated loop",
        Severity.INFO,
        "An unannotated loop has a provable iteration bound. The "
        "inferred bound is applied automatically during placement, so "
        "the loop gets a real numit window and the energy certifier can "
        "close its checkpoint-free windows without an @maxiter "
        "annotation.",
    ),
    Rule(
        "DEAD001",
        "statically unreachable branch",
        Severity.WARNING,
        "The value-range analysis proves one edge of a conditional "
        "branch can never be taken: the condition is constant over "
        "every reachable state. Dead guards often indicate a wrong "
        "comparison or an impossible sentinel test.",
    ),
    Rule(
        "OOB001",
        "provable out-of-bounds array access",
        Severity.ERROR,
        "Every value the index expression can take at this access lies "
        "outside the array's bounds. The access faults (the emulator "
        "traps) on any execution that reaches it.",
    ),
    Rule(
        "CONS001",
        "non-idempotent region observes its own overwrite",
        Severity.ERROR,
        "A re-executed region reads a non-volatile value it already "
        "overwrote: the first-access ordering has a read of some storage "
        "before a write of the same storage with no taken checkpoint in "
        "between (Surbatovich et al.'s WAR/idempotency condition, "
        "element-sensitive for constant array indices and "
        "interprocedural through callee-first summaries). The second "
        "execution observes the first execution's output, so the final "
        "memory state can differ from a continuous-power run.",
    ),
    Rule(
        "CONS002",
        "repeated input read in a re-executable region",
        Severity.ERROR,
        "A volatile environment input (sensor, ADC, RTC) is sampled "
        "inside a region a power failure can re-execute. The environment "
        "does not roll back with the program: the replay re-samples and "
        "may observe a different value, so the two executions of the "
        "region can diverge in control flow or memory state.",
    ),
    Rule(
        "CONS003",
        "post-restore read of unrestored volatile state",
        Severity.ERROR,
        "After a checkpoint's wake/rollback restore, a VM-resident "
        "variable that the checkpoint's restore_vars provably misses is "
        "read before being fully overwritten. The restore rebuilds "
        "volatile memory from the checkpoint metadata only, so the read "
        "observes unrestored (stale or undefined) state.",
    ),
    Rule(
        "CONS004",
        "checkpointed-data/technique mismatch",
        Severity.ERROR,
        "The allocation pass placed a variable in volatile memory that "
        "the technique's restore set provably misses (or the technique "
        "cannot restore volatile allocations at all). The checkpoint "
        "metadata and the runtime's restore semantics disagree about "
        "who rebuilds this variable after a reboot.",
    ),
    Rule(
        "ALLOC001",
        "VM access without residency",
        Severity.ERROR,
        "An instruction accesses a variable in VM, but no checkpoint on "
        "some path to it established VM residency for that variable "
        "(alloc_after). The access faults even under continuous power.",
    ),
    Rule(
        "ALLOC002",
        "NVM access to a VM-resident variable",
        Severity.WARNING,
        "An instruction accesses the NVM home of a variable that is "
        "VM-resident at that point. The NVM copy is stale until the "
        "next checkpoint save flushes it, so the access may observe an "
        "out-of-date value.",
    ),
    Rule(
        "ALLOC003",
        "VM working set exceeds capacity",
        Severity.ERROR,
        "The VM variables a checkpoint's alloc_after maps into volatile "
        "memory do not fit the platform's VM size.",
    ),
    Rule(
        "CKPT001",
        "checkpoint references unknown variable",
        Severity.ERROR,
        "A checkpoint's save_vars/restore_vars/alloc_after names a "
        "variable that does not exist in the module.",
    ),
    Rule(
        "CKPT002",
        "inconsistent checkpoint metadata",
        Severity.WARNING,
        "A checkpoint's restore_vars includes a variable its "
        "alloc_after does not map to VM (the restore would load a "
        "variable that is not supposed to be VM-resident), or its "
        "save_vars includes a variable that cannot be VM-resident.",
    ),
    Rule(
        "TV001",
        "unmatched observable effect",
        Severity.ERROR,
        "Translation validation could not match an observable effect "
        "(a store to corresponding memory, a volatile-input sample, a "
        "call, or observable control flow) between a matched source/"
        "transformed block pair: the transformed module drops, adds or "
        "changes behaviour a continuously powered run can observe, so "
        "it is not a refinement of its source.",
    ),
    Rule(
        "TV002",
        "observable-order divergence",
        Severity.ERROR,
        "A matched block pair performs the same observable effects in "
        "a different order. Reordered stores or samples change the "
        "states a power failure can expose (and, with intervening "
        "reads, the final memory state), so the inferred simulation "
        "relation does not hold.",
    ),
    Rule(
        "TV003",
        "variable-correspondence violation",
        Severity.ERROR,
        "The inferred variable correspondence between source and "
        "transformed module is violated: a private (transformed-only) "
        "value leaks into an observable effect, a privatized local is "
        "live across basic blocks or escapes by reference, or matched "
        "register state diverges at a block exit.",
    ),
    Rule(
        "TV004",
        "checkpoint at a non-cut point",
        Severity.ERROR,
        "A checkpoint was inserted where the simulation relation "
        "cannot be closed: the block matching cannot align the "
        "checkpoint-carrying control flow with the source CFG (e.g. an "
        "edge-split checkpoint block that is not transparent, or a "
        "checkpoint-only cycle).",
    ),
]

RULES: Dict[str, Rule] = {rule.rule_id: rule for rule in _RULES}

#: Version of the rule family + findings schema. Mixed into the
#: content-addressed cache key for staticcheck results so adding or
#: changing a rule invalidates cached reports, and stamped into SARIF
#: output. Bump whenever a rule's semantics, id set, message format or
#: the certificate layout changes.
RULE_SCHEMA_VERSION = 3


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; choose from {sorted(RULES)}"
        ) from None


def render_catalog() -> str:
    """The rule catalog as shown by ``--list-rules``."""
    lines = []
    for rule in _RULES:
        lines.append(f"{rule.rule_id} [{rule.default_severity}] {rule.title}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


@dataclass(frozen=True)
class RuleConfig:
    """Suppression and severity policy applied to candidate findings."""

    suppressed: FrozenSet[str] = frozenset()
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rule_id in list(self.suppressed) + list(self.severity_overrides):
            get_rule(rule_id)  # raises on unknown ids

    def apply(self, finding: Finding) -> Optional[Finding]:
        """The finding as configured, or None when suppressed."""
        if finding.rule_id in self.suppressed:
            return None
        override = self.severity_overrides.get(finding.rule_id)
        if override is None or override == finding.severity:
            return finding
        return Finding(
            rule_id=finding.rule_id,
            severity=override,
            location=finding.location,
            message=finding.message,
            details=finding.details,
        )
