"""Version of the schematic-repro package."""

__version__ = "1.0.0"
