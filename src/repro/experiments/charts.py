"""ASCII stacked-bar charts for the figure experiments.

The paper's Figures 6-8 are stacked bar charts; these helpers render the
same visual in plain text (no plotting dependency), used by the figure
modules' ``render_chart()`` methods and the ``run_all`` driver.

Category glyphs follow the paper's legend order:
``#`` computation, ``S`` save, ``r`` restore, ``x`` re-execution.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

#: (category key, glyph) in stacking order.
CATEGORY_GLYPHS: Tuple[Tuple[str, str], ...] = (
    ("computation", "#"),
    ("save", "S"),
    ("restore", "r"),
    ("reexecution", "x"),
)


def stacked_bar(
    parts: Dict[str, float], scale: float, width: int
) -> str:
    """One horizontal stacked bar: ``parts`` maps category -> value;
    ``scale`` is value-per-character."""
    if scale <= 0:
        return ""
    bar = []
    for key, glyph in CATEGORY_GLYPHS:
        value = parts.get(key, 0.0)
        cells = int(round(value / scale))
        bar.append(glyph * cells)
    text = "".join(bar)
    return text[:width]


def stacked_bar_chart(
    rows: Sequence[Tuple[str, Optional[Dict[str, float]]]],
    width: int = 60,
    unit: str = "uJ",
    unit_scale: float = 1000.0,
) -> str:
    """Render labeled stacked bars with a shared scale.

    ``rows``: (label, parts) pairs; ``None`` parts renders as "did not
    complete". Values are divided by ``unit_scale`` for the value column.
    """
    totals = [
        sum(parts.values()) for _label, parts in rows if parts is not None
    ]
    peak = max(totals, default=0.0)
    if peak <= 0:
        return "(nothing to chart)"
    scale = peak / width
    lines = [
        "legend: "
        + "  ".join(f"{glyph}={key}" for key, glyph in CATEGORY_GLYPHS)
    ]
    label_width = max((len(label) for label, _ in rows), default=8) + 1
    for label, parts in rows:
        if parts is None:
            lines.append(f"{label:<{label_width}}| (did not complete)")
            continue
        total = sum(parts.values()) / unit_scale
        bar = stacked_bar(parts, scale, width)
        lines.append(f"{label:<{label_width}}|{bar:<{width}} {total:8.1f} {unit}")
    return "\n".join(lines)
