"""Regression tests for the EvaluationContext caching bugs and the disk
cache integration.

Two historical bugs are pinned down here:

1. **Stale run keys** — the in-memory ``_runs`` key omitted the failure
   model and TBPF, so under ``failure_model="cycles"`` two runs with the
   same EB but different periods aliased and the second returned the
   first's outcome.
2. **Hidden re-emulation** — the module-level ``eb_for_tbpf()`` built a
   throwaway ``EvaluationContext`` per call, silently re-running the full
   continuous reference every time.
"""

import dataclasses

import pytest

from repro.experiments import common
from repro.experiments.common import EvaluationContext, eb_for_tbpf
from repro.runner.cache import ArtifactCache

BENCH = "randmath"  # smallest/fastest of the eight


@pytest.fixture
def fresh_shared_ctx(monkeypatch):
    """Isolate the module-level shared context from other tests."""
    monkeypatch.setattr(common, "_SHARED_CTX", None)


# -- bug 1: stale run keys under the cycles model -----------------------------


def test_run_key_includes_failure_model_and_tbpf():
    ctx = EvaluationContext(benchmarks=[BENCH], failure_model="cycles")
    k1 = ctx._run_key("schematic", BENCH, 100.0, 1_000)
    k2 = ctx._run_key("schematic", BENCH, 100.0, 100_000)
    assert k1 != k2, "same EB, different period must be different cells"


def test_run_key_energy_model_normalizes_tbpf():
    # Under the energy model the TBPF does not influence the emulation,
    # so all TBPFs share one cell (this is what makes engine cell
    # planning and direct run() calls agree).
    ctx = EvaluationContext(benchmarks=[BENCH])
    assert ctx._run_key("schematic", BENCH, 100.0, 1_000) == ctx._run_key(
        "schematic", BENCH, 100.0, None
    )


def test_cycles_model_distinct_outcomes_per_tbpf():
    """The original symptom: same EB, different TBPF returned the stale
    first outcome. The two periods must now emulate independently."""
    ctx = EvaluationContext(benchmarks=[BENCH], failure_model="cycles")
    eb = ctx.eb_for_tbpf(BENCH, 100_000)  # generous budget for both
    short = ctx.run("schematic", BENCH, eb, tbpf=1_000)
    long = ctx.run("schematic", BENCH, eb, tbpf=100_000)
    assert short is not long
    assert short.report is not None and long.report is not None
    assert short.report.power_failures != long.report.power_failures


def test_cycles_model_requires_tbpf():
    ctx = EvaluationContext(benchmarks=[BENCH], failure_model="cycles")
    with pytest.raises(ValueError, match="TBPF"):
        ctx.run("schematic", BENCH, 1000.0)


# -- bug 2: eb_for_tbpf hidden re-emulation -----------------------------------


def test_eb_for_tbpf_reference_runs_once(fresh_shared_ctx, monkeypatch):
    calls = []
    real = common.run_continuous

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(common, "run_continuous", counting)
    first = eb_for_tbpf(BENCH, 1_000)
    second = eb_for_tbpf(BENCH, 10_000)
    third = eb_for_tbpf(BENCH, 1_000)
    assert len(calls) == 1, (
        "module-level eb_for_tbpf must memoize the reference run "
        f"(ran {len(calls)} times)"
    )
    assert second == pytest.approx(first * 10)
    assert third == first


def test_eb_for_tbpf_accepts_explicit_context(fresh_shared_ctx):
    ctx = EvaluationContext(benchmarks=[BENCH])
    assert eb_for_tbpf(BENCH, 1_000, ctx=ctx) == ctx.eb_for_tbpf(BENCH, 1_000)
    assert common._SHARED_CTX is None, "explicit ctx must not build the shared one"


# -- disk cache integration ---------------------------------------------------


def _count_emulations(monkeypatch, bucket):
    for name in ("run_continuous", "run_intermittent"):
        real = getattr(common, name)

        def counting(*args, __real=real, **kwargs):
            bucket.append(1)
            return __real(*args, **kwargs)

        monkeypatch.setattr(common, name, counting)


def test_warm_context_skips_all_emulation(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path / "cache")
    cold = EvaluationContext(benchmarks=[BENCH], cache=cache)
    eb = cold.eb_for_tbpf(BENCH, 10_000)
    outcome = cold.run("schematic", BENCH, eb)
    assert cache.stores > 0

    emulations = []
    _count_emulations(monkeypatch, emulations)
    warm = EvaluationContext(
        benchmarks=[BENCH], cache=ArtifactCache(tmp_path / "cache")
    )
    warm_outcome = warm.run("schematic", BENCH, warm.eb_for_tbpf(BENCH, 10_000))
    assert emulations == [], "warm context must not touch the emulator"
    assert dataclasses.asdict(warm_outcome) == dataclasses.asdict(outcome)


def test_module_edit_invalidates_cache(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path / "cache")
    cold = EvaluationContext(benchmarks=[BENCH], cache=cache)
    cold.run("schematic", BENCH, cold.eb_for_tbpf(BENCH, 10_000))

    emulations = []
    _count_emulations(monkeypatch, emulations)
    edited = EvaluationContext(
        benchmarks=[BENCH], cache=ArtifactCache(tmp_path / "cache")
    )
    # Simulate an edit to the benchmark source: the module fingerprint
    # changes, so every downstream artifact must be recomputed.
    edited._fingerprints[BENCH] = ArtifactCache.text_fingerprint("edited")
    edited.run("schematic", BENCH, edited.eb_for_tbpf(BENCH, 10_000))
    assert emulations, "changed module text must miss the cache"


def test_no_cache_context_stays_pure_in_memory(tmp_path):
    ctx = EvaluationContext(benchmarks=[BENCH], cache=None)
    a = ctx.run("schematic", BENCH, ctx.eb_for_tbpf(BENCH, 10_000))
    b = ctx.run("schematic", BENCH, ctx.eb_for_tbpf(BENCH, 10_000))
    assert a is b, "in-memory memoization must still hold without a cache"
