"""The SCHEMATIC compiler driver.

:class:`Schematic` ties the whole pipeline together: profile -> analyze
functions callee-first (loops bottom-up inside each) -> rewrite the program
(access spaces + checkpoint insertion) -> validate. The input module is
never mutated; a transformed clone is returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro import telemetry
from repro.analysis.callgraph import CallGraph
from repro.analysis.liveness import FunctionAccessSummaries
from repro.analysis.ranges import apply_inferred_bounds
from repro.core.function_analysis import FunctionAnalyzer, FunctionPlan
from repro.core.summaries import FunctionResult
from repro.core.tracing import InputGenerator, Profile, collect_profile
from repro.core.transform import apply_plans
from repro.energy.platform import Platform
from repro.ir.module import Module
from repro.ir.validate import validate_module
from repro.ir.values import Variable


@dataclass
class SchematicConfig:
    """Tuning knobs of the SCHEMATIC pass.

    ``all_nvm`` disables VM allocation entirely (the paper's All-NVM
    ablation, §IV-E): checkpoint placement still runs, but every variable
    stays in NVM. ``profile_runs`` is the number of profiling executions
    used for path prioritization (the paper uses 1000; path *ordering*
    converges after a handful of runs on these benchmarks).
    """

    profile_runs: int = 4
    profile_seed: int = 20240301
    all_nvm: bool = False
    max_profile_instructions: int = 50_000_000
    #: ROCKCLIMB mode (used by repro.baselines.rockclimb): force a
    #: checkpoint on every loop back edge (conditional with period <=
    #: ``max_numit``, the unrolling-factor cap) and around every call.
    force_loop_checkpoints: bool = False
    checkpoint_around_calls: bool = False
    max_numit: Optional[int] = None
    #: Ablation knobs (see repro.experiments.ablations): disable the loop
    #: gain amortization or Eq. 2's liveness trimming.
    amortize_loop_gains: bool = True
    liveness_trimming: bool = True


@dataclass
class SchematicResult:
    """A compiled (transformed) program plus compilation artifacts."""

    module: Module
    function_results: Dict[str, FunctionResult]
    plans: Dict[str, FunctionPlan]
    checkpoints_inserted: int
    analysis_seconds: float
    profile: Profile

    def summary(self) -> str:
        return (
            f"schematic: {self.checkpoints_inserted} checkpoints inserted "
            f"across {len(self.plans)} functions in "
            f"{self.analysis_seconds:.2f}s"
        )


class Schematic:
    """Joint compile-time checkpoint placement and memory allocation."""

    def __init__(self, platform: Platform, config: Optional[SchematicConfig] = None):
        self.platform = platform
        self.config = config or SchematicConfig()

    def compile(
        self,
        module: Module,
        input_generator: Optional[InputGenerator] = None,
        profile: Optional[Profile] = None,
    ) -> SchematicResult:
        """Compile ``module`` for the configured platform.

        ``input_generator`` feeds the profiling runs (run index -> inputs);
        a precomputed ``profile`` skips profiling entirely.
        """
        start = time.perf_counter()
        tm = telemetry.get()
        work = module.clone()
        validate_module(work)

        # Fill missing loop bounds with *proven* trip counts before any
        # loop-aware decision runs: unannotated-but-bounded loops then get
        # real numit windows and back-edge elision instead of the blanket
        # DEFAULT_TRIP_ESTIMATE path. Declared @maxiter values are never
        # overwritten (they are verified separately by BOUND001).
        with telemetry.span("placer.infer-bounds"):
            apply_inferred_bounds(work)

        if profile is None:
            with telemetry.span(
                "placer.profile", runs=self.config.profile_runs
            ):
                profile = collect_profile(
                    work,
                    self.platform.model,
                    input_generator=input_generator,
                    runs=self.config.profile_runs,
                    seed=self.config.profile_seed,
                    max_instructions=self.config.max_profile_instructions,
                )

        with telemetry.span("placer.summaries"):
            callgraph = CallGraph(work)
            summaries = FunctionAccessSummaries(work, callgraph)
        variables: Dict[str, Variable] = {
            var.name: var for var in work.all_variables()
        }
        vm_capacity = 0 if self.config.all_nvm else self.platform.vm_size

        #: RCG counters whose per-function deltas annotate each span.
        _rcg_stats = (
            "placer.rcg.nodes", "placer.rcg.edges",
            "placer.rcg.edges_rejected_eb", "placer.rcg.plans_evaluated",
        )
        function_results: Dict[str, FunctionResult] = {}
        plans: Dict[str, FunctionPlan] = {}
        for name in callgraph.reverse_topological():
            analyzer = FunctionAnalyzer(
                module=work,
                func=work.functions[name],
                model=self.platform.model,
                eb=self.platform.eb,
                vm_capacity=vm_capacity,
                summaries=summaries,
                function_results=function_results,
                profile=profile,
                variables=variables,
                is_entry=(name == work.entry),
                force_loop_checkpoints=self.config.force_loop_checkpoints,
                checkpoint_around_calls=self.config.checkpoint_around_calls,
                max_numit=self.config.max_numit,
                amortize_loop_gains=self.config.amortize_loop_gains,
                liveness_trimming=self.config.liveness_trimming,
            )
            with telemetry.span("placer.function", function=name) as span:
                before = (
                    {s: tm.counter(s).value for s in _rcg_stats}
                    if tm is not None else {}
                )
                result, plan = analyzer.analyze()
                if tm is not None:
                    span.set(**{
                        s.rsplit(".", 1)[1]: tm.counter(s).value - before[s]
                        for s in _rcg_stats
                    })
            function_results[name] = result
            plans[name] = plan

        with telemetry.span("placer.transform") as span:
            inserted = apply_plans(work, plans)
            span.set(checkpoints=inserted)
        with telemetry.span("placer.validate"):
            validate_module(work)
        elapsed = time.perf_counter() - start
        return SchematicResult(
            module=work,
            function_results=function_results,
            plans=plans,
            checkpoints_inserted=inserted,
            analysis_seconds=elapsed,
            profile=profile,
        )
