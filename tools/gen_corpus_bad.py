#!/usr/bin/env python
"""Regenerate the known-violation corpus in ``tests/corpus_bad/``.

Each entry is a *transformed* module with one deliberately planted
memory-consistency bug, written as printed IR plus a ``manifest.json``
describing how it was made, which CONS rule must convict it and how the
dynamic oracle confirms the conviction. The regression test
(``tests/test_corpus_bad.py``) parses the checked-in files — it does not
re-run this generator — so the corpus stays stable under compiler
changes until someone regenerates it on purpose:

    PYTHONPATH=src python tools/gen_corpus_bad.py

The first four cells cover every generator in the memory-consistency
sabotage battery and both contract families:

- ``warloop_schematic_delete_restore`` — restore-set deletion on a
  wait-mode placement (CONS003 + CONS004; dynamically visible only
  under ``restore_fidelity="metadata"``);
- ``warloop_ratchet_repeated_read`` — a pure input marked volatile on a
  roll-back placement (CONS002; boundary-sweep anomalies);
- ``warloop_ratchet_dirty_write`` — an injected read-increment-write on
  a roll-back placement (CONS001 definite; boundary-sweep anomalies);
- ``sumloop_schematic_repeated_read`` — the wait-mode contract split:
  CONS002 fires but is in-contract-informational, the guarantee run is
  clean, and only out-of-contract schedules convict dynamically.

Three more cover the translation-validation battery — transform bugs
that change continuous-power semantics, so the sabotaged placement
fails the static refinement proof (the TV rule in ``expect_rules``,
convicted against the entry's *source* module) AND diverges from the
reference on every schedule, guarantee run included:

- ``crc_schematic_reordered_store`` — an observable store moved past a
  dependent load and a later store (TV002);
- ``warloop_schematic_leaked_private`` — one block's accesses to a
  global privatized into an unsynchronized local copy (TV003);
- ``sumloop_ratchet_dropped_store`` — an observable store deleted
  outright, as checkpoint motion would (TV001).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.energy import msp430fr5969_platform  # noqa: E402
from repro.ir.printer import print_module  # noqa: E402
from repro.ir.textparser import parse_ir  # noqa: E402
from repro.testkit.corpus import compile_for, load_program  # noqa: E402
from repro.emulator.interpreter import run_continuous  # noqa: E402
from repro.testkit.sabotage import (  # noqa: E402
    delete_restore,
    dirty_nv_write,
    drop_store,
    inject_repeated_read,
    leak_privatized_local,
    reorder_observable_store,
)

EB = 3000.0
OUT = Path(__file__).resolve().parent.parent / "tests" / "corpus_bad"


def _compiled(program: str, technique: str):
    bench = load_program(program)
    platform = msp430fr5969_platform(eb=EB)
    return bench, compile_for(
        technique,
        bench.module,
        platform,
        input_generator=bench.input_generator(),
    )


def main() -> int:
    OUT.mkdir(parents=True, exist_ok=True)
    entries = []

    bench, compiled = _compiled("warloop", "schematic")
    broken, site, removed = delete_restore(compiled.module)
    entries.append((
        "warloop_schematic_delete_restore",
        broken,
        {
            "program": "warloop",
            "technique": "schematic",
            "sabotage": "delete_restore",
            "expect_rules": ["CONS003", "CONS004"],
            "detail": {
                "checkpoint": site.ckpt_id,
                "deleted_restore_vars": sorted(removed),
            },
            "dynamic": "metadata-fidelity guarantee run diverges; "
            "image fidelity masks the bug",
        },
    ))

    bench, compiled = _compiled("warloop", "ratchet")
    marked, var = inject_repeated_read(compiled.module)
    entries.append((
        "warloop_ratchet_repeated_read",
        marked,
        {
            "program": "warloop",
            "technique": "ratchet",
            "sabotage": "inject_repeated_read",
            "expect_rules": ["CONS002"],
            "detail": {"volatile_input": var},
            "dynamic": "boundary-sweep schedules replay the sampling "
            "region and diverge from the marked reference",
        },
    ))

    bench, compiled = _compiled("warloop", "ratchet")
    dirty, where = dirty_nv_write(compiled.module)
    entries.append((
        "warloop_ratchet_dirty_write",
        dirty,
        {
            "program": "warloop",
            "technique": "ratchet",
            "sabotage": "dirty_nv_write",
            "expect_rules": ["CONS001"],
            "detail": {"injection_site": where},
            "dynamic": "boundary-sweep schedules double-increment; the "
            "module's own continuous run is the reference",
        },
    ))

    bench, compiled = _compiled("sumloop", "schematic")
    marked, var = inject_repeated_read(compiled.module)
    entries.append((
        "sumloop_schematic_repeated_read",
        marked,
        {
            "program": "sumloop",
            "technique": "schematic",
            "sabotage": "inject_repeated_read",
            "expect_rules": ["CONS002"],
            "detail": {"volatile_input": var},
            "in_contract_info": True,
            "dynamic": "wait-mode split: the guarantee run stays clean, "
            "out-of-contract schedules diverge",
        },
    ))

    # -- translation-validation battery: the sabotage must change the
    # continuous-power outputs (that is what makes it a *transform* bug,
    # and what lets the dynamic oracle convict on any schedule), so
    # candidates are validated against the source reference run.
    def _diverges_from(bench):
        platform = msp430fr5969_platform(eb=EB)
        reference = run_continuous(
            bench.module, platform.model, inputs=bench.default_inputs()
        )

        def validate(broken):
            try:
                run = run_continuous(
                    broken, platform.model, inputs=bench.default_inputs()
                )
            except Exception:
                return False
            return run.outputs != reference.outputs

        return validate

    bench, compiled = _compiled("crc", "schematic")
    broken, where = reorder_observable_store(
        compiled.module, validate=_diverges_from(bench)
    )
    entries.append((
        "crc_schematic_reordered_store",
        broken,
        {
            "program": "crc",
            "technique": "schematic",
            "sabotage": "reorder_observable_store",
            "expect_rules": ["TV002"],
            "detail": {"motion": where},
            "dynamic": "the intervening load observes the old value: "
            "continuous outputs change, every schedule diverges",
        },
    ))

    bench, compiled = _compiled("warloop", "schematic")
    broken, where = leak_privatized_local(
        compiled.module, validate=_diverges_from(bench)
    )
    entries.append((
        "warloop_schematic_leaked_private",
        broken,
        {
            "program": "warloop",
            "technique": "schematic",
            "sabotage": "leak_privatized_local",
            "expect_rules": ["TV003"],
            "detail": {"leak": where},
            "dynamic": "the private copy starts at zero and never writes "
            "back: continuous outputs change, every schedule diverges",
        },
    ))

    bench, compiled = _compiled("sumloop", "ratchet")
    broken, where = drop_store(
        compiled.module, validate=_diverges_from(bench)
    )
    entries.append((
        "sumloop_ratchet_dropped_store",
        broken,
        {
            "program": "sumloop",
            "technique": "ratchet",
            "sabotage": "drop_store",
            "expect_rules": ["TV001"],
            "detail": {"dropped": where},
            "dynamic": "the final NVM state misses the store: continuous "
            "outputs change, every completed schedule diverges",
        },
    ))

    manifest = {"eb": EB, "modules": []}
    for name, module, meta in entries:
        text = print_module(module)
        assert print_module(parse_ir(text)) == text, f"{name}: no round-trip"
        path = OUT / f"{name}.ir"
        path.write_text(text)
        manifest["modules"].append({"file": f"{name}.ir", **meta})
        print(f"wrote {path.relative_to(OUT.parent.parent)}")
    (OUT / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    print(f"wrote {(OUT / 'manifest.json').relative_to(OUT.parent.parent)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
