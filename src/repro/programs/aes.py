"""aes — AES-128 ECB encryption (MiBench2 ``aes``).

Encrypts a multi-block buffer in place with a freshly expanded key.
Footprint (sbox 256 + rcon 10 + key 16 + expanded key 176 + state 16 +
buffer 1280 + locals) stays under the 2 KB VM, matching Table I.

The S-box and round constants are generated here (standard AES GF(2^8)
construction) and embedded as const tables.
"""

from __future__ import annotations

from repro.programs.base import Benchmark, format_table

NUM_BLOCKS = 52
BUF_BYTES = NUM_BLOCKS * 16


def _generate_sbox():
    """The AES S-box from first principles (multiplicative inverse in
    GF(2^8) followed by the affine transformation)."""

    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    # Build inverses via exponentiation tables on the generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    exp[255] = exp[0]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        transformed = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= b << bit
        sbox[value] = transformed
    return sbox


def _generate_rcon():
    rcon = []
    value = 1
    for _ in range(10):
        rcon.append(value)
        value <<= 1
        if value & 0x100:
            value = (value & 0xFF) ^ 0x1B
    return rcon


SBOX = _generate_sbox()
RCON = _generate_rcon()

SOURCE = f"""
const u8 sbox[256] = {format_table(SBOX)};
const u8 rcon[10] = {format_table(RCON)};

u8 key[16];
u8 buf[{BUF_BYTES}];
u8 xkey[176];
u8 state[16];
u32 checksum;

void expand_key() {{
    for (i32 i = 0; i < 16; i++) {{
        xkey[i] = key[i];
    }}
    for (i32 r = 1; r <= 10; r++) {{
        i32 base = r * 16;
        u8 t0 = sbox[xkey[base - 3]];
        u8 t1 = sbox[xkey[base - 2]];
        u8 t2 = sbox[xkey[base - 1]];
        u8 t3 = sbox[xkey[base - 4]];
        xkey[base] = (u8) (xkey[base - 16] ^ t0 ^ rcon[r - 1]);
        xkey[base + 1] = (u8) (xkey[base - 15] ^ t1);
        xkey[base + 2] = (u8) (xkey[base - 14] ^ t2);
        xkey[base + 3] = (u8) (xkey[base - 13] ^ t3);
        for (i32 c = 4; c < 16; c++) {{
            xkey[base + c] = (u8) (xkey[base + c - 16] ^ xkey[base + c - 4]);
        }}
    }}
}}

u8 xtime(u8 x) {{
    u8 doubled = (u8) (x << 1);
    if ((x >> 7) != 0) {{
        doubled ^= 0x1b;
    }}
    return doubled;
}}

void add_round_key(i32 round) {{
    i32 base = round * 16;
    for (i32 i = 0; i < 16; i++) {{
        state[i] ^= xkey[base + i];
    }}
}}

void sub_bytes() {{
    for (i32 i = 0; i < 16; i++) {{
        state[i] = sbox[state[i]];
    }}
}}

void shift_rows() {{
    u8 t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    t = state[2];
    state[2] = state[10];
    state[10] = t;
    t = state[6];
    state[6] = state[14];
    state[14] = t;
    t = state[3];
    state[3] = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = t;
}}

void mix_columns() {{
    for (i32 c = 0; c < 4; c++) {{
        i32 base = c * 4;
        u8 a0 = state[base];
        u8 a1 = state[base + 1];
        u8 a2 = state[base + 2];
        u8 a3 = state[base + 3];
        u8 all = (u8) (a0 ^ a1 ^ a2 ^ a3);
        state[base] = (u8) (a0 ^ all ^ xtime((u8) (a0 ^ a1)));
        state[base + 1] = (u8) (a1 ^ all ^ xtime((u8) (a1 ^ a2)));
        state[base + 2] = (u8) (a2 ^ all ^ xtime((u8) (a2 ^ a3)));
        state[base + 3] = (u8) (a3 ^ all ^ xtime((u8) (a3 ^ a0)));
    }}
}}

void encrypt_block(i32 offset) {{
    for (i32 i = 0; i < 16; i++) {{
        state[i] = buf[offset + i];
    }}
    add_round_key(0);
    for (i32 round = 1; round < 10; round++) {{
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }}
    sub_bytes();
    shift_rows();
    add_round_key(10);
    for (i32 i = 0; i < 16; i++) {{
        buf[offset + i] = state[i];
    }}
}}

void main() {{
    expand_key();
    for (i32 b = 0; b < {NUM_BLOCKS}; b++) {{
        encrypt_block(b * 16);
    }}
    u32 sum = 0;
    for (i32 i = 0; i < {BUF_BYTES}; i++) {{
        sum += (u32) buf[i];
    }}
    checksum = sum;
}}
"""


def build() -> Benchmark:
    return Benchmark(
        name="aes",
        source=SOURCE,
        input_vars={"key": 256, "buf": 256},
        output_vars=["buf", "checksum"],
    )
