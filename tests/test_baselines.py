"""Tests for the four baselines + All-NVM: placement shape, feasibility,
runtime behavior and cross-technique correctness."""

import pytest

from repro.baselines import (
    COMPILERS,
    compile_alfred,
    compile_allnvm,
    compile_mementos,
    compile_ratchet,
    compile_rockclimb,
)
from repro.emulator import PowerManager, run_continuous, run_intermittent
from repro.energy import msp430fr5969_model
from repro.frontend import compile_source
from repro.ir import Checkpoint, CondCheckpoint, Load, MemorySpace, Store
from tests.helpers import (
    CALLS_SRC,
    SUM_LOOP_SRC,
    calls_inputs,
    compile_calls,
    compile_sum_loop,
    platform,
    run_technique,
    sum_loop_inputs,
)

MODEL = msp430fr5969_model()


def all_spaces(module):
    return {
        inst.space
        for func in module.functions.values()
        for block in func.blocks.values()
        for inst in block
        if isinstance(inst, (Load, Store))
    }


def checkpoints_of(module):
    return [
        inst
        for func in module.functions.values()
        for block in func.blocks.values()
        for inst in block
        if isinstance(inst, (Checkpoint, CondCheckpoint))
    ]


class TestRatchet:
    def test_all_nvm_spaces(self):
        compiled = compile_ratchet(compile_sum_loop(), platform())
        assert all_spaces(compiled.module) == {MemorySpace.NVM}

    def test_checkpoints_save_registers_only(self):
        compiled = compile_ratchet(compile_sum_loop(), platform())
        for ckpt in checkpoints_of(compiled.module):
            assert ckpt.save_vars == ()
            assert ckpt.restore_vars == ()

    def test_war_dependency_broken(self):
        # acc += ... is the canonical WAR (read then write): a checkpoint
        # must sit between the loop's read of acc and its store.
        src = """
        u32 out;
        void main() {
            u32 acc = 0;
            acc += 3;
            out = acc;
        }
        """
        compiled = compile_ratchet(compile_source(src), platform())
        # entry ckpt + exit ckpt + at least one WAR break
        assert compiled.checkpoints_inserted >= 3

    def test_no_war_no_extra_checkpoints(self):
        src = """
        u32 out;
        void main() {
            out = 5;
        }
        """
        compiled = compile_ratchet(compile_source(src), platform())
        # Only the boot and exit checkpoints.
        assert compiled.checkpoints_inserted == 2

    def test_always_feasible(self):
        for src in (SUM_LOOP_SRC, CALLS_SRC):
            compiled = compile_ratchet(compile_source(src), platform())
            assert compiled.feasible

    def test_interprocedural_war(self):
        src = """
        u32 g; u32 out;
        void bump() { g = g + 1; }
        void main() {
            u32 x = g;
            bump();
            out = x;
        }
        """
        compiled = compile_ratchet(compile_source(src), platform())
        # bump writes g which main read: a checkpoint must precede the call
        # or sit inside bump before its store.
        assert compiled.checkpoints_inserted >= 3


class TestMementos:
    def test_all_vm_spaces(self):
        compiled = compile_mementos(compile_sum_loop(), platform())
        assert all_spaces(compiled.module) == {MemorySpace.VM}

    def test_latch_checkpoints(self):
        compiled = compile_mementos(compile_sum_loop(), platform())
        # entry + exit + one latch checkpoint for the single loop
        assert compiled.checkpoints_inserted == 3

    def test_infeasible_when_data_exceeds_vm(self):
        compiled = compile_mementos(compile_sum_loop(), platform(vm_size=16))
        assert not compiled.feasible
        assert "exceeds VM" in compiled.infeasible_reason

    def test_skip_policy_attached(self):
        compiled = compile_mementos(compile_sum_loop(), platform())
        assert compiled.policy.skip_threshold is not None
        assert not compiled.policy.wait_for_full_recharge

    def test_checkpoints_save_everything_nonconst(self):
        compiled = compile_mementos(compile_sum_loop(), platform())
        latch = [
            c for c in checkpoints_of(compiled.module) if c.save_vars
        ]
        assert latch
        for ckpt in latch:
            assert "result" in ckpt.save_vars
            assert "data" in ckpt.save_vars


class TestAlfred:
    def test_hybrid_spaces_all_vm_working(self):
        compiled = compile_alfred(compile_sum_loop(), platform())
        assert all_spaces(compiled.module) == {MemorySpace.VM}

    def test_liveness_trimmed_saves(self):
        compiled = compile_alfred(compile_sum_loop(), platform())
        latches = [c for c in checkpoints_of(compiled.module)
                   if c.alloc_after and c.save_vars]
        assert latches
        for ckpt in latches:
            # 'data' is never written: anticipated saving skips it.
            assert "data" not in ckpt.save_vars

    def test_infeasible_same_as_mementos(self):
        compiled = compile_alfred(compile_sum_loop(), platform(vm_size=16))
        assert not compiled.feasible

    def test_no_skip_policy(self):
        compiled = compile_alfred(compile_sum_loop(), platform())
        assert compiled.policy.skip_threshold is None

    def test_caller_state_saved_at_callee_checkpoints(self):
        module = compile_source(
            """
            u32 out;
            u32 spin(u32 x) {
                u32 acc = 0;
                @maxiter(64)
                while (x != 0) { acc += x & 7; x >>= 1; }
                return acc;
            }
            void main() {
                u32 seed = 12345;
                u32 total = 0;
                for (i32 i = 0; i < 4; i++) {
                    seed = seed * 1103515245 + 12345;
                    total += spin(seed);
                }
                out = total;
            }
            """
        )
        compiled = compile_alfred(module, platform())
        spin_ckpts = [
            inst
            for block in compiled.module.functions["spin"].blocks.values()
            for inst in block
            if isinstance(inst, (Checkpoint, CondCheckpoint)) and inst.save_vars
        ]
        assert spin_ckpts
        for ckpt in spin_ckpts:
            # main's live locals must be part of spin's checkpoint state.
            assert "main.seed" in ckpt.save_vars
            assert "main.total" in ckpt.save_vars


class TestRockclimb:
    def test_all_nvm(self):
        compiled, _ = run_technique(
            "rockclimb", compile_sum_loop(), platform(), sum_loop_inputs(),
            input_generator=lambda run: sum_loop_inputs(seed=run),
        )
        assert all_spaces(compiled.module) == {MemorySpace.NVM}

    def test_loop_checkpoint_forced_even_with_huge_budget(self):
        compiled, _ = run_technique(
            "rockclimb",
            compile_sum_loop(),
            platform(eb=1_000_000.0),
            sum_loop_inputs(),
            input_generator=lambda run: sum_loop_inputs(seed=run),
        )
        conds = [
            c
            for c in checkpoints_of(compiled.module)
            if isinstance(c, CondCheckpoint)
        ]
        assert conds
        # Unrolling factor capped at 10.
        assert all(c.every <= 10 for c in conds)

    def test_wait_policy(self):
        compiled, report = run_technique(
            "rockclimb", compile_sum_loop(), platform(), sum_loop_inputs(),
            input_generator=lambda run: sum_loop_inputs(seed=run),
        )
        assert compiled.policy.wait_for_full_recharge
        assert report.completed and report.power_failures == 0


class TestAllNvm:
    def test_same_checkpointing_no_vm(self):
        compiled, report = run_technique(
            "allnvm", compile_sum_loop(), platform(), sum_loop_inputs(),
            input_generator=lambda run: sum_loop_inputs(seed=run),
        )
        assert all_spaces(compiled.module) == {MemorySpace.NVM}
        assert report.completed


class TestCrossTechniqueCorrectness:
    @pytest.mark.parametrize(
        "technique", ["ratchet", "mementos", "rockclimb", "alfred",
                      "schematic", "allnvm"]
    )
    def test_calls_program_all_techniques(self, technique):
        module = compile_calls()
        inputs = calls_inputs()
        ref = run_continuous(module, MODEL, inputs=inputs)
        compiled, report = run_technique(
            technique,
            module,
            platform(eb=2500.0),
            inputs,
            input_generator=lambda run: calls_inputs(seed=run),
        )
        assert compiled.feasible
        assert report.completed, report.failure_reason
        assert report.outputs == ref.outputs

    def test_schematic_cheapest(self):
        module = compile_calls()
        inputs = calls_inputs()
        energies = {}
        for technique in ("ratchet", "mementos", "rockclimb", "alfred",
                          "schematic"):
            _, report = run_technique(
                technique,
                module,
                platform(eb=2500.0),
                inputs,
                input_generator=lambda run: calls_inputs(seed=run),
            )
            energies[technique] = report.energy.total
        assert min(energies, key=energies.get) == "schematic"

    def test_wait_techniques_no_reexecution(self):
        module = compile_calls()
        for technique in ("rockclimb", "schematic"):
            _, report = run_technique(
                technique,
                module,
                platform(eb=2500.0),
                calls_inputs(),
                input_generator=lambda run: calls_inputs(seed=run),
            )
            assert report.energy.reexecution == 0.0
