"""Shared execution infrastructure for sweep-scale workloads.

Two building blocks used by the experiment harness and the testkit:

- :mod:`repro.runner.cache` — a content-addressed, persistent artifact
  cache under ``.repro-cache/`` holding compiled techniques, profiles,
  reference runs and emulation outcomes, so warm re-runs skip the emulator
  (the bottleneck) entirely;
- :mod:`repro.runner.pool` — a deterministic, order-preserving
  process-pool map used to fan embarrassingly-parallel evaluation cells
  across workers (``--jobs N|auto`` on the CLIs).
"""

from repro.runner.cache import ArtifactCache
from repro.runner.pool import parallel_map, resolve_jobs

__all__ = ["ArtifactCache", "parallel_map", "resolve_jobs"]
