"""Table I — ability to support limited VM space (§IV-B).

For each technique and benchmark: can the program execute on an
MSP430FR5969-class board (64 KB NVM, 2 KB VM)?

Expected shape (paper Table I):

- RATCHET, ROCKCLIMB: all-NVM, always feasible;
- MEMENTOS, ALFRED: fail dijkstra, fft and rc4 (data exceeds 2 KB of VM);
- SCHEMATIC: feasible everywhere (allocation respects SVM by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import (
    EvaluationContext,
    TECHNIQUE_ORDER,
    check,
    format_matrix,
)

#: A budget comfortably above every per-iteration requirement; feasibility
#: here is about VM capacity, not the capacitor.
FEASIBILITY_EB = 10_000.0


@dataclass
class Table1Result:
    #: technique -> benchmark -> feasible and correct
    cells: Dict[str, Dict[str, bool]]
    footprints: Dict[str, int]

    def row(self, technique: str) -> List[bool]:
        return list(self.cells[technique].values())

    def render(self) -> str:
        benchmarks = list(self.footprints)
        text = format_matrix(
            "Table I: ability to support limited VM space (2 KB)",
            list(self.cells),
            benchmarks,
            lambda t, b: check(self.cells[t][b]),
        )
        sizes = "  ".join(
            f"{b}={s}B" for b, s in self.footprints.items()
        )
        return text + "\nfootprints: " + sizes


def run(ctx: Optional[EvaluationContext] = None) -> Table1Result:
    ctx = ctx or EvaluationContext()
    cells: Dict[str, Dict[str, bool]] = {}
    footprints: Dict[str, int] = {}
    for name in ctx.benchmark_names:
        footprints[name] = ctx.benchmark(name).footprint_bytes()
    for technique in TECHNIQUE_ORDER:
        cells[technique] = {}
        for name in ctx.benchmark_names:
            outcome = ctx.run(technique, name, FEASIBILITY_EB)
            cells[technique][name] = outcome.succeeded
    return Table1Result(cells=cells, footprints=footprints)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
