"""Prometheus text-format exposition for a metrics registry.

Renders the version-0.0.4 text format a Prometheus scrape (or a
``node_exporter`` textfile collector) accepts: dotted metric names map
to ``repro_``-prefixed underscore names, counters gain the conventional
``_total`` suffix, and histograms expand into cumulative
``_bucket{le="..."}`` series plus ``_sum`` / ``_count``.

There is no HTTP server here — fleet runs drop the rendered file into a
textfile-collector directory or push it through a gateway; see
docs/observability.md for the scrape recipe.
"""

from __future__ import annotations

import re
from typing import List

from .metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prom_name(name: str, prefix: str = "repro") -> str:
    """``cache.hits`` -> ``repro_cache_hits`` (Prometheus-legal)."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def render(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry as Prometheus exposition text (trailing newline
    included, as the format requires)."""
    lines: List[str] = []
    for record in registry.snapshot():
        kind = record["kind"]
        if kind == "counter":
            name = prom_name(record["name"], prefix) + "_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(record['value'])}")
        elif kind == "gauge":
            name = prom_name(record["name"], prefix)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(record['value'])}")
        else:  # histogram
            name = prom_name(record["name"], prefix)
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(
                record["bounds"], record["buckets"]
            ):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {record["count"]}'
            )
            lines.append(f"{name}_sum {_fmt(record['total'])}")
            lines.append(f"{name}_count {record['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def render_table(registry: MetricsRegistry) -> str:
    """The human-facing table behind ``python -m repro.telemetry
    metrics``: counters, gauges, then histogram summaries."""
    records = registry.snapshot()
    if not records:
        return "(no metrics recorded)"
    lines: List[str] = []
    width = max(len(r["name"]) for r in records)
    for record in records:
        name = record["name"].ljust(width)
        if record["kind"] == "counter":
            lines.append(f"{name}  {record['value']}")
        elif record["kind"] == "gauge":
            lines.append(
                f"{name}  {_fmt(record['value'])} (gauge/{record['agg']})"
            )
        else:
            count = record["count"]
            mean = record["total"] / count if count else 0.0
            lines.append(
                f"{name}  n={count} mean={mean:.3f} "
                f"min={_fmt(record['min'] or 0)} "
                f"max={_fmt(record['max'] or 0)}"
            )
    return "\n".join(lines)
