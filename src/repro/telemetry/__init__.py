"""Telemetry: spans, events, metrics and trace exporters.

Instrumentation sites use the tiny module-level surface::

    from repro import telemetry
    from repro.telemetry import metrics

    tm = telemetry.get()            # None when disabled -> emit nothing
    mm = metrics.get()              # ditto, for aggregated counts
    with telemetry.span("placer.profile", runs=4):
        ...

Drivers opt in with :func:`enable` (or ``--trace`` on
``repro.experiments.run_all`` / ``repro.testkit``) and export via
:mod:`repro.telemetry.exporters`; metrics-only runs use
``metrics.enable`` (or ``--metrics``) and flush per-process JSONL
sidecars (:mod:`repro.telemetry.rollup`) that merge deterministically
across worker pools. ``python -m repro.telemetry`` has subcommands for
trace reports (``report``/``convert``), the merged metrics table or
Prometheus exposition (``metrics``), crash forensics (``postmortem``)
and the benchmark-regression gate (``regress``). See
docs/observability.md.
"""

from repro.telemetry.core import (
    NULL_SPAN,
    SCHEMA_VERSION,
    TRACK_COMPILER,
    TRACK_RUNTIME,
    TRACK_STATIC,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    count,
    disable,
    enable,
    enabled,
    get,
    span,
)
from repro.telemetry.metrics import METRICS_SCHEMA, MetricsRegistry

__all__ = [
    "METRICS_SCHEMA",
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "TRACK_COMPILER",
    "TRACK_RUNTIME",
    "TRACK_STATIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "count",
    "disable",
    "enable",
    "enabled",
    "get",
    "span",
]
