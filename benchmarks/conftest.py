"""Shared fixtures for the reproduction benchmarks.

By default each bench target runs on a fast benchmark subset so
``pytest benchmarks/ --benchmark-only`` completes in minutes. Set
``REPRO_FULL_BENCH=1`` to sweep all eight MiBench2 kernels (the full
regeneration used for EXPERIMENTS.md, several minutes more).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

import pytest

from repro.experiments.common import EvaluationContext

FULL = os.environ.get("REPRO_FULL_BENCH", "") == "1"
SUBSET = ["basicmath", "crc", "randmath"]


@pytest.fixture(scope="session")
def ctx() -> EvaluationContext:
    benchmarks = None if FULL else SUBSET
    return EvaluationContext(benchmarks=benchmarks, profile_runs=2)


def once(benchmark, fn):
    """Run an expensive whole-experiment target exactly once under
    pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
