"""Tests for atomic sections (paper §VI): parsing, lowering, and the
guarantee that no checkpoint lands inside one."""

import pytest

from repro.core import Schematic
from repro.core.placement import SchematicConfig
from repro.core.verify import verify_forward_progress
from repro.emulator import run_continuous
from repro.energy import msp430fr5969_model
from repro.errors import InfeasibleBudgetError, SemanticError
from repro.frontend import compile_source
from repro.ir import Checkpoint, CondCheckpoint
from tests.helpers import platform

MODEL = msp430fr5969_model()

SENSOR_SRC = """
u32 out;
u32 port_a;
u32 port_b;
i32 readings[32];

void main() {
    u32 acc = 0;
    for (i32 i = 0; i < 32; i++) {
        atomic {
            port_a = (u32) i;
            port_b = port_a + 1;
            u32 sample = port_a * 7 + port_b;
            readings[i] = (i32) sample;
        }
        acc += (u32) readings[i];
    }
    out = acc;
}
"""


class TestFrontend:
    def test_atomic_lowered_and_recorded(self):
        module = compile_source(SENSOR_SRC)
        ranges = module.functions["main"].atomic_ranges
        assert len(ranges) == 1
        label, start, end = ranges[0]
        assert end > start

    def test_atomic_semantics_preserved(self):
        module = compile_source(SENSOR_SRC)
        report = run_continuous(module, MODEL)
        expected = sum((i * 7 + i + 1) & 0xFFFFFFFF for i in range(32))
        assert report.outputs["out"] == [expected & 0xFFFFFFFF]

    def test_control_flow_rejected(self):
        with pytest.raises(SemanticError, match="atomic"):
            compile_source(
                "u32 out; void main() { atomic { if (out) { out = 1; } } }"
            )

    def test_loops_rejected(self):
        with pytest.raises(SemanticError, match="atomic"):
            compile_source(
                "u32 out; void main() { atomic { "
                "for (i32 i = 0; i < 3; i++) { out += 1; } } }"
            )

    def test_calls_rejected(self):
        with pytest.raises(SemanticError, match="atomic"):
            compile_source(
                "u32 f() { return 1; } u32 out; "
                "void main() { atomic { out = f(); } }"
            )

    def test_short_circuit_rejected(self):
        with pytest.raises(SemanticError, match="atomic"):
            compile_source(
                "u32 out; u32 a; void main() { atomic { out = a && 1; } }"
            )

    def test_empty_atomic_is_fine(self):
        module = compile_source("u32 out; void main() { atomic { } out = 1; }")
        assert module.functions["main"].atomic_ranges == []

    def test_ranges_survive_clone(self):
        module = compile_source(SENSOR_SRC)
        clone = module.clone()
        assert clone.functions["main"].atomic_ranges == (
            module.functions["main"].atomic_ranges
        )


def _checkpoint_positions(module):
    positions = []
    for fname, func in module.functions.items():
        for label, block in func.blocks.items():
            for idx, inst in enumerate(block.instructions):
                if isinstance(inst, (Checkpoint, CondCheckpoint)):
                    positions.append((fname, label, idx))
    return positions


class TestPlacementRespectsAtomic:
    @pytest.mark.parametrize("eb", [400.0, 900.0, 5_000.0])
    def test_no_checkpoint_inside_atomic(self, eb):
        module = compile_source(SENSOR_SRC)
        plat = platform(eb=eb)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: {}
        )
        # The transformed ranges shift by the number of checkpoints
        # inserted before them in the same block; recompute from the
        # transformed module by locating the port_a store run.
        func = result.module.functions["main"]
        for label, block in func.blocks.items():
            store_indices = [
                idx
                for idx, inst in enumerate(block.instructions)
                if getattr(getattr(inst, "var", None), "name", "") in
                ("port_a", "port_b", "readings")
                and type(inst).__name__ == "Store"
            ]
            if not store_indices:
                continue
            lo, hi = min(store_indices), max(store_indices)
            for fname, clabel, idx in _checkpoint_positions(result.module):
                if clabel == label:
                    assert not (lo < idx <= hi), (
                        f"checkpoint inside atomic body at {clabel}[{idx}]"
                    )

        verdict = verify_forward_progress(
            result.module, module, MODEL, eb, plat.vm_size
        )
        assert verdict.ok

    def test_oversized_atomic_rejected(self):
        # 300 NVM stores in one atomic section cannot fit a ~150 nJ budget.
        body = "\n".join(f"sink{i} = {i};" for i in range(100))
        decls = "\n".join(f"u32 sink{i};" for i in range(100))
        src = f"{decls}\nvoid main() {{ atomic {{ {body} }} }}"
        module = compile_source(src)
        with pytest.raises(InfeasibleBudgetError, match="atomic"):
            Schematic(
                platform(eb=250.0), SchematicConfig(profile_runs=1)
            ).compile(module, input_generator=lambda run: {})

    def test_oversized_atomic_fine_with_big_capacitor(self):
        body = "\n".join(f"sink{i} = {i};" for i in range(100))
        decls = "\n".join(f"u32 sink{i};" for i in range(100))
        src = f"{decls}\nvoid main() {{ atomic {{ {body} }} }}"
        module = compile_source(src)
        plat = platform(eb=50_000.0)
        result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
            module, input_generator=lambda run: {}
        )
        verdict = verify_forward_progress(
            result.module, module, MODEL, plat.eb, plat.vm_size
        )
        assert verdict.ok
