"""The crash-consistency oracle shared by sweep, diff and fuzz.

One emulated run is judged against the continuous-power reference:

- ``ok``: the run completed and its final NVM state (every non-const
  global) equals the reference — no memory anomaly.
- ``anomaly``: the run completed with *different* outputs. Always a bug in
  the transformation or runtime: intermittence must never change results.
- ``progress-violation``: the run did not complete although the power
  schedule guarantees eventual completion (a finite injected schedule, or
  an energy budget the placement was compiled for). A wait-mode technique
  getting stuck here is a placement bug.
- ``stuck``: the run did not complete under a schedule that does *not*
  promise completion (e.g. stochastic harvesting with windows below the
  placement's budget, or a roll-back baseline whose checkpoint spacing
  ignores the platform energy — the paper's Table III crosses).
- ``infeasible``: the technique statically refused the program
  (all-VM techniques on over-VM data, Table I).
- ``crash``: the emulation aborted with an internal error (e.g. a VM
  access with no residency after a broken transformation).
- ``anomaly-outside-contract``: an anomaly from an all-NVM wait-mode
  runtime under a schedule its hardware contract excludes — recorded,
  never counted.

``anomaly``, ``progress-violation`` and ``crash`` are violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines import CompiledTechnique
from repro.core.verify import VerificationResult, run_against_reference
from repro.emulator.power import PowerManager
from repro.emulator.report import ExecutionReport
from repro.energy.model import EnergyModel

OUTCOME_OK = "ok"
OUTCOME_ANOMALY = "anomaly"
OUTCOME_PROGRESS = "progress-violation"
OUTCOME_STUCK = "stuck"
OUTCOME_INFEASIBLE = "infeasible"
OUTCOME_CRASH = "crash"
#: An anomaly produced outside the technique's hardware contract — an
#: all-NVM wait-mode runtime killed mid-segment by a stochastic schedule
#: (see :data:`repro.testkit.corpus.ALL_NVM_TECHNIQUES`). Recorded but not
#: counted as a violation.
OUTCOME_CONTRACT = "anomaly-outside-contract"


@dataclass
class OracleVerdict:
    """One cell of a sweep/diff/fuzz campaign."""

    program: str
    technique: str
    power: str  # human-readable power-schedule description
    outcome: str
    #: The injected schedule (timeline offsets) when one was used.
    schedule: Tuple[int, ...] = ()
    #: Minimal failing schedule after shrinking (violations only).
    shrunk: Tuple[int, ...] = ()
    detail: str = ""
    power_failures: int = 0

    @property
    def violation(self) -> bool:
        return self.outcome in (
            OUTCOME_ANOMALY, OUTCOME_PROGRESS, OUTCOME_CRASH,
        )

    def describe(self) -> str:
        text = (
            f"{self.program}/{self.technique} under {self.power}: "
            f"{self.outcome}"
        )
        if self.detail:
            text += f" ({self.detail})"
        if self.violation and self.shrunk:
            text += f"; minimal failing schedule {list(self.shrunk)}"
        return text


def classify(result: VerificationResult, guarantee: bool) -> str:
    """Map a :class:`VerificationResult` to an oracle outcome.

    ``guarantee``: the power schedule promises eventual completion, so a
    non-terminating run is a violation rather than expected starvation."""
    if result.crashed:
        return OUTCOME_CRASH
    if result.completed:
        return OUTCOME_OK if result.outputs_match else OUTCOME_ANOMALY
    return OUTCOME_PROGRESS if guarantee else OUTCOME_STUCK


def check_schedule(
    compiled: CompiledTechnique,
    reference_report: ExecutionReport,
    model: EnergyModel,
    offsets: Tuple[int, ...],
    vm_size: int,
    inputs: Optional[Dict[str, List[int]]] = None,
    max_instructions: int = 100_000_000,
) -> VerificationResult:
    """Run the compiled program with failures injected at ``offsets``.

    A finite schedule leaves the supply continuous after the last failure,
    so completion is always guaranteed (``classify(..., guarantee=True)``).
    """
    return run_against_reference(
        compiled.module,
        compiled.module,  # unused: reference_report short-circuits the run
        model,
        compiled.policy,
        PowerManager.scheduled(offsets),
        vm_size=vm_size,
        inputs=inputs,
        max_instructions=max_instructions,
        reference_report=reference_report,
    )
