"""Independent verification of the forward-progress guarantee.

Placement enforces the guarantee statically (worst-case energy between
checkpoints <= EB, checked inside
:meth:`repro.core.path_analysis.RegionAnalysis._worst_since_checkpoint`).
This module re-checks it *dynamically*: run the transformed program in the
emulator under the energy budget and confirm it terminates, never violates
the budget between checkpoints, and produces the same outputs as a
continuously powered reference run (i.e. no memory anomalies, §II-B).

Two layers:

- :func:`run_against_reference` is the general crash-consistency oracle —
  any transformed module, any :class:`~repro.emulator.power.PowerManager`
  (energy budget, periodic, scheduled fault injection, stochastic), with
  the continuous-power run as the ground truth. The fault-injection
  testkit (:mod:`repro.testkit`) drives thousands of these.
- :func:`verify_forward_progress` specializes it to the paper's §II-B
  statement: wait mode under the compile-time energy budget must complete
  with *zero* power failures and matching outputs.

Every (reference, transformed) pair that enters the dynamic oracle is
also *statically* translation-validated by default: the simulation
relation of :mod:`repro.analysis.simrel` is inferred once per module
pair (memoized on object identity, both modules pinned) and its verdict
counted in :func:`transval_stats` — surfaced by the ``run_all``
manifest. The pass is silent on purpose: it never changes a
:class:`VerificationResult` or any evaluation report, so enabling it
keeps every report byte-identical. ``REPRO_TRANSVAL=0`` is the escape
hatch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.emulator.interpreter import run_continuous, run_intermittent
from repro.emulator.power import PowerManager
from repro.emulator.report import ExecutionReport
from repro.emulator.runtime import CheckpointPolicy
from repro.energy.model import EnergyModel
from repro.errors import EmulationError, ReproError
from repro.ir.module import Module


@dataclass
class VerificationResult:
    """Outcome of one dynamic verification run."""

    completed: bool
    outputs_match: bool
    power_failures: int
    failure_reason: str = ""
    #: The emulation aborted with an internal error (e.g. a VM access to a
    #: non-resident variable after a bad transformation) — always a bug.
    crashed: bool = False
    #: Timeline offsets of the failures experienced (replayable via
    #: ``PowerManager.scheduled``).
    failure_offsets: List[int] = field(default_factory=list)
    #: The full intermittent-run report, for post-mortems.
    report: Optional[ExecutionReport] = None

    @property
    def ok(self) -> bool:
        return self.completed and self.outputs_match and self.power_failures == 0

    @property
    def crash_consistent(self) -> bool:
        """The weaker oracle used under injected faults: *if* the run
        completed, its outputs (the final NVM state of every non-const
        global) must equal the reference — power failures themselves are
        expected, they are the point of the injection."""
        return self.completed and self.outputs_match


# -- default-on translation validation ------------------------------------

#: Per-process counters for the silent validation pass; the run_all
#: manifest mirrors them (workers keep their own, like the cache stats).
_TRANSVAL_STATS: Dict[str, int] = {
    "validated": 0,
    "certified": 0,
    "violations": 0,
    "memo_hits": 0,
    "skipped": 0,
}

#: Identity-keyed memo: id pair -> (source, transformed, verdict). The
#: module objects are pinned in the value so a garbage-collected module
#: cannot hand its id to a different module and alias the entry.
_TRANSVAL_MEMO: Dict[Tuple[int, int], Tuple[Module, Module, Optional[bool]]] = {}
_TRANSVAL_MEMO_CAP = 256


def transval_enabled() -> bool:
    """Whether the oracle's validation pass is on (``REPRO_TRANSVAL``,
    default on; ``0``/``false``/``off`` disable)."""
    return os.environ.get("REPRO_TRANSVAL", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def transval_stats() -> Dict[str, int]:
    """A snapshot of this process's validation counters."""
    return dict(_TRANSVAL_STATS)


def reset_transval_stats() -> None:
    for key in _TRANSVAL_STATS:
        _TRANSVAL_STATS[key] = 0
    _TRANSVAL_MEMO.clear()


def validate_placement(
    source: Module, transformed: Module
) -> Optional[bool]:
    """Infer (memoized) the simulation relation for one module pair and
    record the verdict; None when the pair is out of the validator's
    fragment (e.g. recursion)."""
    key = (id(source), id(transformed))
    entry = _TRANSVAL_MEMO.get(key)
    if entry is not None and entry[0] is source and entry[1] is transformed:
        _TRANSVAL_STATS["memo_hits"] += 1
        return entry[2]
    from repro.analysis.simrel import infer_simulation

    _TRANSVAL_STATS["validated"] += 1
    verdict: Optional[bool]
    try:
        verdict = infer_simulation(source, transformed).refines
    except ReproError:
        _TRANSVAL_STATS["skipped"] += 1
        verdict = None
    else:
        _TRANSVAL_STATS["certified" if verdict else "violations"] += 1
    if len(_TRANSVAL_MEMO) >= _TRANSVAL_MEMO_CAP:
        _TRANSVAL_MEMO.pop(next(iter(_TRANSVAL_MEMO)))
    _TRANSVAL_MEMO[key] = (source, transformed, verdict)
    return verdict


def run_against_reference(
    transformed: Module,
    reference: Module,
    model: EnergyModel,
    policy: CheckpointPolicy,
    power: PowerManager,
    vm_size: int,
    inputs: Optional[Dict[str, List[int]]] = None,
    max_instructions: int = 100_000_000,
    reference_report: Optional[ExecutionReport] = None,
    restore_fidelity: str = "image",
    predecode: bool = True,
    compiled: bool = True,
) -> VerificationResult:
    """Run ``transformed`` under ``power`` and compare the final NVM state
    against the continuously powered ``reference`` module.

    ``reference_report`` caches the ground-truth run across many injected
    schedules of the same program/inputs (the testkit sweep reruns the
    transformed module hundreds of times against one reference).
    ``restore_fidelity="metadata"`` selects the strict restore semantics
    (see :class:`repro.emulator.interpreter.InterpreterConfig`), under
    which a checkpoint whose restore set misses live VM state is
    dynamically convicted instead of silently healed.
    ``predecode``/``compiled`` select the interpreter loop for the
    intermittent run (the testkit's ``--compiled`` axis re-runs cells on
    the slower loops to cross-check the compiled one).
    """
    if transval_enabled() and transformed is not reference:
        validate_placement(reference, transformed)
    if reference_report is None:
        reference_report = run_continuous(
            reference, model, inputs=inputs, max_instructions=max_instructions
        )
    try:
        report = run_intermittent(
            transformed,
            model,
            policy,
            power,
            vm_size=vm_size,
            inputs=inputs,
            max_instructions=max_instructions,
            restore_fidelity=restore_fidelity,
            predecode=predecode,
            compiled=compiled,
        )
    except EmulationError as exc:
        return VerificationResult(
            completed=False,
            outputs_match=False,
            power_failures=power.failures,
            failure_reason=f"emulation error: {exc}",
            failure_offsets=list(power.failure_log),
            crashed=True,
        )
    return VerificationResult(
        completed=report.completed,
        outputs_match=report.outputs == reference_report.outputs,
        power_failures=report.power_failures,
        failure_reason=report.failure_reason,
        failure_offsets=list(report.failure_offsets),
        report=report,
    )


def verify_forward_progress(
    transformed: Module,
    reference: Module,
    model: EnergyModel,
    eb: float,
    vm_size: int,
    inputs: Optional[Dict[str, List[int]]] = None,
    technique: str = "schematic",
    max_instructions: int = 100_000_000,
) -> VerificationResult:
    """Run ``transformed`` under budget ``eb`` and compare against the
    continuously powered ``reference`` module.

    A wait-mode program with a correct placement experiences **zero** power
    failures: every inter-checkpoint segment fits the budget and the
    capacitor is refilled at each checkpoint. Any failure observed here is
    a placement bug (or an intentionally undersized budget in tests).
    """
    return run_against_reference(
        transformed,
        reference,
        model,
        CheckpointPolicy.wait_mode(technique),
        PowerManager.energy_budget(eb),
        vm_size=vm_size,
        inputs=inputs,
        max_instructions=max_instructions,
    )
