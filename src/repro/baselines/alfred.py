"""ALFRED (Maioli & Mottola, SenSys 2021) — the hybrid VM/NVM baseline.

ALFRED "uses both VM and NVM as working memories. It reduces checkpointing
overhead by performing deferred restoration of variables (on their first
read) and anticipated saving of variables (on their last write). ...
When reaching a checkpoint, only the CPU registers are saved in NVM, since
all other volatile data has been saved previously. VM in ALFRED is used as
much as possible" (paper §IV-A). Checkpoints sit on loop latches, like
MEMENTOS's.

We model the deferred/anticipated mechanism at checkpoint granularity with
liveness trimming: the traffic a checkpoint window causes equals saving the
variables *written* in the window that are still live, and restoring the
variables *read* after it — which is what ALFRED's distributed saves/
restores add up to.

Feasibility: "since it uses the same offset to access both data in VM and
data in NVM, a large VM size (identical to NVM size) is needed" — so, like
the all-VM techniques, ALFRED cannot run dijkstra/fft/rc4 on 2 KB of VM
(Table I).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG
from repro.analysis.liveness import FunctionAccessSummaries, LivenessInfo
from repro.baselines.common import (
    CompiledTechnique,
    back_edges,
    concrete_variables,
    data_footprint,
    full_alloc,
    insert_backedge_checkpoints,
    insert_entry_checkpoint,
    insert_exit_checkpoints,
    set_all_spaces,
)
from repro.core.transform import _CheckpointFactory
from repro.emulator.runtime import CheckpointPolicy
from repro.energy.platform import Platform
from repro.ir.instructions import Store
from repro.ir.module import Module
from repro.ir.validate import validate_module
from repro.ir.values import MemorySpace


def _written_variables(module: Module) -> Set[str]:
    """Concrete variables written anywhere in the program (directly or
    through a by-reference parameter)."""
    summaries = FunctionAccessSummaries(module, CallGraph(module))
    written: Set[str] = set()
    for func in module.functions.values():
        for block in func.blocks.values():
            for inst in block:
                if isinstance(inst, Store):
                    written.add(inst.var.name)
    # Resolve ref formals to every actual they can bind to (conservative:
    # the summaries' caller-visible write sets already do this at call
    # sites; simply union them).
    for name in module.functions:
        written |= summaries.summary(name).writes
    return written


def _stack_contexts(module: Module, summaries: FunctionAccessSummaries):
    """For each function, the caller locals that may be live on the stack
    while it executes (propagated top-down over the call graph).

    A checkpoint inside a callee must treat those variables as part of the
    volatile state: they are live in VM, belong to suspended frames, and
    would otherwise roll back inconsistently.
    """
    from repro.ir.instructions import Call

    callgraph = CallGraph(module)
    order = list(reversed(callgraph.reverse_topological()))  # callers first
    contexts = {name: set() for name in module.functions}
    liveness = {}
    for name, func in module.functions.items():
        liveness[name] = LivenessInfo(func, module, summaries, CFG(func))
    local_names = {
        name: {
            v.name for v in func.variables.values() if not v.is_ref
        }
        for name, func in module.functions.items()
    }
    for name in order:
        func = module.functions[name]
        live = liveness[name]
        for label, block in func.blocks.items():
            for idx, inst in enumerate(block.instructions):
                if isinstance(inst, Call):
                    survives = live.live_before_instruction(label, idx + 1)
                    passed = (survives & local_names[name]) | contexts[name]
                    contexts[inst.callee] |= passed
    return contexts, liveness


def compile_alfred(module: Module, platform: Platform) -> CompiledTechnique:
    """Instrument ``module`` with the ALFRED scheme."""
    footprint = data_footprint(module)
    policy = CheckpointPolicy.rollback_mode("alfred")
    if footprint > platform.vm_size:
        return CompiledTechnique(
            name="alfred",
            module=module,
            policy=policy,
            feasible=False,
            infeasible_reason=(
                f"data footprint {footprint} B exceeds VM size "
                f"{platform.vm_size} B (ALFRED maps VM and NVM at the same "
                "offsets)"
            ),
        )

    work = module.clone()
    set_all_spaces(work, MemorySpace.VM)
    alloc = full_alloc(work, MemorySpace.VM)
    written = _written_variables(work)

    callgraph = CallGraph(work)
    summaries = FunctionAccessSummaries(work, callgraph)
    contexts, liveness_of = _stack_contexts(work, summaries)

    # Per-latch liveness-trimmed save/restore sets. The volatile state at a
    # checkpoint is the function's own live set plus the live locals of
    # every frame that may be suspended underneath it.
    save_for: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
    local_concrete = {v.name for v in concrete_variables(work)}
    for func in work.functions.values():
        liveness = liveness_of[func.name]
        for latch, header in back_edges(func):
            live = (
                liveness.live_at_edge(latch, header) | contexts[func.name]
            ) & local_concrete
            save = tuple(
                sorted(
                    n
                    for n in live
                    if n in written and not work.find_variable(n).is_const
                )
            )
            restore = tuple(sorted(live))
            save_for[f"{func.name}/{latch}->{header}"] = (save, restore)

    default_save = tuple(
        sorted(
            v.name
            for v in concrete_variables(work)
            if v.name in written and not v.is_const
        )
    )
    save_for["*"] = (default_save, tuple(sorted(local_concrete)))

    factory = _CheckpointFactory()
    insert_entry_checkpoint(
        work, factory, restore=tuple(sorted(local_concrete)), alloc_after=alloc
    )
    insert_backedge_checkpoints(work, factory, save_for, alloc_after=alloc)
    insert_exit_checkpoints(work, factory, save=default_save)
    validate_module(work)
    return CompiledTechnique(
        name="alfred",
        module=work,
        policy=policy,
        checkpoints_inserted=factory.next_id - 1,
    )
