"""The benchmark-regression gate: noise-aware comparison semantics, the
bench_schema handshake, and the CLI exit codes (0 ok / 1 regressed /
2 malformed) — including an end-to-end run of the real harness with the
``REPRO_BENCH_SLOWDOWN`` sleep fixture injected.
"""

import json
import os
import sys

import pytest

from repro.telemetry import regress
from repro.telemetry.__main__ import main as telemetry_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH = os.path.join(REPO_ROOT, "tools", "bench_engine.py")


def _doc(**timings):
    doc = {"bench_schema": regress.BENCH_SCHEMA, "interpreter_loops": {}}
    for key, value in timings.items():
        doc["interpreter_loops"][key] = value
    return doc


def test_compare_flags_only_ratio_and_delta_together():
    baseline = _doc(compiled_seconds=0.4, predecoded_seconds=0.010)
    current = _doc(
        compiled_seconds=0.5,     # 1.25x: under the ratio guard
        predecoded_seconds=0.030,  # 3x but only +20ms: under the delta guard
    )
    result = regress.compare(baseline, current)
    assert result["ok"]
    assert all(not c["regressed"] for c in result["comparisons"])

    slow = _doc(compiled_seconds=1.4, predecoded_seconds=0.010)
    result = regress.compare(baseline, slow)
    assert not result["ok"]
    [compiled, predecoded] = result["comparisons"]
    assert compiled["regressed"] and compiled["ratio"] == 3.5
    assert not predecoded["regressed"]


def test_compare_uses_only_shared_paths():
    """A --micro-only current run carries no evaluation_seconds; only the
    interpreter loops are compared."""
    baseline = _doc(compiled_seconds=0.4)
    baseline["evaluation_seconds"] = {"cold_serial": 10.0}
    result = regress.compare(baseline, _doc(compiled_seconds=0.4))
    assert [c["metric"] for c in result["comparisons"]] == [
        "interpreter_loops.compiled_seconds"
    ]


def test_compare_rejects_schema_mismatch_and_no_overlap():
    good = _doc(compiled_seconds=0.4)
    with pytest.raises(regress.RegressError, match="bench_schema"):
        regress.compare({"interpreter_loops": {}}, good)
    with pytest.raises(regress.RegressError, match="bench_schema"):
        regress.compare(good, {"bench_schema": 99})
    with pytest.raises(regress.RegressError, match="no timing metric"):
        regress.compare(
            {"bench_schema": regress.BENCH_SCHEMA},
            {"bench_schema": regress.BENCH_SCHEMA},
        )


def test_render_report_marks_verdicts():
    result = regress.compare(
        _doc(compiled_seconds=0.4), _doc(compiled_seconds=1.4)
    )
    text = regress.render_report(result)
    assert "REGRESSED" in text and "regression detected" in text
    ok = regress.render_report(
        regress.compare(_doc(compiled_seconds=0.4),
                        _doc(compiled_seconds=0.41))
    )
    assert "within threshold" in ok


# -- CLI ----------------------------------------------------------------------


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc) + "\n")
    return str(path)


def test_cli_exit_codes_with_current_documents(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _doc(compiled_seconds=0.4))
    same = _write(tmp_path, "same.json", _doc(compiled_seconds=0.42))
    slow = _write(tmp_path, "slow.json", _doc(compiled_seconds=1.4))

    out_json = tmp_path / "report.json"
    assert telemetry_main([
        "regress", "--baseline", baseline, "--current", same,
        "--json", str(out_json),
    ]) == 0
    assert "within threshold" in capsys.readouterr().out
    assert json.loads(out_json.read_text())["ok"] is True

    assert telemetry_main([
        "regress", "--baseline", baseline, "--current", slow,
    ]) == 1
    assert "REGRESSED" in capsys.readouterr().out

    # Thresholds are CLI-tunable: loosen the ratio, the verdict flips.
    assert telemetry_main([
        "regress", "--baseline", baseline, "--current", slow,
        "--max-ratio", "10",
    ]) == 0


def test_cli_exit_2_on_malformed_input(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _doc(compiled_seconds=0.4))
    assert telemetry_main([
        "regress", "--baseline", str(tmp_path / "missing.json"),
        "--current", baseline,
    ]) == 2
    not_json = tmp_path / "bad.json"
    not_json.write_text("{nope")
    assert telemetry_main([
        "regress", "--baseline", baseline, "--current", str(not_json),
    ]) == 2
    unversioned = _write(tmp_path, "old.json", {"interpreter_loops": {}})
    assert telemetry_main([
        "regress", "--baseline", baseline, "--current", unversioned,
    ]) == 2
    assert telemetry_main([
        "regress", "--baseline", baseline,
        "--bench", str(tmp_path / "no_bench.py"),
    ]) == 2
    assert "error:" in capsys.readouterr().err


def test_gate_catches_injected_slowdown_end_to_end(tmp_path, monkeypatch):
    """The acceptance scenario: a fresh micro-only harness run passes
    against a baseline recorded the same way, and fails once
    REPRO_BENCH_SLOWDOWN injects sleep into every timed region."""
    monkeypatch.delenv("REPRO_BENCH_SLOWDOWN", raising=False)
    args = ["--micro-only", "--micro-repeats", "1",
            "--micro-benchmark", "crc"]
    baseline_doc = regress.run_bench(BENCH, args)
    assert baseline_doc["bench_schema"] == regress.BENCH_SCHEMA
    baseline = _write(tmp_path, "baseline.json", baseline_doc)

    monkeypatch.setenv("REPRO_BENCH_SLOWDOWN", "0.4")
    slow_doc = regress.run_bench(BENCH, args)
    result = regress.compare(json.loads(open(baseline).read()), slow_doc)
    assert not result["ok"], "0.4s injected sleep must trip the gate"
    regressed = [c for c in result["comparisons"] if c["regressed"]]
    assert regressed, "at least one interpreter loop must regress"


def test_run_bench_propagates_harness_failures(tmp_path):
    bad = tmp_path / "bench.py"
    bad.write_text("import sys; sys.exit(3)\n")
    with pytest.raises(regress.RegressError, match="exited 3"):
        regress.run_bench(str(bad), [])


def test_run_bench_uses_current_interpreter(tmp_path):
    """run_bench must invoke sys.executable (no PATH guessing)."""
    script = tmp_path / "bench.py"
    script.write_text(
        "import json, sys\n"
        "out = sys.argv[sys.argv.index('--out') + 1]\n"
        "json.dump({'bench_schema': %d, 'exe': sys.executable},"
        " open(out, 'w'))\n" % regress.BENCH_SCHEMA
    )
    doc = regress.run_bench(str(script), [])
    assert doc["exe"] == sys.executable
