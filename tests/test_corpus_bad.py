"""Conviction regression over the known-violation corpus.

``tests/corpus_bad/`` holds checked-in *transformed* modules, each with
one deliberately planted memory-consistency bug (regenerate with
``python tools/gen_corpus_bad.py``; the manifest records how). Every
entry must be convicted twice:

- **statically** — the CONS rule(s) named in the manifest fire when the
  certifier runs under the entry's technique model, and the TV rule(s)
  when the translation validator checks the entry against its *source*
  module;
- **dynamically** — the oracle recipe for the sabotage class observes
  divergent outputs: strict ``metadata`` restores for deleted restore
  sets, a boundary sweep against a same-world reference for repeated
  environment reads, a self-referenced sweep for dirtied NVM writes
  (the injection changes the program's continuous outputs, so the
  untransformed module is not a valid reference), and — for the
  transform-sabotage entries, whose bug changes continuous semantics —
  a plain guarantee-schedule run against the source reference.

The wait-mode entry flagged ``in_contract_info`` checks the §II-B
contract split: the finding downgrades to info under the CLI's
wait-mode configuration, the guarantee-schedule run stays clean, and
only out-of-contract schedules diverge.
"""

import json
from pathlib import Path

import pytest

from repro.emulator import PowerManager
from repro.emulator.interpreter import run_continuous
from repro.energy import msp430fr5969_platform
from repro.ir.printer import print_module
from repro.ir.textparser import parse_ir
from repro.core.verify import run_against_reference
from repro.staticcheck import Severity, check_compiled, check_translation
from repro.staticcheck.rules import RULES, RuleConfig
from repro.testkit.corpus import compile_for, load_program
from repro.testkit.sabotage import mark_volatile_input
from repro.testkit.sweep import record_boundaries, select_points

CORPUS_DIR = Path(__file__).parent / "corpus_bad"
MANIFEST = json.loads((CORPUS_DIR / "manifest.json").read_text())
ENTRIES = MANIFEST["modules"]
EB = MANIFEST["eb"]

CONTRACT_CONFIG = RuleConfig(severity_overrides={
    "WAR001": Severity.INFO, "WAR002": Severity.INFO,
    "CONS001": Severity.INFO, "CONS002": Severity.INFO,
})


def entry_id(entry):
    return entry["file"].removesuffix(".ir")


def load_cell(entry):
    """Parse the checked-in module and rebuild its compilation cell
    (the policy comes from the technique, not the placement, so the
    corpus stays valid under compiler changes)."""
    bench = load_program(entry["program"])
    plat = msp430fr5969_platform(eb=EB)
    compiled = compile_for(
        entry["technique"], bench.module, plat,
        input_generator=bench.input_generator(),
    )
    module = parse_ir((CORPUS_DIR / entry["file"]).read_text())
    compiled.module = module
    return bench, plat, compiled


def count_anomalies(compiled, reference, plat, inputs):
    """Single-failure boundary sweep; anomalies are completed runs with
    divergent outputs (crash-consistency violations)."""
    ref_report = run_continuous(reference, plat.model, inputs=inputs)
    bounds, _ = record_boundaries(
        compiled, plat.model, plat.vm_size, inputs
    )
    points = select_points(bounds, "static")
    assert points, "sweep found no injectable boundaries"
    anomalies = 0
    for point in points:
        result = run_against_reference(
            compiled.module, reference, plat.model, compiled.policy,
            PowerManager.scheduled([point.offset]),
            vm_size=plat.vm_size, inputs=inputs,
            reference_report=ref_report,
        )
        if not result.crash_consistent:
            anomalies += 1
    return anomalies, len(points)


class TestManifest:
    def test_every_file_is_listed_and_round_trips(self):
        listed = {e["file"] for e in ENTRIES}
        on_disk = {p.name for p in CORPUS_DIR.glob("*.ir")}
        assert listed == on_disk
        for entry in ENTRIES:
            text = (CORPUS_DIR / entry["file"]).read_text()
            assert print_module(parse_ir(text)) == text

    def test_expected_rules_exist(self):
        for entry in ENTRIES:
            for rule_id in entry["expect_rules"]:
                assert rule_id in RULES, rule_id


@pytest.mark.parametrize("entry", ENTRIES, ids=entry_id)
def test_static_conviction(entry):
    bench, plat, compiled = load_cell(entry)
    report = check_compiled(compiled, plat, consistency=True)
    fired = {f.rule_id for f in report.findings}
    if any(rule.startswith("TV") for rule in entry["expect_rules"]):
        tv = check_translation(
            bench.module, compiled.module, technique=entry["technique"]
        )
        fired |= {f.rule_id for f in tv.findings}
        report = tv
    missing = set(entry["expect_rules"]) - fired
    assert not missing, (
        f"{entry['file']}: expected {entry['expect_rules']}, "
        f"got {sorted(fired)}:\n{report.render()}"
    )
    if entry.get("in_contract_info"):
        # Under the wait-mode contract the finding is informational …
        contract = check_compiled(
            compiled, plat, config=CONTRACT_CONFIG, consistency=True
        )
        assert contract.ok(), contract.render()
        assert not contract.ok(Severity.INFO)
    else:
        # … everywhere else it gates at default severity.
        assert not report.ok(), report.render()


class TestDynamicConviction:
    def _entry(self, name):
        (entry,) = [e for e in ENTRIES if e["file"] == name]
        return entry

    def test_delete_restore_convicted_by_strict_restores(self):
        entry = self._entry("warloop_schematic_delete_restore.ir")
        bench, plat, compiled = load_cell(entry)
        inputs = bench.default_inputs()
        common = dict(vm_size=plat.vm_size, inputs=inputs)
        # The forgiving "image" restore reloads every VM variable from
        # its NVM home and silently heals the deleted restore set …
        masked = run_against_reference(
            compiled.module, bench.module, plat.model, compiled.policy,
            PowerManager.energy_budget(EB), restore_fidelity="image",
            **common,
        )
        assert masked.ok, masked.failure_reason
        # … the strict "metadata" restore honors exactly the checkpoint
        # metadata the static rule reasons about, and convicts.
        convicted = run_against_reference(
            compiled.module, bench.module, plat.model, compiled.policy,
            PowerManager.energy_budget(EB), restore_fidelity="metadata",
            **common,
        )
        assert not convicted.ok
        assert not convicted.outputs_match or convicted.crashed

    def test_repeated_read_convicted_by_boundary_sweep(self):
        entry = self._entry("warloop_ratchet_repeated_read.ir")
        bench, plat, compiled = load_cell(entry)
        # Both runs must sample the same world: the reference carries
        # the same volatile-input marking as the sabotaged module.
        reference = mark_volatile_input(
            bench.module, entry["detail"]["volatile_input"]
        )
        anomalies, total = count_anomalies(
            compiled, reference, plat, bench.default_inputs()
        )
        assert anomalies > 0, f"0/{total} schedules diverged"

    def test_dirty_write_convicted_by_boundary_sweep(self):
        entry = self._entry("warloop_ratchet_dirty_write.ir")
        bench, plat, compiled = load_cell(entry)
        # The injected increment changes the continuous-power outputs,
        # so the module's own continuous run is the reference: any
        # divergence under a single injected failure is a replay bug.
        anomalies, total = count_anomalies(
            compiled, compiled.module, plat, bench.default_inputs()
        )
        assert anomalies > 0, f"0/{total} schedules diverged"

    @pytest.mark.parametrize("name", [
        "crc_schematic_reordered_store.ir",
        "warloop_schematic_leaked_private.ir",
        "sumloop_ratchet_dropped_store.ir",
    ])
    def test_transform_sabotage_convicted_on_any_schedule(self, name):
        # Transform bugs change continuous-power semantics, so no fault
        # injection is needed: the run diverges from the source
        # reference even on the guarantee schedule.
        entry = self._entry(name)
        bench, plat, compiled = load_cell(entry)
        run = run_against_reference(
            compiled.module, bench.module, plat.model, compiled.policy,
            PowerManager.energy_budget(EB),
            vm_size=plat.vm_size, inputs=bench.default_inputs(),
        )
        assert run.completed, run.failure_reason
        assert not run.outputs_match

    def test_wait_mode_repeated_read_contract_split(self):
        entry = self._entry("sumloop_schematic_repeated_read.ir")
        bench, plat, compiled = load_cell(entry)
        inputs = bench.default_inputs()
        reference = mark_volatile_input(
            bench.module, entry["detail"]["volatile_input"]
        )
        # In contract: the certified budget never fails mid-segment, so
        # the sampling region is never replayed and the run is clean.
        guarantee = run_against_reference(
            compiled.module, reference, plat.model, compiled.policy,
            PowerManager.energy_budget(EB),
            vm_size=plat.vm_size, inputs=inputs,
        )
        assert guarantee.ok, guarantee.failure_reason
        # Out of contract: injected boundary failures replay the sample.
        anomalies, total = count_anomalies(compiled, reference, plat, inputs)
        assert anomalies > 0, f"0/{total} schedules diverged"
