"""Tests for profiling and path extraction."""

import pytest

from repro.analysis import CFG, FunctionAccessSummaries, LoopNest
from repro.analysis.callgraph import CallGraph
from repro.core.region import CostEnv, RegionBuilder
from repro.core.tracing import (
    collect_profile,
    condense_block_sequence,
    loop_iteration_sequences,
    loop_region_paths,
    region_paths_from_traces,
)
from repro.core.summaries import LoopResult, SharedAlloc
from repro.energy import msp430fr5969_model
from repro.frontend import compile_source
from tests.helpers import BRANCHY_SRC, CALLS_SRC, branchy_inputs, calls_inputs

MODEL = msp430fr5969_model()


def profile_for(source, inputs_fn, runs=3):
    module = compile_source(source)

    def gen(run):
        return inputs_fn(seed=run)

    return module, collect_profile(module, MODEL, gen, runs=runs)


class TestCollectProfile:
    def test_traces_recorded_per_function(self):
        module, profile = profile_for(CALLS_SRC, calls_inputs)
        assert "main" in profile.traces
        assert "weight" in profile.traces
        assert "scale" in profile.traces

    def test_trace_counts_accumulate(self):
        module, profile = profile_for(CALLS_SRC, calls_inputs, runs=2)
        # weight is called 48 times per run * 2 runs.
        total = sum(count for _, count in profile.traces["weight"])
        assert total == 48 * 2

    def test_traces_sorted_by_frequency(self):
        module, profile = profile_for(CALLS_SRC, calls_inputs)
        counts = [count for _, count in profile.traces["weight"]]
        assert counts == sorted(counts, reverse=True)

    def test_traces_start_at_entry(self):
        module, profile = profile_for(CALLS_SRC, calls_inputs)
        for name, traces in profile.traces.items():
            entry = module.functions[name].entry.label
            for blocks, _ in traces:
                assert blocks[0] == entry

    def test_branchy_inputs_create_distinct_paths(self):
        module, profile = profile_for(BRANCHY_SRC, branchy_inputs, runs=4)
        # selector parity differs between runs -> at least 2 distinct traces
        assert len(profile.traces["main"]) >= 2


class TestCondensation:
    def _region(self, source, inputs_fn):
        module, profile = profile_for(source, inputs_fn)
        func = module.functions["main"]
        cfg = CFG(func)
        nest = LoopNest(cfg)
        loop_results = {}
        env = CostEnv(
            model=MODEL,
            eb=1_000_000.0,
            summaries=FunctionAccessSummaries(module, CallGraph(module)),
            function_results={},
            loop_results=loop_results,
        )
        builder = RegionBuilder(func, cfg, nest, env)
        # Give each top-level loop a stub result so it can collapse.
        for loop in nest.bottom_up():
            loop_results[loop.header] = LoopResult(
                header=loop.header,
                maxiter=loop.maxiter or 8,
                iteration_energy=1.0,
                numit=None,
                total_energy=8.0,
                shared=SharedAlloc(),
            )
        region = builder.build_function_region()
        return module, profile, region, nest

    def test_condensed_paths_are_region_paths(self):
        module, profile, region, nest = self._region(
            BRANCHY_SRC, branchy_inputs
        )
        paths = region_paths_from_traces(region, profile.traces["main"])
        assert paths
        edges = set(region.edges())
        for path in paths:
            assert path[0] == region.entry_uid
            for a, b in zip(path, path[1:]):
                assert (a, b) in edges

    def test_loop_blocks_collapse_to_single_atom(self):
        module, profile, region, nest = self._region(
            BRANCHY_SRC, branchy_inputs
        )
        (blocks, _count) = profile.traces["main"][0]
        path = condense_block_sequence(region, blocks)
        loop_uids = set(region.loop_atom_of.values())
        # The loop atom appears exactly once despite 12 iterations.
        assert sum(1 for uid in path if uid in loop_uids) == len(loop_uids)

    def test_foreign_blocks_rejected(self):
        module, profile, region, nest = self._region(
            BRANCHY_SRC, branchy_inputs
        )
        assert condense_block_sequence(region, ("nonexistent",)) is None


class TestLoopIterations:
    def test_iteration_extraction(self):
        module, profile = profile_for(BRANCHY_SRC, branchy_inputs)
        func = module.functions["main"]
        nest = LoopNest(CFG(func))
        loop = nest.loops[0]
        (blocks, _), *_ = profile.traces["main"]
        iterations = loop_iteration_sequences(loop, blocks)
        # 12 loop iterations -> 12 header-to-latch windows (the final exit
        # check contributes a header-only partial iteration).
        assert len(iterations) in (12, 13)
        for iteration in iterations:
            assert iteration[0] == loop.header
            assert all(label in loop.body for label in iteration)

    def test_loop_region_paths(self):
        module, profile = profile_for(BRANCHY_SRC, branchy_inputs, runs=4)
        func = module.functions["main"]
        cfg = CFG(func)
        nest = LoopNest(cfg)
        loop = nest.loops[0]
        env = CostEnv(
            model=MODEL,
            eb=1_000_000.0,
            summaries=FunctionAccessSummaries(module, CallGraph(module)),
            function_results={},
            loop_results={},
        )
        region = RegionBuilder(func, cfg, nest, env).build_loop_region(loop)
        paths = loop_region_paths(region, loop, profile.traces["main"])
        assert paths
        # Both branch arms appear across runs (selector parity varies).
        distinct_atoms = {uid for path in paths for uid in path}
        assert len(distinct_atoms) >= 4
