"""Program analyses used by SCHEMATIC and the baselines.

Everything here is a classic compiler analysis, implemented on the repro IR:

- :mod:`repro.analysis.cfg` — control-flow graph view of a function.
- :mod:`repro.analysis.dominators` — immediate dominators (Cooper-Harvey-
  Kennedy) and dominance queries.
- :mod:`repro.analysis.loops` — natural loops and the loop-nesting tree.
- :mod:`repro.analysis.callgraph` — call graph, recursion rejection and the
  reverse-topological (callee-first) order SCHEMATIC analyzes functions in.
- :mod:`repro.analysis.liveness` — variable-level liveness, interprocedural
  through call summaries (used by Eq. 2's save/restore trimming).
- :mod:`repro.analysis.accesses` — per-block variable read/write counts
  (the ``nR``/``nW`` of Eq. 1).
- :mod:`repro.analysis.ranges` — interprocedural value-range analysis and
  loop trip-count inference (verifies ``@maxiter``, infers missing bounds).
"""

from repro.analysis.cfg import CFG, Edge
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopNest
from repro.analysis.callgraph import CallGraph
from repro.analysis.liveness import FunctionAccessSummaries, LivenessInfo
from repro.analysis.accesses import AccessCounts, block_access_counts
from repro.analysis.ranges import (
    FunctionRanges,
    Interval,
    ModuleRanges,
    TripBound,
    apply_inferred_bounds,
    infer_module_bounds,
)

__all__ = [
    "CFG",
    "Edge",
    "DominatorTree",
    "Loop",
    "LoopNest",
    "CallGraph",
    "FunctionAccessSummaries",
    "LivenessInfo",
    "AccessCounts",
    "block_access_counts",
    "FunctionRanges",
    "Interval",
    "ModuleRanges",
    "TripBound",
    "apply_inferred_bounds",
    "infer_module_bounds",
]
