"""Trace and metrics tooling CLI.

Usage::

    # Render the headroom / traffic / phase report of a trace:
    python -m repro.telemetry report traces/run_all.jsonl [--top N]

    # Convert a JSONL trace to Chrome trace-event JSON (Perfetto):
    python -m repro.telemetry convert traces/run_all.jsonl -o out.json

    # Merge metrics sidecars (or a trace's metrics block) and render a
    # table, Prometheus exposition text, or the JSONL rollup:
    python -m repro.telemetry metrics metrics-dir/ [--format table|prom|jsonl]

    # Inspect postmortem bundles left by a crashed worker or sweep:
    python -m repro.telemetry postmortem metrics-dir/ [--tail N]

    # Benchmark-regression gate against the committed baseline:
    python -m repro.telemetry regress --baseline BENCH_pr8.json

Exit codes: ``report`` exits 1 when any observed segment window exceeds
its certified static bound; ``regress`` exits 0 when every shared timing
is within threshold, 1 on a regression, 2 on malformed/mismatched
input. All commands exit 2 on unreadable or schema-invalid files.
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import sys
from pathlib import Path
from typing import List, Optional

from repro.telemetry import flight, regress as regress_mod, rollup
from repro.telemetry.events import TraceSchemaError
from repro.telemetry.exporters import read_jsonl, write_chrome
from repro.telemetry.metrics import MetricsError, MetricsRegistry
from repro.telemetry.prom import render as render_prom, render_table
from repro.telemetry.report import analyze, headroom_violations, render


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render a trace as text")
    report.add_argument("trace", help="JSONL trace file")
    report.add_argument(
        "--top", type=int, default=10,
        help="hottest segments to show (0 = all; default 10)",
    )

    convert = sub.add_parser(
        "convert", help="JSONL trace -> Chrome trace-event JSON"
    )
    convert.add_argument("trace", help="JSONL trace file")
    convert.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <trace>.chrome.json)",
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="merge metrics sidecars / extract a trace's metrics block",
    )
    metrics_cmd.add_argument(
        "source",
        help="metrics directory (metrics-*.jsonl sidecars), one sidecar "
             "file, or a JSONL trace",
    )
    metrics_cmd.add_argument(
        "--format", choices=("table", "prom", "jsonl"), default="table",
        help="output format (default: human table)",
    )
    metrics_cmd.add_argument(
        "-o", "--output", default=None,
        help="write to a file instead of stdout",
    )

    postmortem = sub.add_parser(
        "postmortem", help="render postmortem bundles from a directory"
    )
    postmortem.add_argument(
        "directory", help="directory holding postmortem-*.json bundles"
    )
    postmortem.add_argument(
        "--tail", type=int, default=20,
        help="flight-recorder events to show per bundle (default 20)",
    )

    regress = sub.add_parser(
        "regress",
        help="compare a fresh bench_engine run against a baseline",
    )
    regress.add_argument(
        "--baseline", required=True,
        help="committed baseline document (BENCH_pr8.json)",
    )
    regress.add_argument(
        "--current", default=None,
        help="existing result document to compare (default: run the "
             "harness now)",
    )
    regress.add_argument(
        "--bench", default=os.path.join("tools", "bench_engine.py"),
        help="timing-harness script (default: tools/bench_engine.py)",
    )
    regress.add_argument(
        "--bench-args", default="",
        help="extra arguments for the harness, shell-quoted "
             '(e.g. --bench-args "--micro-only --jobs 2")',
    )
    regress.add_argument(
        "--max-ratio", type=float, default=regress_mod.DEFAULT_MAX_RATIO,
        help="regression iff current > baseline * RATIO (default "
             f"{regress_mod.DEFAULT_MAX_RATIO})",
    )
    regress.add_argument(
        "--min-seconds", type=float,
        default=regress_mod.DEFAULT_MIN_SECONDS,
        help="... and current - baseline > SECONDS (default "
             f"{regress_mod.DEFAULT_MIN_SECONDS})",
    )
    regress.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the comparison result as JSON",
    )
    return parser


def _load_metrics(source: str) -> MetricsRegistry:
    """A registry from a sidecar directory, one sidecar, or a trace."""
    if os.path.isdir(source):
        return rollup.rollup_directory(source)
    with open(source, "r", encoding="utf-8") as fh:
        first = fh.readline()
    try:
        head = json.loads(first) if first.strip() else {}
    except json.JSONDecodeError:
        head = {}
    registry = MetricsRegistry()
    if isinstance(head, dict) and head.get("kind") == "metrics_header":
        registry.merge_records(rollup.read_sidecar(source))
        return registry
    # Fall through: treat as a trace and merge its metrics record(s).
    for record in read_jsonl(source):
        if record.get("kind") == "metrics":
            registry.merge_records(record["metrics"])
    return registry


def _cmd_metrics(args) -> int:
    try:
        registry = _load_metrics(args.source)
    except FileNotFoundError:
        print(f"error: no such file or directory {args.source}",
              file=sys.stderr)
        return 2
    except (MetricsError, TraceSchemaError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "prom":
        text = render_prom(registry)
    elif args.format == "jsonl":
        text = "\n".join(
            json.dumps(record, sort_keys=True)
            for record in registry.snapshot()
        )
        text = text + "\n" if text else ""
    else:
        text = render_table(registry) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_postmortem(args) -> int:
    try:
        bundles = flight.read_bundles(args.directory)
    except (json.JSONDecodeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not bundles:
        print(f"no postmortem bundles under {args.directory}")
        return 0
    for i, bundle in enumerate(bundles):
        if i:
            print()
        print(flight.render_bundle(bundle, tail=args.tail))
    return 0


def _cmd_regress(args) -> int:
    try:
        baseline = regress_mod.load_doc(args.baseline, "baseline")
        if args.current is not None:
            current = regress_mod.load_doc(args.current, "current")
        else:
            current = regress_mod.run_bench(
                args.bench, shlex.split(args.bench_args)
            )
        result = regress_mod.compare(
            baseline, current,
            max_ratio=args.max_ratio, min_seconds=args.min_seconds,
        )
    except regress_mod.RegressError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(regress_mod.render_report(result))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if result["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "postmortem":
        return _cmd_postmortem(args)
    if args.command == "regress":
        return _cmd_regress(args)

    try:
        records = read_jsonl(args.trace)
    except FileNotFoundError:
        print(f"error: no such trace {args.trace}", file=sys.stderr)
        return 2
    except (TraceSchemaError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "convert":
        output = args.output or str(
            Path(args.trace).with_suffix("")
        ) + ".chrome.json"
        path = write_chrome(records, output)
        print(f"wrote {path}")
        return 0

    summary = analyze(records)
    try:
        print(render(summary, top=args.top or None))
    except BrokenPipeError:
        # Reader (e.g. ``| head``) went away; the verdict still stands.
        sys.stderr.close()
    return 1 if headroom_violations(summary) else 0


if __name__ == "__main__":
    sys.exit(main())
