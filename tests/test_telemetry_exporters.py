"""Exporter tests: JSONL round-trip, Chrome trace validity and per-track
timestamp monotonicity, and the ``python -m repro.telemetry`` CLI.

The Chrome golden test drives a fake clock so the expected structure is
exact; the monotonicity test is the load-bearing one — Perfetto and
``chrome://tracing`` silently mis-render tracks whose events travel back
in time, which is easy to cause because each emulation run's timeline
restarts at zero (hence one tid per run).
"""

import json

import pytest

from repro import telemetry
from repro.telemetry import __main__ as cli
from repro.telemetry.events import TraceSchemaError, header_record
from repro.telemetry.exporters import (
    chrome_trace,
    export,
    read_jsonl,
    trace_records,
    write_chrome,
    write_jsonl,
)


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def tick(self, us):
        self.ns += us * 1000


@pytest.fixture(autouse=True)
def _no_global_leak():
    yield
    assert telemetry.get() is None, "test leaked an enabled telemetry handle"
    telemetry.disable()


def _sample_handle():
    """A deterministic two-run trace exercising every record kind."""
    clock = FakeClock()
    with telemetry.enabled(meta={"tool": "test"}, clock_ns=clock) as tm:
        with tm.span("place", technique="schematic"):
            clock.tick(100)
        tm.event("segment-bound", track=telemetry.TRACK_STATIC, ts=0,
                 ckpt=1, bound_nj=50.0, eb_nj=100.0)
        for run in (1, 2):
            with tm.scope(benchmark="b", technique="schematic", run=run):
                tm.event("run-begin", track=telemetry.TRACK_RUNTIME, ts=0)
                tm.event("ckpt-save", track=telemetry.TRACK_RUNTIME,
                         ts=40, ckpt=1, window_nj=12.0)
                tm.event("run-end", track=telemetry.TRACK_RUNTIME, ts=60,
                         completed=True)
        tm.counter("engine.cells").add(4)
    return tm


# -- JSONL --------------------------------------------------------------------


def test_jsonl_roundtrip_preserves_records(tmp_path):
    tm = _sample_handle()
    path = write_jsonl(tm, tmp_path / "t.jsonl")
    records = read_jsonl(path)
    assert records == trace_records(tm)
    assert records[0]["kind"] == "header"
    assert records[0]["meta"] == {"tool": "test"}
    assert records[-1]["kind"] == "metrics"
    [metric] = records[-1]["metrics"]
    assert metric == {"kind": "counter", "name": "engine.cells", "value": 4}


def test_read_jsonl_rejects_schema_violations(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps(header_record({})) + "\n"
        + json.dumps({"kind": "event", "track": "runtime", "name": "e"})
        + "\n"
    )
    with pytest.raises(TraceSchemaError, match="line 2"):
        read_jsonl(path)


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(json.dumps(header_record({})) + "\n\n\n")
    assert len(read_jsonl(path)) == 1


# -- Chrome -------------------------------------------------------------------


def test_chrome_trace_golden():
    """Exact structure for a deterministic trace (fake clock): process
    names, the compiler span, per-run runtime threads and the synthesized
    segment bar."""
    tm = _sample_handle()
    doc = chrome_trace(trace_records(tm))
    assert doc["otherData"] == {"tool": "test"}

    names = [
        (e["pid"], e["args"]["name"])
        for e in doc["traceEvents"] if e["ph"] == "M"
    ]
    assert names == [
        (1, "compiler (real time, us)"),
        (2, "static certifier"),
        (3, "runtime (emulated cycles)"),
    ]

    span = next(e for e in doc["traceEvents"] if e["name"] == "place")
    assert span == {
        "name": "place", "cat": "compiler", "pid": 1, "tid": 0,
        "ts": 0, "dur": 100, "ph": "X",
        "args": {"technique": "schematic"},
    }

    # One synthesized segment bar per run, spanning run-begin -> save.
    segments = [e for e in doc["traceEvents"] if e.get("cat") == "segment"]
    assert [(s["pid"], s["tid"], s["ts"], s["dur"]) for s in segments] == [
        (3, 1, 0, 40), (3, 2, 0, 40),
    ]
    assert segments[0]["name"] == "segment -> #1"
    assert segments[0]["args"] == {"ckpt": 1, "window_nj": 12.0}


def test_chrome_trace_is_valid_json_and_monotonic(tmp_path):
    tm = _sample_handle()
    path = write_chrome(trace_records(tm), tmp_path / "t.chrome.json")
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    last = {}
    for entry in doc["traceEvents"]:
        if entry["ph"] == "M":
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            assert key in entry
        track = (entry["pid"], entry["tid"])
        assert entry["ts"] >= last.get(track, 0), (
            f"track {track} travels back in time at {entry['name']}"
        )
        last[track] = entry["ts"]


def test_chrome_runs_get_distinct_threads():
    """Two runs whose timelines both start at zero must land on distinct
    tids — merging them would interleave out of order."""
    tm = _sample_handle()
    doc = chrome_trace(trace_records(tm))
    tids = {
        e["tid"] for e in doc["traceEvents"]
        if e["pid"] == 3 and e["ph"] != "M"
    }
    assert tids == {1, 2}


def test_export_writes_the_artifact_pair(tmp_path):
    tm = _sample_handle()
    paths = export(tm, tmp_path / "traces", prefix="unit")
    assert paths["jsonl"].name == "unit.jsonl"
    assert paths["chrome"].name == "unit.chrome.json"
    assert read_jsonl(paths["jsonl"]) == trace_records(tm)
    json.loads(paths["chrome"].read_text())


# -- CLI ----------------------------------------------------------------------


def _write_trace(tmp_path, observed, bound):
    records = [
        header_record({"tool": "test"}),
        {"kind": "event", "track": "static", "name": "segment-bound",
         "ts": 0, "attrs": {"benchmark": "b", "technique": "t", "ckpt": 1,
                            "bound_nj": bound, "eb_nj": 100.0}},
        {"kind": "event", "track": "runtime", "name": "ckpt-save",
         "ts": 5, "attrs": {"benchmark": "b", "technique": "t", "ckpt": 1,
                            "run": 1, "window_nj": observed}},
    ]
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


def test_cli_report_ok_exits_zero(tmp_path, capsys):
    path = _write_trace(tmp_path, observed=40.0, bound=50.0)
    assert cli.main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "headroom ok" in out


def test_cli_report_violation_exits_one(tmp_path, capsys):
    path = _write_trace(tmp_path, observed=60.0, bound=50.0)
    assert cli.main(["report", str(path)]) == 1
    assert "!!" in capsys.readouterr().out


def test_cli_report_missing_or_invalid_trace_exits_two(tmp_path, capsys):
    assert cli.main(["report", str(tmp_path / "absent.jsonl")]) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "event"}\n')
    assert cli.main(["report", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_convert_writes_chrome_json(tmp_path, capsys):
    path = _write_trace(tmp_path, observed=40.0, bound=50.0)
    out = tmp_path / "out.json"
    assert cli.main(["convert", str(path), "-o", str(out)]) == 0
    json.loads(out.read_text())
    # Default output name derives from the trace path.
    assert cli.main(["convert", str(path)]) == 0
    assert (tmp_path / "trace.chrome.json").exists()
