"""MiniC: a small C-like language lowered to the repro IR.

The paper compiles C benchmarks with clang to LLVM IR; this repo replaces
that pipeline with MiniC — enough C to express the MiBench2 kernels:

- integer types ``u8 i8 u16 i16 u32 i32``, scalars and 1-D arrays,
- globals (with initializers), ``const`` data (S-boxes, twiddle tables),
- functions with by-value scalar and by-reference array parameters,
- ``if/else``, ``while``, ``for``, ``break``, ``continue``, ``return``,
- the usual C operators with short-circuit ``&&``/``||`` and casts,
- ``@maxiter(n)`` loop annotations (the paper's loop-bound annotations,
  §III-B2); constant-bound ``for`` loops are inferred automatically.

Use :func:`compile_source` to go from source text to a validated
:class:`~repro.ir.Module`.
"""

from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse
from repro.frontend.lowering import compile_source, lower_program

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "compile_source",
    "lower_program",
]
