"""Flight recorder: a bounded ring of recent events plus state snapshots,
dumped as a postmortem bundle when a worker crashes or a sweep is
interrupted.

A ten-hour design-space sweep that dies on cell 9,412 is only debuggable
if the wreckage says what that worker was doing. The recorder is
deliberately tiny: a fixed-size ring (:class:`collections.deque`) of
``(seq, label, payload)`` events — cell starts, checkpoint commits,
reboots — plus registered *state providers* (callables returning a JSON
dict) that are invoked only at dump time, so steady-state cost is one
deque append per cold-path event and zero when disabled.

The postmortem bundle is a single JSON file per crashing process::

    <dir>/postmortem-<pid>.json
    {"kind": "postmortem", "schema": 1, "pid": ..., "reason": ...,
     "error": {"type": ..., "message": ..., "traceback": ...},
     "events": [...oldest->newest...], "state": {...providers...},
     "metrics": [...registry snapshot, when metrics are enabled...]}

``python -m repro.telemetry postmortem <dir>`` renders every bundle in a
directory. The same process-global enable/get/disable discipline as
:mod:`repro.telemetry.metrics` applies; like metrics, the recorder is
only touched from cold paths, so enabling it preserves bit-identity of
all evaluation outputs.
"""

from __future__ import annotations

import json
import os
import traceback
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from . import metrics

FLIGHT_SCHEMA = 1
DEFAULT_CAPACITY = 256

BUNDLE_PREFIX = "postmortem-"
BUNDLE_SUFFIX = ".json"


class FlightRecorder:
    """Bounded event ring + lazy state providers for one process."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Tuple[int, str, Dict[str, Any]]] = deque(
            maxlen=capacity
        )
        self._seq = 0
        self._providers: Dict[str, Callable[[], Dict[str, Any]]] = {}

    def record(self, label: str, **payload: Any) -> None:
        """Append one event; O(1), drops the oldest beyond capacity."""
        self._seq += 1
        self._events.append((self._seq, label, payload))

    def provide(
        self, name: str, provider: Callable[[], Dict[str, Any]]
    ) -> None:
        """Register a state provider sampled only at dump time (e.g. the
        emulator's power/meter state). Last registration per name wins —
        a fresh interpreter replaces a finished one's stale closure."""
        self._providers[name] = provider

    def events(self) -> List[Dict[str, Any]]:
        return [
            {"seq": seq, "label": label, **payload}
            for seq, label, payload in self._events
        ]

    def state(self) -> Dict[str, Any]:
        """Sample every provider; a provider that raises contributes its
        error rather than killing the dump (the dump path runs inside
        crash handling — it must never throw)."""
        out: Dict[str, Any] = {}
        for name in sorted(self._providers):
            try:
                out[name] = self._providers[name]()
            except Exception as exc:  # noqa: BLE001 - forensics, not flow
                out[name] = {"provider_error": f"{type(exc).__name__}: {exc}"}
        return out

    def bundle(
        self,
        reason: str,
        error: Optional[BaseException] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Assemble the postmortem object (no I/O)."""
        doc: Dict[str, Any] = {
            "kind": "postmortem",
            "schema": FLIGHT_SCHEMA,
            "pid": os.getpid(),
            "reason": reason,
            "events": self.events(),
            "state": self.state(),
        }
        if error is not None:
            doc["error"] = {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": "".join(
                    traceback.format_exception(
                        type(error), error, error.__traceback__
                    )
                ),
            }
        mm = metrics.get()
        if mm is not None:
            doc["metrics"] = mm.snapshot()
        if extra:
            doc.update(extra)
        return doc

    def dump(
        self,
        directory: str,
        reason: str,
        error: Optional[BaseException] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write the bundle to ``<directory>/postmortem-<pid>.json``
        (atomic temp + rename) and return the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"{BUNDLE_PREFIX}{os.getpid()}{BUNDLE_SUFFIX}"
        )
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                self.bundle(reason, error=error, extra=extra),
                fh, sort_keys=True, indent=2,
            )
            fh.write("\n")
        os.replace(tmp, path)
        return path


# ---------------------------------------------------------------- global


_ACTIVE: Optional[FlightRecorder] = None


def enable(capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    global _ACTIVE
    _ACTIVE = FlightRecorder(capacity=capacity)
    return _ACTIVE


def disable() -> Optional[FlightRecorder]:
    global _ACTIVE
    fr = _ACTIVE
    _ACTIVE = None
    return fr


def get() -> Optional[FlightRecorder]:
    """The active recorder, or None. Cold paths bind and guard, exactly
    as with :func:`repro.telemetry.metrics.get`."""
    return _ACTIVE


# -------------------------------------------------------------- reading


def read_bundles(directory: str) -> List[Dict[str, Any]]:
    """Every postmortem bundle under ``directory``, sorted by filename."""
    bundles: List[Dict[str, Any]] = []
    if not os.path.isdir(directory):
        return bundles
    for name in sorted(os.listdir(directory)):
        if not (
            name.startswith(BUNDLE_PREFIX) and name.endswith(BUNDLE_SUFFIX)
        ):
            continue
        with open(
            os.path.join(directory, name), "r", encoding="utf-8"
        ) as fh:
            doc = json.load(fh)
        doc.setdefault("_file", name)
        bundles.append(doc)
    return bundles


def render_bundle(doc: Dict[str, Any], tail: int = 20) -> str:
    """Human-readable postmortem: reason, error, last events, state."""
    lines = [
        f"postmortem {doc.get('_file', '')} "
        f"(pid {doc.get('pid')}, reason: {doc.get('reason')})".rstrip()
    ]
    error = doc.get("error")
    if error:
        lines.append(f"  error: {error['type']}: {error['message']}")
    events = doc.get("events") or []
    if events:
        lines.append(f"  last {min(tail, len(events))} of "
                     f"{len(events)} recorded events:")
        for event in events[-tail:]:
            payload = {
                k: v for k, v in event.items()
                if k not in ("seq", "label")
            }
            rendered = (
                " " + json.dumps(payload, sort_keys=True) if payload else ""
            )
            lines.append(
                f"    [{event['seq']:>6}] {event['label']}{rendered}"
            )
    state = doc.get("state") or {}
    for name in sorted(state):
        lines.append(f"  state.{name}: "
                     f"{json.dumps(state[name], sort_keys=True)}")
    return "\n".join(lines)
