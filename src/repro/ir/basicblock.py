"""Basic blocks: straight-line instruction sequences ended by a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import IRError
from repro.ir.instructions import Branch, Instruction, Jump, Ret


class BasicBlock:
    """A labeled sequence of instructions; the last one is the terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> None:
        """Append an instruction; refuses to add past a terminator."""
        if self.is_terminated:
            raise IRError(
                f"block .{self.label} already terminated; cannot append {inst}"
            )
        self.instructions.append(inst)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The terminator instruction, or None if the block is open."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successor_labels(self) -> List[str]:
        """Labels of CFG successor blocks (empty for returns/open blocks)."""
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            if term.if_true == term.if_false:
                return [term.if_true]
            return [term.if_true, term.if_false]
        if isinstance(term, Ret):
            return []
        return []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        body = "\n".join(f"  {inst}" for inst in self.instructions)
        return f".{self.label}:\n{body}"

    def __repr__(self) -> str:
        return f"BasicBlock(.{self.label}, {len(self.instructions)} insts)"
