"""Tests for the §VI adaptive-recompilation driver."""

import pytest

from repro.core.adaptive import run_with_adaptation
from repro.core.placement import SchematicConfig
from repro.emulator import run_continuous
from repro.energy import msp430fr5969_model
from tests.helpers import compile_sum_loop, platform, sum_loop_inputs

MODEL = msp430fr5969_model()


def gen(run):
    return sum_loop_inputs(seed=run)


class TestAdaptation:
    def test_no_adaptation_needed_when_budget_holds(self):
        module = compile_sum_loop()
        result = run_with_adaptation(
            module,
            platform(eb=1_000.0),
            actual_eb=1_000.0,
            inputs=sum_loop_inputs(),
            input_generator=gen,
            config=SchematicConfig(profile_runs=1),
        )
        assert result.completed
        assert result.recompilations == 0
        assert result.assumed_ebs == [1_000.0]

    def test_degraded_capacitor_triggers_updates(self):
        # Firmware assumes a 5 uJ capacitor; the real (aged) one holds
        # 200 nJ — too little for the two-checkpoint placement.
        module = compile_sum_loop()
        ref = run_continuous(module, MODEL, inputs=sum_loop_inputs())
        result = run_with_adaptation(
            module,
            platform(eb=5_000.0),
            actual_eb=200.0,
            inputs=sum_loop_inputs(),
            input_generator=gen,
            config=SchematicConfig(profile_runs=1),
            derating=0.5,
        )
        assert result.completed
        assert result.recompilations >= 1
        assert result.final_assumed_eb <= 400.0
        assert result.final_report.outputs == ref.outputs

    def test_assumed_budget_monotonically_decreases(self):
        module = compile_sum_loop()
        result = run_with_adaptation(
            module,
            platform(eb=5_000.0),
            actual_eb=200.0,
            inputs=sum_loop_inputs(),
            input_generator=gen,
            config=SchematicConfig(profile_runs=1),
            derating=0.5,
        )
        assert result.completed
        assert result.assumed_ebs == sorted(result.assumed_ebs, reverse=True)

    def test_gives_up_on_hopeless_capacitor(self):
        # 110 nJ cannot even fund a save/restore pair on this model.
        module = compile_sum_loop()
        result = run_with_adaptation(
            module,
            platform(eb=2_000.0),
            actual_eb=110.0,
            inputs=sum_loop_inputs(),
            input_generator=gen,
            config=SchematicConfig(profile_runs=1),
            max_recompilations=6,
        )
        assert not result.completed
        assert result.gave_up_reason

    def test_invalid_derating_rejected(self):
        with pytest.raises(ValueError):
            run_with_adaptation(
                compile_sum_loop(),
                platform(eb=1_000.0),
                actual_eb=500.0,
                derating=1.5,
            )
