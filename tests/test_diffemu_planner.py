"""Unit tests for differential-emulation planning, caching and fallback.

Covers the parts of :mod:`repro.emulator.diffemu` the identity suite
exercises only end-to-end:

- :func:`plan_cell` window math per power mode against a real recorded
  tape (synthesize / fork / cold selection, fork-point safety);
- column sharing: one tape serves every mode of its column;
- cache-key discipline: :meth:`PowerSpec.key_parts` is a pinned schema
  (mode, seed and schedule always included — a SCHEDULED and a
  STOCHASTIC cell must never share), and tape keys are stable across
  processes;
- sabotage: a corrupted stored snapshot fails digest verification and
  the engine falls back to cold emulation with the correct report.
"""

import os
import subprocess
import sys

import pytest

from repro.emulator import run_continuous, run_intermittent
from repro.emulator.diffemu import (
    TAPE_SCHEMA,
    DiffEmuStats,
    PowerSpec,
    SnapshotTape,
    TapeStore,
    plan_cell,
    record_tape,
    run_cell,
)
from repro.energy import msp430fr5969_platform
from repro.experiments.common import EvaluationContext
from repro.runner.cache import ArtifactCache
from repro.testkit.corpus import compile_for, load_program

TBPF = 10_000

#: The fixture column's budget is derived from a *small* period so the
#: recording commits many checkpoints — the planner tests need a tape
#: with several recharge windows and snapshots.
COLUMN_TBPF = 500


@pytest.fixture(scope="module")
def column():
    """One schematic column (the ``calls`` corpus program) compiled at a
    tight budget, and its recorded tape."""
    bench = load_program("calls")
    proto = msp430fr5969_platform()
    ref = run_continuous(
        bench.module, proto.model, inputs=bench.default_inputs()
    )
    eb = ref.energy.total / max(ref.active_cycles, 1) * COLUMN_TBPF
    plat = msp430fr5969_platform(eb=eb)
    compiled = compile_for(
        "schematic", bench.module, plat,
        input_generator=bench.input_generator(),
    )
    tape = record_tape(
        compiled.module, plat.model, compiled.policy,
        vm_size=plat.vm_size, inputs=bench.default_inputs(),
    )
    return plat, bench, compiled, eb, tape


# -- planning -----------------------------------------------------------------


def test_plan_synthesize_when_predicate_never_fires(column):
    *_, tape = column
    ample = max(c for c, _, _ in tape.recharge_spans) * 2
    plan = plan_cell(tape, PowerSpec.energy_budget(ample))
    assert plan.kind == "synthesize"


def test_plan_cold_when_first_window_fires(column):
    """A budget below window 0's consumption fails before any snapshot
    (the first capture happens at the first commit, after window 0)."""
    *_, tape = column
    tiny = tape.recharge_spans[0][0] * 0.5
    plan = plan_cell(tape, PowerSpec.energy_budget(tiny))
    assert plan.kind == "cold"
    assert plan.first_failure_window == 0


def test_plan_fork_picks_last_safe_snapshot(column):
    """Failing a late window forks from a snapshot strictly before it."""
    *_, tape = column
    spans = tape.recharge_spans
    assert len(spans) >= 3, "recording too short for this test"
    # A window whose consumption strictly exceeds every earlier window:
    # a budget between the two fails there first, and snapshots up to it
    # are safe.
    target = next(
        j for j in range(1, len(spans))
        if spans[j][0] > max(c for c, _, _ in spans[:j])
    )
    eb = max(c for c, _, _ in spans[:target]) + 1e-9
    plan = plan_cell(tape, PowerSpec.energy_budget(eb))
    assert plan.kind == "fork"
    assert plan.first_failure_window == target
    entry = tape.entries[plan.entry_index]
    assert entry.point.recharges <= target
    assert entry.point.consumed <= eb


def test_plan_periodic_and_scheduled_windows(column):
    *_, tape = column
    slow = max(cy for _, cy, _ in tape.recharge_spans) + 1
    assert plan_cell(tape, PowerSpec.periodic(tbpf=slow)).kind == "synthesize"
    fast = min(cy for _, cy, _ in tape.recharge_spans) - 1
    assert plan_cell(tape, PowerSpec.periodic(tbpf=fast)).kind in (
        "cold", "fork",
    )
    beyond = tape.final.timeline + 1
    assert (
        plan_cell(tape, PowerSpec.scheduled((beyond,))).kind == "synthesize"
    )
    assert plan_cell(tape, PowerSpec.scheduled((0,))).kind == "cold"


def test_plan_is_deterministic_for_stochastic_specs(column):
    *_, tape = column
    spec = PowerSpec.stochastic(mean_cycles=TBPF, seed=5)
    assert plan_cell(tape, spec) == plan_cell(tape, spec)


def test_one_tape_serves_every_mode_of_its_column(column):
    """Column sharing: the same tape object answers energy, periodic and
    stochastic cells, each matching its cold run."""
    plat, bench, compiled, eb, tape = column
    inputs = bench.default_inputs()
    for spec in (
        PowerSpec.energy_budget(eb),
        PowerSpec.periodic(tbpf=TBPF, eb=eb),
        PowerSpec.stochastic(mean_cycles=TBPF, seed=1, eb=eb),
    ):
        cold = run_intermittent(
            compiled.module, plat.model, compiled.policy, spec.build(),
            vm_size=plat.vm_size, inputs=inputs,
        )
        got, _ = run_cell(
            compiled.module, plat.model, compiled.policy, spec, tape,
            vm_size=plat.vm_size, inputs=inputs,
        )
        assert repr(got) == repr(cold)


# -- cache-key discipline -----------------------------------------------------


def test_power_spec_key_parts_schema_is_pinned():
    """The snapshot/run cache identity. Changing this tuple silently
    invalidates (or worse, aliases) stored artifacts — bump TAPE_SCHEMA
    alongside any edit here."""
    assert PowerSpec.stochastic(5000.0, seed=7, eb=123.0).key_parts() == (
        "power-spec", "stochastic", "123.0", 0, "5000.0", 7, (),
    )
    assert PowerSpec.scheduled((5000,), eb=123.0).key_parts() == (
        "power-spec", "scheduled", "123.0", 0, "0.0", 0, (5000,),
    )
    assert PowerSpec.periodic(tbpf=5000, eb=123.0).key_parts() == (
        "power-spec", "periodic-cycles", "123.0", 5000, "0.0", 0, (),
    )
    assert PowerSpec.energy_budget(123.0).key_parts() == (
        "power-spec", "energy-budget", "123.0", 0, "0.0", 0, (),
    )


def test_scheduled_and_stochastic_never_share():
    """The regression the schema above prevents: a SCHEDULED and a
    STOCHASTIC spec with otherwise equal numbers must key differently,
    as must two stochastic seeds."""
    sched = PowerSpec.scheduled((5000,), eb=100.0)
    stoch = PowerSpec.stochastic(5000.0, seed=0, eb=100.0)
    assert sched.key_parts() != stoch.key_parts()
    assert ArtifactCache.key(*sched.key_parts()) != ArtifactCache.key(
        *stoch.key_parts()
    )
    assert (
        PowerSpec.stochastic(5000.0, seed=0).key_parts()
        != PowerSpec.stochastic(5000.0, seed=1).key_parts()
    )


def test_run_spec_keys_scheduled_and_stochastic_apart():
    """EvaluationContext.run_spec memoizes the two modes independently
    even when their numeric parameters coincide."""
    ctx = EvaluationContext(benchmarks=["crc"])
    eb = ctx.eb_for_tbpf("crc", TBPF)
    sched = ctx.run_spec(
        "schematic", "crc", eb, PowerSpec.scheduled((5000,), eb=eb)
    )
    stoch = ctx.run_spec(
        "schematic", "crc", eb, PowerSpec.stochastic(5000.0, seed=0, eb=eb)
    )
    spec_keys = [k for k in ctx._runs if k and k[0] == "spec"]
    assert len(spec_keys) == 2
    assert sched.report is not None and stoch.report is not None
    assert sched.report.power_mode != stoch.report.power_mode


def test_tape_cache_key_is_stable_across_processes():
    """Tape keys must survive process boundaries (parallel prefill
    workers share the artifact-cache directory)."""
    parts = PowerSpec.stochastic(5000.0, seed=7, eb=123.0).key_parts()
    here = ArtifactCache.key(TapeStore.CATEGORY, TAPE_SCHEMA, *parts)
    code = (
        "from repro.emulator.diffemu import PowerSpec, TapeStore, "
        "TAPE_SCHEMA\n"
        "from repro.runner.cache import ArtifactCache\n"
        "parts = PowerSpec.stochastic(5000.0, seed=7, eb=123.0).key_parts()\n"
        "print(ArtifactCache.key(TapeStore.CATEGORY, TAPE_SCHEMA, *parts))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        env=dict(os.environ), check=True,
    )
    assert out.stdout.strip() == here


# -- tape store ---------------------------------------------------------------


def test_tape_store_memoizes_and_hits_disk(tmp_path, column):
    plat, bench, compiled, _, _ = column

    def recorder():
        return record_tape(
            compiled.module, plat.model, compiled.policy,
            vm_size=plat.vm_size, inputs=bench.default_inputs(),
        )

    key = ("tape-test", "warloop", "schematic")
    store1 = TapeStore(ArtifactCache(tmp_path / "cache"))
    t1 = store1.get(key, recorder)
    assert store1.stats.tapes_recorded == 1
    assert store1.get(key, recorder) is t1  # in-process memo
    assert store1.stats.tapes_recorded == 1

    store2 = TapeStore(ArtifactCache(tmp_path / "cache"))
    t2 = store2.get(key, recorder)
    assert store2.stats.tape_cache_hits == 1
    assert store2.stats.tapes_recorded == 0
    assert t2.digest == t1.digest


def test_tape_store_rejects_corrupt_stored_tape(tmp_path, column):
    """A stored tape with a flipped value unpickles fine but fails the
    digest check: the store counts it invalid and re-records."""
    plat, bench, compiled, _, _ = column

    def recorder():
        return record_tape(
            compiled.module, plat.model, compiled.policy,
            vm_size=plat.vm_size, inputs=bench.default_inputs(),
        )

    key = ("tape-test", "warloop", "schematic")
    cache = ArtifactCache(tmp_path / "cache")
    store = TapeStore(cache)
    tape = store.get(key, recorder)

    # Corrupt one NVM word inside a stored snapshot and re-store.
    evil = recorder()
    images = evil.entries[-1].snapshot.images
    name = sorted(images["nvm"])[0]
    images["nvm"][name][0] ^= 1
    cache_key = ArtifactCache.key(TapeStore.CATEGORY, TAPE_SCHEMA, *key)
    cache.put(TapeStore.CATEGORY, cache_key, evil)

    fresh = TapeStore(ArtifactCache(tmp_path / "cache"))
    recovered = fresh.get(key, recorder)
    assert fresh.stats.invalid_tapes == 1
    assert fresh.stats.tapes_recorded == 1
    assert recovered.verify()
    assert recovered.digest == tape.digest


# -- sabotage: corrupted snapshots fall back cold -----------------------------


def test_corrupt_snapshot_falls_back_to_cold(column):
    plat, bench, compiled, eb, _ = column
    inputs = bench.default_inputs()
    tape = record_tape(
        compiled.module, plat.model, compiled.policy,
        vm_size=plat.vm_size, inputs=inputs,
    )
    images = tape.entries[-1].snapshot.images
    name = sorted(images["nvm"])[0]
    images["nvm"][name][0] ^= 1
    assert not tape.verify()

    spec = PowerSpec.energy_budget(eb)
    stats = DiffEmuStats()
    got, plan = run_cell(
        compiled.module, plat.model, compiled.policy, spec, tape,
        vm_size=plat.vm_size, inputs=inputs, stats=stats,
    )
    assert plan.kind == "cold"
    assert "verification" in plan.reason
    assert stats.invalid_tapes == 1 and stats.cold == 1
    cold = run_intermittent(
        compiled.module, plat.model, compiled.policy, spec.build(),
        vm_size=plat.vm_size, inputs=inputs,
    )
    assert repr(got) == repr(cold)


def test_cross_module_snapshot_is_rejected_not_miscomputed(column):
    """A tape recorded for a *different* module cannot resume: the
    restore validation rejects it and the cell runs cold."""
    plat, bench, compiled, eb, _ = column
    other_bench = load_program("sumloop")
    other = compile_for(
        "schematic", other_bench.module, plat,
        input_generator=other_bench.input_generator(),
    )
    foreign = record_tape(
        other.module, plat.model, other.policy,
        vm_size=plat.vm_size, inputs=other_bench.default_inputs(),
    )
    # Pick a spec that forces a fork on the foreign tape: fail the first
    # window that out-consumes every earlier one.
    spans = foreign.recharge_spans
    target = next(
        j for j in range(1, len(spans))
        if spans[j][0] > max(c for c, _, _ in spans[:j])
    )
    spec = PowerSpec.energy_budget(
        max(c for c, _, _ in spans[:target]) + 1e-9
    )
    assert plan_cell(foreign, spec).kind == "fork"
    stats = DiffEmuStats()
    got, plan = run_cell(
        compiled.module, plat.model, compiled.policy, spec, foreign,
        vm_size=plat.vm_size, inputs=bench.default_inputs(), stats=stats,
    )
    assert plan.kind == "cold"
    assert "snapshot rejected" in plan.reason
    cold = run_intermittent(
        compiled.module, plat.model, compiled.policy, spec.build(),
        vm_size=plat.vm_size, inputs=bench.default_inputs(),
    )
    assert repr(got) == repr(cold)


def test_diffemu_stats_merge_and_dict():
    a = DiffEmuStats(tapes_recorded=1, synthesized=2, forked=3)
    b = DiffEmuStats(tape_cache_hits=4, invalid_tapes=5, cold=6)
    a.merge(b)
    assert a.as_dict() == {
        "tapes_recorded": 1, "tape_cache_hits": 4, "invalid_tapes": 5,
        "synthesized": 2, "forked": 3, "cold": 6,
    }
