"""The metrics registry: counters, gauges and exact fixed-bucket histograms.

This is the *aggregated-numbers* half of the telemetry subsystem — the
span/event tracer (:mod:`repro.telemetry.core`) answers "what happened,
when"; the registry answers "how much, in total": cells per second,
cache hit rates, checkpoint traffic, per-rule-family wall-clock.

Design constraints, in order:

- **zero overhead when disabled** — the process-global registry is
  ``None`` until :func:`enable` (or ``telemetry.enable``, which implies
  it) installs one; every instrumentation site binds ``mm = metrics.
  get()`` once and guards each emission with ``if mm is not None``.
  The emulator's hot loop is never instrumented — only cold paths
  (checkpoints, power failures, reboots) count anything, so enabling
  metrics does not change which interpreter loop runs and never changes
  any result (``tests/test_telemetry_metrics.py`` pins bit-identity);
- **deterministic cross-process merge** — evaluation fans out across
  worker processes (:mod:`repro.experiments.engine`), each of which
  accumulates its own registry and emits a JSONL *sidecar*
  (:mod:`repro.telemetry.rollup`). Merging must not depend on worker
  scheduling, so every merge operation is commutative and associative:
  counters and histograms add, gauges combine under an
  order-independent policy (``max``/``min``/``sum``) declared at
  creation time and carried in the snapshot;
- **exact histograms** — buckets are a fixed, finite ladder of upper
  bounds chosen at creation (default: powers of two up to 2**20, plus
  overflow). Counts are exact integers, never sampled, so two merges of
  the same sidecars are equal to the last bit.

Metric names are dotted paths (``cache.hits``, ``interp.ckpt_saves``,
``engine.cells``); the Prometheus exporter (:mod:`repro.telemetry.prom`)
maps dots to underscores. The instrument catalog lives in
docs/observability.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Version stamped into metrics sidecars and rollups; bump when the
#: snapshot record shape changes incompatibly.
METRICS_SCHEMA = 1

#: Default histogram bucket upper bounds: powers of two, 1 .. 2**20.
#: Values above the last bound land in the implicit overflow bucket.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(float(2 ** b) for b in range(21))

#: Gauge merge policies (all order-independent — see the module doc).
GAUGE_AGGREGATIONS = ("max", "min", "sum")


class MetricsError(ValueError):
    """A malformed metric record or an incompatible merge."""


class Counter:
    """A monotonically increasing named integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A named measurement with an order-independent merge policy.

    ``set`` is last-value-wins inside one process; *across* processes the
    sidecar merge combines values under ``agg`` (``max`` by default —
    right for heartbeats and peak sizes) so the rollup never depends on
    which worker's file is read first.
    """

    __slots__ = ("name", "value", "agg")

    def __init__(self, name: str, agg: str = "max"):
        if agg not in GAUGE_AGGREGATIONS:
            raise MetricsError(
                f"gauge {name!r}: unknown aggregation {agg!r} "
                f"(choose one of {', '.join(GAUGE_AGGREGATIONS)})"
            )
        self.name = name
        self.value: float = 0.0
        self.agg = agg

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "gauge", "name": self.name, "value": self.value,
            "agg": self.agg,
        }


class Histogram:
    """Exact fixed-bucket histogram: count/total/min/max plus one integer
    count per bucket. ``bounds`` are inclusive upper bounds; a final
    overflow bucket catches everything above the last bound, so
    ``len(buckets) == len(bounds) + 1`` and ``sum(buckets) == count``
    always."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "vmin",
                 "vmax")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise MetricsError(
                f"histogram {name!r}: bounds must be non-empty and "
                f"strictly increasing, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.buckets[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """One process's metrics. Get-or-create accessors, a deterministic
    snapshot, and an in-place merge used by the cross-process rollup."""

    def __init__(self, meta: Optional[Dict[str, Any]] = None):
        self.meta: Dict[str, Any] = dict(meta or {})
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ----------------------------------------------------------- access

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, agg: str = "max") -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, agg=agg)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds=bounds)
        return hist

    # ----------------------------------------------------------- export

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every metric as a JSON record — counters, then gauges, then
        histograms, each name-sorted (deterministic by construction)."""
        out: List[Dict[str, Any]] = []
        for registry in (self._counters, self._gauges, self._histograms):
            for name in sorted(registry):
                out.append(registry[name].to_json())
        return out

    # ------------------------------------------------------------ merge

    def merge_records(self, records: Sequence[Dict[str, Any]]) -> None:
        """Fold snapshot records (another process's sidecar) into this
        registry. Commutative: merging sidecars in any order yields the
        same registry state."""
        for record in records:
            merge_record(self, record)


def merge_record(registry: MetricsRegistry, record: Dict[str, Any]) -> None:
    """Merge one snapshot record into ``registry`` (raises
    :class:`MetricsError` on malformed or incompatible records)."""
    validate_metric_record(record)
    kind = record["kind"]
    name = record["name"]
    if kind == "counter":
        registry.counter(name).add(int(record["value"]))
    elif kind == "gauge":
        agg = record.get("agg", "max")
        gauge = registry.gauge(name, agg=agg)
        if gauge.agg != agg:
            raise MetricsError(
                f"gauge {name!r}: conflicting aggregations "
                f"{gauge.agg!r} vs {agg!r}"
            )
        incoming = float(record["value"])
        if name not in registry._gauges:  # pragma: no cover - unreachable
            gauge.set(incoming)
        elif agg == "sum":
            gauge.value += incoming
        elif agg == "min":
            gauge.value = min(gauge.value, incoming)
        else:
            gauge.value = max(gauge.value, incoming)
    else:  # histogram
        bounds = tuple(float(b) for b in record["bounds"])
        hist = registry.histogram(name, bounds=bounds)
        if hist.bounds != bounds:
            raise MetricsError(
                f"histogram {name!r}: incompatible bucket bounds "
                f"{hist.bounds} vs {bounds}"
            )
        buckets = record["buckets"]
        if len(buckets) != len(hist.buckets):
            raise MetricsError(
                f"histogram {name!r}: {len(buckets)} bucket counts for "
                f"{len(hist.bounds)} bounds"
            )
        hist.count += int(record["count"])
        hist.total += float(record["total"])
        for i, n in enumerate(buckets):
            hist.buckets[i] += int(n)
        for attr, pick in (("vmin", min), ("vmax", max)):
            incoming = record["min" if attr == "vmin" else "max"]
            if incoming is None:
                continue
            current = getattr(hist, attr)
            setattr(
                hist, attr,
                float(incoming) if current is None
                else pick(current, float(incoming)),
            )


def validate_metric_record(record: Any) -> None:
    """Raise :class:`MetricsError` unless ``record`` is a well-formed
    snapshot record (the structural schema of sidecar lines)."""
    if not isinstance(record, dict):
        raise MetricsError(f"metric record is not an object: {record!r}")
    kind = record.get("kind")
    if kind not in ("counter", "gauge", "histogram"):
        raise MetricsError(f"unknown metric kind {kind!r}")
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise MetricsError(f"{kind} record without a name")
    if kind in ("counter", "gauge"):
        value = record.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MetricsError(f"{kind} {name!r} without a numeric value")
        if kind == "gauge" and record.get("agg", "max") not in (
            GAUGE_AGGREGATIONS
        ):
            raise MetricsError(
                f"gauge {name!r}: unknown aggregation {record.get('agg')!r}"
            )
        return
    for field in ("count", "total", "bounds", "buckets"):
        if field not in record:
            raise MetricsError(f"histogram {name!r} without {field!r}")
    if not isinstance(record["bounds"], list) or not isinstance(
        record["buckets"], list
    ):
        raise MetricsError(
            f"histogram {name!r}: bounds/buckets must be lists"
        )
    if len(record["buckets"]) != len(record["bounds"]) + 1:
        raise MetricsError(
            f"histogram {name!r}: expected {len(record['bounds']) + 1} "
            f"bucket counts, got {len(record['buckets'])}"
        )


# ---------------------------------------------------------------- global


_ACTIVE: Optional[MetricsRegistry] = None


def enable(meta: Optional[Dict[str, Any]] = None) -> MetricsRegistry:
    """Install (and return) the process-global registry. Re-enabling
    replaces the previous one. ``telemetry.enable`` (tracing) calls this
    implicitly — a trace always carries its metrics block."""
    global _ACTIVE
    _ACTIVE = MetricsRegistry(meta=meta)
    return _ACTIVE


def disable() -> Optional[MetricsRegistry]:
    """Uninstall the global registry; returns it so callers can export."""
    global _ACTIVE
    mm = _ACTIVE
    _ACTIVE = None
    return mm


def get() -> Optional[MetricsRegistry]:
    """The active registry, or None when metrics are off. Instrumentation
    sites bind this once per compile/run and guard every emission."""
    return _ACTIVE


def _install(registry: MetricsRegistry) -> None:
    """Install a specific registry (the tracing handle shares its own)."""
    global _ACTIVE
    _ACTIVE = registry


def _uninstall(registry: MetricsRegistry) -> None:
    """Uninstall ``registry`` iff it is the active one (so a tracer's
    disable never clobbers an unrelated registry installed later)."""
    global _ACTIVE
    if _ACTIVE is registry:
        _ACTIVE = None


@contextmanager
def enabled(
    meta: Optional[Dict[str, Any]] = None
) -> Iterator[MetricsRegistry]:
    """``with metrics.enabled() as mm:`` — enable for a block (tests)."""
    mm = enable(meta=meta)
    try:
        yield mm
    finally:
        _uninstall(mm)


def count(name: str, n: int = 1) -> None:
    """Module-level convenience: bump a counter when enabled, else no-op."""
    mm = _ACTIVE
    if mm is not None:
        mm.counter(name).add(n)
