"""Compiler fuzzing: generate random MiniC programs and budgets, compile
with SCHEMATIC (and ROCKCLIMB), and verify the two invariants that matter:
forward progress (zero power failures in wait mode) and output equivalence
with continuous execution. Any counterexample hypothesis finds is a real
placement bug.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Schematic, SchematicConfig
from repro.core.verify import verify_forward_progress
from repro.emulator import run_continuous
from repro.energy import msp430fr5969_model
from repro.errors import InfeasibleBudgetError
from repro.frontend import compile_source
from tests.helpers import platform

MODEL = msp430fr5969_model()


def generate_program(rng: random.Random) -> str:
    """A random but well-formed MiniC program: nested loops, branches,
    helper functions, mixed array/scalar traffic."""
    n_arr = rng.randrange(4, 24)
    outer = rng.randrange(2, 10)
    inner = rng.randrange(1, 6)
    use_call = rng.random() < 0.7
    use_while = rng.random() < 0.5
    use_break = rng.random() < 0.3
    mults = rng.randrange(1, 5)

    helper = """
u32 mix(u32 v) {
    v ^= v >> 3;
    v *= 2654435761;
    return v ^ (v >> 13);
}
""" if use_call else ""

    body_core = f"acc += (u32) data[(i * {inner} + j) % {n_arr}] * {mults};"
    if use_call:
        body_core += "\n                acc = mix(acc);"

    break_stmt = (
        f"if (acc > {rng.randrange(1 << 28, 1 << 30)}) {{ break; }}"
        if use_break
        else ""
    )

    tail = ""
    if use_while:
        # A Collatz walk from a 16-bit start: the true maximum total
        # stopping time below 2^16 is 339 (for 60975), so @maxiter(512) is
        # a *truthful* bound — annotations are trusted compiler inputs.
        tail = f"""
    u32 w = (acc & 0xffff) | 1;
    @maxiter(512)
    while (w > 1) {{
        if ((w & 1) != 0) {{ w = w * 3 + 1; }} else {{ w = w / 2; }}
        steps += 1;
    }}"""

    return f"""
u32 out;
u32 steps;
i32 data[{n_arr}];
{helper}
void main() {{
    u32 acc = {rng.randrange(0, 1000)};
    for (i32 i = 0; i < {outer}; i++) {{
        for (i32 j = 0; j < {inner}; j++) {{
            {body_core}
        }}
        {break_stmt}
        acc ^= (u32) i;
    }}
    {tail}
    out = acc;
}}
"""


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 1 << 30),
    st.sampled_from([300.0, 550.0, 1_100.0, 4_000.0, 60_000.0]),
)
def test_schematic_random_programs(seed, eb):
    rng = random.Random(seed)
    source = generate_program(rng)
    module = compile_source(source)
    n_arr = module.globals["data"].count

    def gen(run):
        r = random.Random((seed % 1000) * 100 + run)
        return {"data": [r.randrange(0, 500) for _ in range(n_arr)]}

    plat = platform(eb=eb)
    try:
        result = Schematic(plat, SchematicConfig(profile_runs=2)).compile(
            module, input_generator=gen
        )
    except InfeasibleBudgetError:
        # Legitimate only for genuinely impossible budgets; at >= 300 nJ
        # with our model every generated atom fits.
        raise

    inputs = gen(777)
    verdict = verify_forward_progress(
        result.module, module, MODEL, eb, plat.vm_size, inputs=inputs
    )
    assert verdict.completed, (seed, eb, verdict.failure_reason)
    assert verdict.outputs_match, (seed, eb)
    assert verdict.power_failures == 0, (seed, eb)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1 << 30))
def test_rockclimb_random_programs(seed):
    from repro.baselines import compile_rockclimb
    from repro.emulator import PowerManager, run_intermittent

    rng = random.Random(seed)
    source = generate_program(rng)
    module = compile_source(source)
    n_arr = module.globals["data"].count

    def gen(run):
        r = random.Random((seed % 1000) * 100 + run)
        return {"data": [r.randrange(0, 500) for _ in range(n_arr)]}

    eb = 900.0
    plat = platform(eb=eb)
    compiled = compile_rockclimb(module, plat, input_generator=gen)
    inputs = gen(777)
    ref = run_continuous(module, MODEL, inputs=inputs)
    report = run_intermittent(
        compiled.module, MODEL, compiled.policy,
        PowerManager.energy_budget(eb), vm_size=plat.vm_size, inputs=inputs,
    )
    assert report.completed, (seed, report.failure_reason)
    assert report.outputs == ref.outputs, seed
    assert report.power_failures == 0, seed


@settings(max_examples=12, deadline=None)
@given(
    st.integers(0, 1 << 30),
    st.sampled_from(["ratchet", "mementos", "alfred"]),
)
def test_rollback_baselines_random_programs(seed, technique):
    """Fuzz the roll-back-mode policies: under a generous periodic window
    they must complete and reproduce the continuous-power reference (their
    snapshots make re-execution transparent); under tight stochastic
    harvesting, starvation is legitimate but a *completed* run must still
    match — and the emulation must never abort with an internal error."""
    from repro.baselines import compile_alfred, compile_mementos, compile_ratchet
    from repro.core.verify import run_against_reference
    from repro.emulator import PowerManager

    compilers = {
        "ratchet": compile_ratchet,
        "mementos": compile_mementos,
        "alfred": compile_alfred,
    }
    rng = random.Random(seed)
    source = generate_program(rng)
    module = compile_source(source)
    n_arr = module.globals["data"].count
    inputs = {"data": [random.Random(seed).randrange(0, 500) for _ in range(n_arr)]}

    plat = platform()
    compiled = compilers[technique](module, plat)
    assert compiled.feasible, (seed, technique, compiled.infeasible_reason)

    generous = run_against_reference(
        compiled.module, module, MODEL, compiled.policy,
        PowerManager.periodic(40_000), vm_size=plat.vm_size, inputs=inputs,
    )
    assert not generous.crashed, (seed, technique, generous.failure_reason)
    assert generous.completed, (seed, technique, generous.failure_reason)
    assert generous.outputs_match, (seed, technique)

    tight = run_against_reference(
        compiled.module, module, MODEL, compiled.policy,
        PowerManager.stochastic(mean_cycles=3_000.0, seed=seed & 0xFF),
        vm_size=plat.vm_size, inputs=inputs,
    )
    assert not tight.crashed, (seed, technique, tight.failure_reason)
    if tight.completed:
        assert tight.outputs_match, (seed, technique, tight.failure_offsets)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 1 << 30))
def test_allnvm_random_programs(seed):
    """All-NVM keeps SCHEMATIC's placement (and its wait-mode guarantee)
    while pinning every variable to NVM: under the compile-time budget it
    must complete with zero power failures and matching outputs."""
    from repro.baselines import compile_allnvm
    from repro.core.verify import run_against_reference
    from repro.emulator import PowerManager

    rng = random.Random(seed)
    source = generate_program(rng)
    module = compile_source(source)
    n_arr = module.globals["data"].count

    def gen(run):
        r = random.Random((seed % 1000) * 100 + run)
        return {"data": [r.randrange(0, 500) for _ in range(n_arr)]}

    eb = 900.0
    plat = platform(eb=eb)
    compiled = compile_allnvm(module, plat, input_generator=gen)
    assert compiled.feasible, (seed, compiled.infeasible_reason)
    verdict = run_against_reference(
        compiled.module, module, MODEL, compiled.policy,
        PowerManager.energy_budget(eb), vm_size=plat.vm_size,
        inputs=gen(777),
    )
    assert verdict.completed, (seed, verdict.failure_reason)
    assert verdict.outputs_match, seed
    assert verdict.power_failures == 0, seed


def test_false_maxiter_annotation_is_garbage_in_garbage_out():
    """@maxiter is a trusted input (paper SIII-B2: loop bounds "provided
    using annotations"). A *false* bound voids the forward-progress
    guarantee — the emulator detects the violation instead of looping
    forever, and the run is reported as stuck rather than wrong."""
    source = """
    u32 out; u32 seed;
    void main() {
        u32 w = (seed & 0xffff) | 1;
        @maxiter(4)
        while (w > 1) {
            if ((w & 1) != 0) { w = w * 3 + 1; } else { w = w / 2; }
            out += 1;
        }
    }
    """
    module = compile_source(source)
    plat = platform(eb=320.0)
    result = Schematic(plat, SchematicConfig(profile_runs=1)).compile(
        module, input_generator=lambda run: {"seed": [run]}
    )
    # seed 60975 needs 339 iterations; the placement believed 4.
    verdict = verify_forward_progress(
        result.module, module, MODEL, plat.eb, plat.vm_size,
        inputs={"seed": [60975]},
    )
    assert not verdict.completed
    assert verdict.failure_reason == "no forward progress"
