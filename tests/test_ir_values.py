"""Unit tests for repro.ir.values."""

import pytest

from repro.ir import Const, I32, MemorySpace, Register, U8, Variable, VarRef


class TestConst:
    def test_fits(self):
        assert Const(255, U8).value == 255

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Const(256, U8)
        with pytest.raises(ValueError):
            Const(-1, U8)

    def test_str(self):
        assert str(Const(7, I32)) == "7:i32"


class TestRegister:
    def test_equality_by_name_and_type(self):
        assert Register("t1", I32) == Register("t1", I32)
        assert Register("t1", I32) != Register("t2", I32)

    def test_hashable(self):
        assert len({Register("a", I32), Register("a", I32)}) == 1


class TestVariable:
    def test_scalar(self):
        var = Variable("x", I32)
        assert not var.is_array
        assert var.size_bytes == 4

    def test_array_size(self):
        var = Variable("buf", U8, count=100)
        assert var.is_array
        assert var.size_bytes == 100

    def test_init_length_checked(self):
        with pytest.raises(ValueError):
            Variable("t", U8, count=4, init=[1, 2, 3])

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            Variable("bad", I32, count=0)

    def test_hash_by_name(self):
        a = Variable("v", I32)
        b = Variable("v", U8, count=2)
        assert hash(a) == hash(b)

    def test_str_includes_flags(self):
        var = Variable("arr", I32, count=4)
        assert "[4]" in str(var)


class TestVarRef:
    def test_wraps_variable(self):
        var = Variable("arr", I32, count=8)
        ref = VarRef(var)
        assert ref.variable is var
        assert str(ref) == "&arr"


class TestMemorySpace:
    def test_values(self):
        assert str(MemorySpace.VM) == "vm"
        assert str(MemorySpace.NVM) == "nvm"
        assert str(MemorySpace.AUTO) == "auto"
