"""IRBuilder: ergonomic construction of IR functions.

The builder keeps an insertion point (a block) and provides one ``emit_*``
method per instruction kind, creating fresh typed registers on demand. It is
used by the MiniC lowering pass and by tests that hand-build programs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function, Param
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Move,
    Opcode,
    Ret,
    Store,
    UnOp,
    UnaryOpcode,
)
from repro.ir.module import Module
from repro.ir.types import IntType, common_type
from repro.ir.values import Const, MemorySpace, Register, Value, Variable


def _value_type(value: Value) -> IntType:
    if isinstance(value, (Register, Const)):
        return value.type
    raise IRError(f"operand {value} has no scalar type")


class IRBuilder:
    """Builds instructions into a current block of a current function."""

    def __init__(self, module: Module):
        self.module = module
        self.function: Optional[Function] = None
        self.block: Optional[BasicBlock] = None
        self._reg_counter = 0
        self._label_counter = 0

    # -- function/block management ------------------------------------------

    def start_function(
        self,
        name: str,
        params: Optional[List[Param]] = None,
        return_type: Optional[IntType] = None,
    ) -> Function:
        """Create a function, its entry block, and position the builder."""
        func = Function(name, params, return_type)
        self.module.add_function(func)
        self.function = func
        self._reg_counter = 0
        self._label_counter = 0
        entry = func.add_block("entry")
        self.block = entry
        return func

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a new (unpositioned) block with a fresh label."""
        if self.function is None:
            raise IRError("builder has no current function")
        self._label_counter += 1
        return self.function.add_block(f"{hint}{self._label_counter}")

    def position_at(self, block: BasicBlock) -> None:
        self.block = block

    def fresh_reg(self, type_: IntType, hint: str = "t") -> Register:
        self._reg_counter += 1
        return Register(f"{hint}{self._reg_counter}", type_)

    def local(
        self,
        name: str,
        type_: IntType,
        count: int = 1,
        is_const: bool = False,
        init: Optional[List[int]] = None,
    ) -> Variable:
        """Declare a local variable of the current function (mangled name)."""
        if self.function is None:
            raise IRError("builder has no current function")
        var = Variable(
            name=f"{self.function.name}.{name}",
            type=type_,
            count=count,
            is_const=is_const,
            init=init,
        )
        self.function.add_variable(var, bare_name=name)
        return var

    # -- emitters -------------------------------------------------------------

    def _append(self, inst) -> None:
        if self.block is None:
            raise IRError("builder has no insertion block")
        self.block.append(inst)

    def emit_move(self, src: Value, type_: Optional[IntType] = None) -> Register:
        dest = self.fresh_reg(type_ or _value_type(src))
        self._append(Move(dest, src))
        return dest

    def emit_binop(
        self,
        op: Opcode,
        lhs: Value,
        rhs: Value,
        type_: Optional[IntType] = None,
    ) -> Register:
        if type_ is None:
            merged = common_type(_value_type(lhs), _value_type(rhs))
            from repro.ir.types import U8

            type_ = U8 if op.is_comparison else merged
        dest = self.fresh_reg(type_)
        self._append(BinOp(op, dest, lhs, rhs))
        return dest

    def emit_unop(
        self, op: UnaryOpcode, src: Value, type_: Optional[IntType] = None
    ) -> Register:
        if type_ is None:
            from repro.ir.types import U8

            type_ = U8 if op is UnaryOpcode.LNOT else _value_type(src)
        dest = self.fresh_reg(type_)
        self._append(UnOp(op, dest, src))
        return dest

    def emit_load(
        self,
        var: Variable,
        index: Optional[Value] = None,
        space: MemorySpace = MemorySpace.AUTO,
    ) -> Register:
        if var.is_array and index is None:
            raise IRError(f"load of array {var.name} needs an index")
        if not var.is_array and index is not None:
            raise IRError(f"load of scalar {var.name} must not have an index")
        dest = self.fresh_reg(var.type)
        self._append(Load(dest, var, index, space))
        return dest

    def emit_store(
        self,
        var: Variable,
        value: Value,
        index: Optional[Value] = None,
        space: MemorySpace = MemorySpace.AUTO,
    ) -> None:
        if var.is_const:
            raise IRError(f"store to const variable {var.name}")
        if var.is_array and index is None:
            raise IRError(f"store to array {var.name} needs an index")
        if not var.is_array and index is not None:
            raise IRError(f"store to scalar {var.name} must not have an index")
        self._append(Store(var, index, value, space))

    def emit_call(
        self,
        callee: str,
        args: Optional[List[Value]] = None,
        return_type: Optional[IntType] = None,
    ) -> Optional[Register]:
        dest = self.fresh_reg(return_type) if return_type is not None else None
        self._append(Call(dest, callee, list(args or [])))
        return dest

    def emit_jump(self, target: BasicBlock) -> None:
        self._append(Jump(target.label))

    def emit_branch(
        self, cond: Value, if_true: BasicBlock, if_false: BasicBlock
    ) -> None:
        self._append(Branch(cond, if_true.label, if_false.label))

    def emit_ret(self, value: Optional[Value] = None) -> None:
        self._append(Ret(value))

    # -- convenience ----------------------------------------------------------

    def const(self, value: int, type_: IntType) -> Const:
        return Const(type_.wrap(value), type_)
