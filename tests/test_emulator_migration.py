"""Tests for allocation *migration* at checkpoints (roll-back mode) and
the interplay of save sets with residency — hand-built IR modules."""

import pytest

from repro.emulator import CheckpointPolicy, PowerManager, run_intermittent
from repro.energy import msp430fr5969_model
from repro.ir import (
    Checkpoint,
    Const,
    I32,
    IRBuilder,
    MemorySpace,
    Module,
    Opcode,
    validate_module,
)

MODEL = msp430fr5969_model()


def migration_module() -> Module:
    """main: phase 1 works on @a in VM; a mid-function checkpoint migrates
    to phase 2 where @a is NVM and @b is VM (the paper's motivating
    example: sum's best placement changes between program phases)."""
    module = Module("migration")
    module.add_global(__import__("repro.ir", fromlist=["Variable"]).Variable("a", I32))
    module.add_global(__import__("repro.ir", fromlist=["Variable"]).Variable("b", I32))
    builder = IRBuilder(module)
    builder.start_function("main")

    # Boot checkpoint: a lives in VM for phase 1.
    builder.block.append(
        Checkpoint(
            ckpt_id=1,
            save_vars=(),
            restore_vars=("a",),
            alloc_after={"a": MemorySpace.VM},
            skippable=False,
        )
    )
    a = module.globals["a"]
    b = module.globals["b"]
    r1 = builder.emit_load(a, space=MemorySpace.VM)
    r2 = builder.emit_binop(Opcode.ADD, r1, Const(5, I32))
    builder.emit_store(a, r2, space=MemorySpace.VM)

    # Migration checkpoint: a -> NVM (saved), b -> VM.
    builder.block.append(
        Checkpoint(
            ckpt_id=2,
            save_vars=("a",),
            restore_vars=("b",),
            alloc_after={"a": MemorySpace.NVM, "b": MemorySpace.VM},
            skippable=False,
        )
    )
    r3 = builder.emit_load(a, space=MemorySpace.NVM)
    r4 = builder.emit_load(b, space=MemorySpace.VM)
    r5 = builder.emit_binop(Opcode.MUL, r3, r4)
    builder.emit_store(b, r5, space=MemorySpace.VM)

    # Exit checkpoint flushes b.
    builder.block.append(
        Checkpoint(
            ckpt_id=3,
            save_vars=("b",),
            restore_vars=(),
            alloc_after={},
            skippable=False,
        )
    )
    builder.emit_ret()
    return validate_module(module)


class TestMigrationRollbackMode:
    def test_values_follow_the_migration(self):
        module = migration_module()
        report = run_intermittent(
            module,
            MODEL,
            CheckpointPolicy.rollback_mode("test"),
            PowerManager.energy_budget(100_000.0),
            inputs={"a": [10], "b": [3]},
        )
        assert report.completed
        # phase 1: a = 15 (VM); migration saves it; phase 2: b = 15*3.
        assert report.outputs["a"] == [15]
        assert report.outputs["b"] == [45]

    def test_migration_billed_as_restore_traffic(self):
        module = migration_module()
        report = run_intermittent(
            module,
            MODEL,
            CheckpointPolicy.rollback_mode("test"),
            PowerManager.energy_budget(100_000.0),
            inputs={"a": [10], "b": [3]},
        )
        # Three saves (boot has none to save but still counts), and the
        # migration loaded b into VM.
        assert report.checkpoints_saved == 3
        assert report.energy.restore > 0

    def test_wait_mode_same_results(self):
        module = migration_module()
        report = run_intermittent(
            module,
            MODEL,
            CheckpointPolicy.wait_mode("test"),
            PowerManager.energy_budget(100_000.0),
            inputs={"a": [10], "b": [3]},
        )
        assert report.completed
        assert report.outputs["a"] == [15]
        assert report.outputs["b"] == [45]

    def test_rollback_after_migration_restores_phase2_state(self):
        """Fail during phase 2: the snapshot is the migration checkpoint,
        so a must come back as 15 (already saved) and b as its NVM value."""
        module = migration_module()
        # Budget chosen so phase 2 (mul + stores) overruns once.
        report = run_intermittent(
            module,
            MODEL,
            CheckpointPolicy.rollback_mode("test"),
            PowerManager.energy_budget(150.0),
            inputs={"a": [10], "b": [3]},
        )
        assert report.completed
        assert report.outputs["a"] == [15]
        assert report.outputs["b"] == [45]
        assert report.power_failures >= 1


class TestSummarySubstitution:
    def test_ckpt_substitution_maps_names(self):
        from repro.core.region import _substitute_ckpt, _substitute_shared
        from repro.core.summaries import CkptBearing, SharedAlloc

        ckpt = CkptBearing(
            e_to_first=1.0,
            e_from_last=2.0,
            internal_energy=3.0,
            entry_forced={"f.buf": MemorySpace.NVM},
            entry_vm=("f.tmp",),
            entry_restore=("f.tmp",),
            exit_dirty=("f.buf",),
            exit_states={"latch": ("f.tmp",)},
        )
        mapped = _substitute_ckpt(ckpt, {"f.buf": "caller_array"})
        assert "caller_array" in mapped.entry_forced
        assert mapped.exit_dirty == ("caller_array",)
        assert mapped.exit_states == {"latch": ("f.tmp",)}

        shared = SharedAlloc(
            forced={"f.buf": MemorySpace.NVM},
            vm_names=("f.buf",),
            restore_names=("f.buf",),
            dirty_names=("f.buf",),
        )
        mapped = _substitute_shared(shared, {"f.buf": "caller_array"})
        assert mapped.forced == {"caller_array": MemorySpace.NVM}
        assert mapped.vm_names == ("caller_array",)

    def test_empty_mapping_is_identity(self):
        from repro.core.region import _substitute_shared
        from repro.core.summaries import SharedAlloc

        shared = SharedAlloc(forced={"g": MemorySpace.VM})
        assert _substitute_shared(shared, {}) is shared
