# Convenience targets for the SCHEMATIC reproduction.

PYTHON ?= python

.PHONY: test bench bench-full experiments experiments-quick export examples clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_BENCH=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.run_all

experiments-quick:
	$(PYTHON) -m repro.experiments.run_all --quick

export:
	$(PYTHON) -m repro.experiments.export artifacts/

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis artifacts
