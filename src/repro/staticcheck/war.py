"""WAR/idempotency analysis: non-idempotent replay regions.

A power failure rolls execution back to the last *taken* checkpoint and
re-executes the region from there. Re-execution is safe exactly when the
region is idempotent. VM-resident variables are: the restore rebuilds VM
from the NVM homes that the snapshot's save flushed, so a replay reads
the same values as the first attempt. NVM-resident variables are not
backed up by the snapshot — an NVM *write* after an NVM *read* of the
same variable inside one region makes the replay observe its own output
(the write-after-read hazard of Ratchet and the Surbatovich formal
model), and the final memory state can diverge from a continuous-power
run.

The analysis is a forward may-dataflow over each function's CFG. The
state is the set of NVM variables read since the last taken checkpoint
on *some* path ("exposed" reads); an NVM store to an exposed variable is
a finding. A read is only exposed when the variable was not *definitely
written* earlier in the same region: in ``write; read; write`` the first
write re-executes before the read on every replay, so the read always
observes the same value and the region stays idempotent (Ratchet's
first-access distinction). Only full scalar overwrites count — an array
store defines one element, so arrays never become definitely-written.
Conditional checkpoints fire only every ``numit`` iterations and
policy-skippable checkpoints (MEMENTOS) may be elided, so neither ends a
region (see :func:`repro.staticcheck.common.checkpoint_clears`).

Calls are handled with callee-first summaries: what a callee may write
before its first taken checkpoint (joined against the caller's exposed
reads), whether every path through it checkpoints, and which of its
reads are still exposed when it returns — with by-reference formals
substituted by the caller's actuals at each call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG
from repro.analysis.dataflow import solve_forward
from repro.ir.function import Function
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.ir.values import MemorySpace, Variable
from repro.staticcheck.common import (
    CHECKPOINT_KINDS,
    FindingSink,
    call_ref_mapping,
    checkpoint_clears,
    resolve_space,
    substitute,
    variable_map,
)
from repro.staticcheck.findings import Finding, Location
from repro.staticcheck.rules import RULES

#: (exposed NVM reads [may], definitely-written NVM scalars [must],
#:  some path since entry has no taken checkpoint yet)
_State = Tuple[FrozenSet[str], FrozenSet[str], bool]


@dataclass(frozen=True)
class WarSummary:
    """Caller-visible WAR behaviour of one function."""

    #: NVM variables the function may write on some path *before* any
    #: taken checkpoint (they extend the caller's replay region).
    writes_before_clear: FrozenSet[str]
    #: NVM reads still exposed when the function returns (no taken
    #: checkpoint after the read on some path to the exit).
    exposed_at_exit: FrozenSet[str]
    #: Every entry-to-exit path passes a taken checkpoint.
    always_clears: bool


def _join(a: _State, b: _State) -> _State:
    return (a[0] | b[0], a[1] & b[1], a[2] or b[2])


class _FunctionWar:
    """WAR dataflow for one function, given its callees' summaries."""

    def __init__(
        self,
        module: Module,
        func: Function,
        summaries: Dict[str, WarSummary],
        variables: Dict[str, Variable],
        policy_may_skip: bool,
        default_space: MemorySpace,
    ):
        self.module = module
        self.func = func
        self.summaries = summaries
        self.variables = variables
        self.policy_may_skip = policy_may_skip
        self.default_space = default_space
        self.cfg = CFG(func)

    def run(self, sink: Optional[FindingSink]) -> WarSummary:
        solution = solve_forward(
            self.cfg,
            (frozenset(), frozenset(), True),
            self._transfer,
            _join,
        )
        # Reporting + summary pass with the settled in-states.
        writes_before_clear: Set[str] = set()
        for label, state in solution.block_in.items():
            self._walk(label, state, sink, writes_before_clear)

        exit_state: Optional[_State] = None
        for label in self.cfg.exit_labels():
            out = solution.block_out.get(label)
            if out is None:
                continue
            exit_state = out if exit_state is None else _join(exit_state, out)
        if exit_state is None:  # function cannot return (endless loop)
            exit_state = (frozenset(), frozenset(), False)
        return WarSummary(
            writes_before_clear=frozenset(writes_before_clear),
            exposed_at_exit=exit_state[0],
            always_clears=not exit_state[2],
        )

    # -- transfer ----------------------------------------------------------

    def _transfer(self, label: str, state: _State) -> _State:
        return self._walk(label, state, sink=None, writes=None)

    def _walk(
        self,
        label: str,
        state: _State,
        sink: Optional[FindingSink],
        writes: Optional[Set[str]],
    ) -> _State:
        exposed, written, noclear = state
        for i, inst in enumerate(self.func.blocks[label].instructions):
            if isinstance(inst, Load):
                if resolve_space(inst.space, self.default_space) is MemorySpace.NVM:
                    name = inst.var.name
                    if name not in written:
                        exposed = exposed | {name}
            elif isinstance(inst, Store):
                if resolve_space(inst.space, self.default_space) is MemorySpace.NVM:
                    name = inst.var.name
                    if sink is not None and name in exposed:
                        self._report(sink, label, i, name, via=None)
                    if writes is not None and noclear:
                        writes.add(name)
                    var = self.variables.get(name)
                    if var is not None and not (var.is_array or var.is_ref):
                        written = written | {name}  # full scalar overwrite
            elif isinstance(inst, CHECKPOINT_KINDS):
                if checkpoint_clears(inst, self.policy_may_skip):
                    exposed = frozenset()
                    written = frozenset()
                    noclear = False
            elif isinstance(inst, Call):
                exposed, written, noclear = self._apply_call(
                    inst, label, i, exposed, written, noclear, sink, writes
                )
        return (exposed, written, noclear)

    def _apply_call(
        self,
        call: Call,
        label: str,
        index: int,
        exposed: FrozenSet[str],
        written: FrozenSet[str],
        noclear: bool,
        sink: Optional[FindingSink],
        writes: Optional[Set[str]],
    ) -> _State:
        callee = self.module.function(call.callee)
        summary = self.summaries[call.callee]
        mapping = call_ref_mapping(call, callee)
        callee_writes = substitute(summary.writes_before_clear, mapping)
        if sink is not None:
            for name in sorted(exposed & callee_writes):
                self._report(sink, label, index, name, via=call.callee)
        if writes is not None and noclear:
            writes.update(callee_writes)
        # The callee's still-exposed reads extend the caller's region,
        # except for variables the caller had definitely rewritten first.
        callee_exposed = substitute(summary.exposed_at_exit, mapping)
        if summary.always_clears:
            # Region restarted inside the callee; whatever the caller
            # wrote before the call belongs to a finished region.
            return (callee_exposed, frozenset(), False)
        return (exposed | (callee_exposed - written), written, noclear)

    # -- reporting ---------------------------------------------------------

    def _report(
        self,
        sink: FindingSink,
        label: str,
        index: int,
        name: str,
        via: Optional[str],
    ) -> None:
        var = self.variables.get(name)
        is_array = var is not None and (var.is_array or var.is_ref)
        rule = RULES["WAR002" if is_array else "WAR001"]
        what = "NVM array" if is_array else "NVM variable"
        writer = f"call to @{via} writes" if via else "write to"
        message = (
            f"{writer} {what} @{name} after a read in the same replay "
            f"region (no taken checkpoint in between); a power failure "
            f"here replays the region non-idempotently"
        )
        sink.add(
            Finding(
                rule_id=rule.rule_id,
                severity=rule.default_severity,
                location=Location(self.func.name, label, index),
                message=message,
                details={"variable": name, "via": via},
            )
        )


def analyze_war(
    module: Module,
    sink: Optional[FindingSink] = None,
    policy_may_skip: bool = False,
    default_space: MemorySpace = MemorySpace.NVM,
) -> Dict[str, WarSummary]:
    """Run the WAR analysis over a whole module, callee-first.

    Returns the per-function summaries (exposed for tests and for the
    checker's statistics); findings land in ``sink`` when given.
    """
    variables = variable_map(module)
    summaries: Dict[str, WarSummary] = {}
    for name in CallGraph(module).reverse_topological():
        func = module.function(name)
        summaries[name] = _FunctionWar(
            module,
            func,
            summaries,
            variables,
            policy_may_skip,
            default_space,
        ).run(sink)
    return summaries
