"""The IR interpreter: executes modules under (intermittent) power.

Semantics notes:

- Fixed-width two's-complement arithmetic with C-like truncating division;
  shift amounts are masked to the operand width.
- A power failure strikes *between* instructions: the instruction whose
  energy overdraws the capacitor does not commit its effects.
- Checkpoint instructions are executed according to the technique's
  :class:`CheckpointPolicy` (wait mode vs roll-back mode, see
  :mod:`repro.emulator.runtime`).
- Forward-progress violation is detected when execution rolls back to the
  same snapshot twice without reaching a new checkpoint in between —
  execution being deterministic, the third attempt would fail identically
  (paper §VI: "our technique detects that it restarted from the same
  checkpoint twice").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.telemetry import flight, metrics
from repro.emulator import compiled as compiled_blocks
from repro.emulator.memory import MemoryState
from repro.emulator.meter import EnergyMeter
from repro.emulator.power import PowerManager
from repro.emulator.report import ExecutionReport
from repro.emulator.runtime import (
    CheckpointPolicy,
    FrameSnapshot,
    Snapshot,
)
from repro.energy.model import EnergyModel
from repro.errors import EmulationError, VMCapacityError
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Checkpoint,
    CondCheckpoint,
    Instruction,
    Jump,
    Load,
    Move,
    Opcode,
    Ret,
    Store,
    UnOp,
    UnaryOpcode,
)
from repro.ir.module import Module
from repro.ir.values import Const, MemorySpace, Register, VarRef

#: Cycles charged for the iteration-count test of a conditional checkpoint.
COND_CHECK_CYCLES = 2

#: Consecutive failed attempts from one snapshot before declaring the
#: execution stuck (2 identical deterministic failures imply forever).
MAX_ATTEMPTS_PER_SNAPSHOT = 2

#: The value a ``restore_fidelity="metadata"`` restore writes into every
#: element of a VM variable the checkpoint's restore set misses —
#: recognizable in dumps (0x5AA55AA5 wrapped to the variable's type) and
#: guaranteed not to silently reproduce a correct run.
RESTORE_POISON = 0x5AA55AA5


class _Frame:
    __slots__ = ("function", "block", "index", "registers", "ref_bindings",
                 "ret_target")

    def __init__(
        self,
        function: Function,
        block: str,
        index: int = 0,
        registers: Optional[Dict[str, int]] = None,
        ref_bindings: Optional[Dict[str, str]] = None,
        ret_target: Optional[str] = None,
    ):
        self.function = function
        self.block = block
        self.index = index
        self.registers: Dict[str, int] = registers if registers is not None else {}
        self.ref_bindings: Dict[str, str] = (
            ref_bindings if ref_bindings is not None else {}
        )
        self.ret_target = ret_target


@dataclass
class InterpreterConfig:
    """Knobs of one emulation run."""

    #: How AUTO memory accesses are costed/directed (reference & profiling
    #: runs on untransformed programs). Transformed programs have no AUTO
    #: accesses left.
    default_space: MemorySpace = MemorySpace.NVM
    max_instructions: int = 200_000_000
    #: Called as trace(function_name, block_label) on every block entry.
    trace: Optional[Callable[[str, str], None]] = None
    #: Called as step_hook(site_label, cycles) immediately before each
    #: atomic energy-consuming step — instructions, checkpoint saves,
    #: restores and voltage checks. Together with a recording
    #: :class:`~repro.emulator.power.PowerManager` this enumerates every
    #: fault-injectable boundary of a run (the testkit's sweep engine).
    step_hook: Optional[Callable[[str, int], None]] = None
    #: Inputs written into the NVM image before execution: name -> values.
    inputs: Dict[str, List[int]] = field(default_factory=dict)
    #: Enforce the VM capacity limit at run time.
    vm_size: int = 1 << 30
    #: Pre-decode every basic block into (handler, cost, inst, label)
    #: entries at construction, removing per-step type dispatch and cost
    #: lookups from the hot loop. Semantics are bit-identical either way;
    #: False selects the original per-step loop (kept as the differential
    #: reference implementation and for micro-benchmarks).
    predecode: bool = True
    #: Compile straight-line runs of each pre-decoded block into fused
    #: superinstruction closures executed with zero dispatch, charging
    #: each run's energy/cycles as one batch (:mod:`repro.emulator.
    #: compiled`). Semantics are bit-identical: failure points, meter
    #: totals, reports and diffemu snapshots all match the per-step
    #: loops, and the interpreter falls back to per-step execution for
    #: any run that asks for per-step observation (``step_hook``,
    #: ``trace``, a recording power manager, enabled telemetry) and on
    #: every cold-path event (checkpoints, predicted in-segment power
    #: failures, instruction-budget edges, mid-segment resume points).
    #: Requires ``predecode``; False selects the plain pre-decoded loop.
    compiled: bool = True
    #: Called as commit_hook(interpreter, ckpt_id) after a checkpoint has
    #: fully committed — the save persisted *and* the wait-mode
    #: recharge/restore (or roll-back migration) completed. This is the
    #: exact point :meth:`Interpreter.capture_snapshot` is designed for:
    #: the differential-emulation recorder captures a resumable
    #: :class:`EmulatorSnapshot` here (:mod:`repro.emulator.diffemu`).
    #: Only checkpoint commits pay for the check; the hot loop never sees
    #: it.
    commit_hook: Optional[Callable[["Interpreter", int], None]] = None
    #: What a checkpoint restore actually rebuilds. ``"image"`` (the
    #: legacy behaviour) reloads every post-checkpoint VM variable from
    #: its NVM home — a forgiving runtime whose NVM copies happen to be
    #: right for these programs. ``"metadata"`` models a runtime that
    #: restores exactly ``restore_vars``: every other VM-mapped,
    #: non-const variable comes back *poisoned*, so a read of state the
    #: checkpoint metadata misses (static rule CONS003) is dynamically
    #: visible instead of silently healed. Restore energy/cycles are
    #: billed from ``restore_vars`` in both modes — fidelity changes
    #: visibility, not cost.
    restore_fidelity: str = "image"


@dataclass
class EmulatorSnapshot:
    """Complete, detached interpreter state at a checkpoint commit.

    Restoring one of these into a fresh :class:`Interpreter` (same module,
    model, policy and power *configuration*) and calling
    :meth:`Interpreter.resume` replays the remainder of the run
    bit-identically — reports, failure logs, telemetry events and
    step_hook streams all match the cold run's suffix. Every container is
    a deep copy: a snapshot can seed any number of forks.
    """

    ckpt_id: int
    #: Call stack at the commit (register files detached).
    frames: List[FrameSnapshot]
    #: ``payload_bytes`` of the interpreter's live rollback snapshot.
    snapshot_payload_bytes: int
    #: ``{"nvm": {...}, "vm": {...}}`` from MemoryState.snapshot_images.
    images: Dict[str, Dict[str, List[int]]]
    meter_state: dict
    power_state: dict
    instructions_executed: int
    active_cycles: int
    checkpoints_skipped: int
    peak_vm_bytes: int
    #: Committed meter total at the open telemetry segment's boundary.
    seg_anchor: float
    attempts_on_snapshot: int
    #: Telemetry run id of the recording run, re-pinned on resume so a
    #: forked run's events align with the cold run's suffix.
    run_id: int


class Interpreter:
    """Executes one module under a power schedule and checkpoint policy."""

    def __init__(
        self,
        module: Module,
        model: EnergyModel,
        policy: CheckpointPolicy,
        power: PowerManager,
        config: Optional[InterpreterConfig] = None,
    ):
        self.module = module
        self.model = model
        self.policy = policy
        self.power = power
        self.config = config or InterpreterConfig()
        self.memory = MemoryState(module, self.config.vm_size)
        for name, values in self.config.inputs.items():
            if name not in self.memory.nvm:
                raise EmulationError(f"input for unknown global @{name}")
            image = self.memory.nvm[name]
            if len(values) != len(image):
                raise EmulationError(
                    f"input for @{name}: {len(values)} values, "
                    f"variable has {len(image)}"
                )
            var = module.find_variable(name)
            self.memory.nvm[name] = [var.type.wrap(v) for v in values]
        if self.config.default_space is MemorySpace.VM:
            # Reference runs "with all data in VM" (e.g. Table II's timing
            # measurements) need every variable VM-resident up front.
            for name in list(self.memory.nvm):
                self.memory.load_into_vm(name)
        self.meter = EnergyMeter()
        self.frames: List[_Frame] = []
        self.instructions_executed = 0
        self.active_cycles = 0
        self.checkpoints_skipped = 0
        self.peak_vm_bytes = 0
        self._snapshot: Optional[Snapshot] = None  # None = restart from boot
        self._snapshot_inst: Optional[Instruction] = None
        self._attempts_on_snapshot = 0
        # Telemetry is bound once here and only consulted on the cold
        # paths (checkpoints, power failures) — the hot loop is untouched,
        # keeping disabled-mode output bit-identical and full speed.
        # _seg_anchor marks the committed meter total at the last segment
        # boundary: the committed energy of the window a save closes is
        # breakdown.total - _seg_anchor (the meter commits computation at
        # saves and reclassifies rolled-back work, so the committed total
        # is monotone and never counts a window twice).
        self._tm = telemetry.get()
        self._run_id = self._tm.next_run_id() if self._tm is not None else 0
        self._seg_anchor = 0.0
        # The metrics registry and flight recorder follow the same
        # discipline: bound once, consulted only on cold paths, None
        # when disabled. Unlike tracing (_tm), metrics alone do NOT
        # disqualify the compiled loop — counters are only bumped at
        # segment boundaries the compiled loop also crosses.
        self._mm = metrics.get()
        self._fr = flight.get()
        if self._mm is not None:
            self._mm.counter("interp.runs").add(1)
        if self._fr is not None:
            self._fr.provide("interpreter", self._flight_state)
        # Cost cache of the undecoded loop, keyed by id(inst) for O(1)
        # probes but storing (inst, cost) pairs: the held reference pins
        # each instruction object alive, so an id can never be recycled
        # by a newer instruction while its entry exists — the lifetime
        # hazard of the bare id()-keyed cache this replaces (a module
        # rewritten mid-run could free an instruction and serve a stale
        # cost for its reused id). tests/test_interpreter_decode.py pins
        # the pinning down with a freed-id regression test.
        self._costs: Dict[
            int, Tuple[Instruction, Tuple[int, float, float, bool, bool]]
        ] = {}
        if self.config.restore_fidelity not in ("image", "metadata"):
            raise EmulationError(
                f"unknown restore_fidelity "
                f"{self.config.restore_fidelity!r}; "
                f"choose 'image' or 'metadata'"
            )
        #: Per-variable monotone sample counters for volatile environment
        #: inputs. The world does not roll back with the program: the
        #: counters survive power failures and snapshot restores, so a
        #: replayed region re-samples different values (the dynamic
        #: ground truth for static rule CONS002).
        self._env_counts: Dict[str, int] = {}
        self._has_env = any(
            var.volatile_input for var in module.all_variables()
        )
        #: type-keyed dispatch table — measurably faster than an
        #: isinstance chain in the hot loop.
        self._dispatch = {
            BinOp: self._apply_binop,
            Load: self._apply_load,
            Store: self._apply_store,
            Move: self._apply_move,
            UnOp: self._apply_unop,
            Jump: self._apply_jump,
            Branch: self._apply_branch,
            Call: self._do_call,
            Ret: self._do_ret,
        }
        if self._has_env:
            # The undecoded loop (and _apply) must re-check per Load;
            # modules without environment inputs keep the direct handler
            # and pay nothing.
            self._dispatch[Load] = self._apply_load_auto
        self._code = self._decode_module() if self.config.predecode else None
        #: Compiled segment maps, built lazily on the first execution
        #: that is eligible for the compiled loop (frames must exist and
        #: most runs never need it when observation hooks force the
        #: per-step loops). {(function, label): {index: Segment}}.
        self._ccode = None
        #: Which loop the last _execute used: "compiled", "predecoded"
        #: or "undecoded" (introspection for tests and benchmarks).
        self.loop_used: Optional[str] = None

    # -- pre-decoding ----------------------------------------------------------

    def _decode_module(self):
        """Decode every basic block once into ``(handler, cost, inst,
        label)`` entries, keyed by ``(function name, block label)``.

        The hot loop then runs on plain list indexing instead of per-step
        ``type(inst)`` dispatch-dict probes and ``id(inst)`` cost-cache
        lookups. Decoding binds to the instruction objects present at
        construction: the module must not be structurally modified while
        this interpreter is alive (compilation finishes before emulation
        starts everywhere in this codebase).
        """
        code: Dict[Tuple[str, str], list] = {}
        for func in self.module.functions.values():
            fname = func.name
            for label, block in func.blocks.items():
                code[(fname, label)] = [
                    (
                        self._handler_for(inst),  # None => checkpoint
                        self._compute_cost(inst),
                        inst,
                        f"{fname}:{label}:{index}",
                    )
                    for index, inst in enumerate(block.instructions)
                ]
        return code

    def _handler_for(self, inst: Instruction):
        """Decode-time handler selection: environment-input Loads bind
        directly to the sampling handler, so the pre-decoded hot loop
        never re-tests ``volatile_input`` per step."""
        if type(inst) is Load and inst.var.volatile_input:
            return self._apply_load_env
        handler = self._dispatch.get(type(inst))
        if handler is self._apply_load_auto:
            return self._apply_load
        return handler

    # -- cost cache ------------------------------------------------------------

    def _cost(self, inst: Instruction) -> Tuple[int, float, float, bool, bool]:
        """Undecoded-loop accessor: _compute_cost memoized by id(inst),
        with the instruction object held in the entry so the id stays
        pinned (see the lifetime note on ``_costs``)."""
        key = id(inst)
        cached = self._costs.get(key)
        if cached is not None:
            return cached[1]
        result = self._compute_cost(inst)
        self._costs[key] = (inst, result)
        return result

    def _compute_cost(
        self, inst: Instruction
    ) -> Tuple[int, float, float, bool, bool]:
        """(cycles, energy, access_energy, access_is_vm, has_access)."""
        model = self.model
        if isinstance(inst, (Load, Store)):
            space = inst.space
            if space is MemorySpace.AUTO:
                space = self.config.default_space
            base = (
                model.load_base_cycles
                if isinstance(inst, Load)
                else model.store_base_cycles
            )
            cycles = base + model.access_cycles(space)
            access_energy = model.access_energy(space)
            energy = cycles * model.energy_per_cycle + access_energy
            result = (
                cycles,
                energy,
                access_energy,
                space is MemorySpace.VM,
                True,
            )
        elif isinstance(inst, (Checkpoint, CondCheckpoint)):
            result = (0, 0.0, 0.0, False, False)
        else:
            cycles = model.instruction_cycles(inst)
            result = (cycles, cycles * model.energy_per_cycle, 0.0, False, False)
        return result

    def _space_of(self, inst) -> MemorySpace:
        return (
            self.config.default_space
            if inst.space is MemorySpace.AUTO
            else inst.space
        )

    # -- value evaluation --------------------------------------------------------

    def _value(self, frame: _Frame, value) -> int:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Register):
            try:
                return frame.registers[value.name]
            except KeyError:
                raise EmulationError(
                    f"read of uninitialized register %{value.name} in "
                    f"@{frame.function.name}"
                ) from None
        raise EmulationError(f"operand {value} is not a scalar value")

    def _resolve(self, frame: _Frame, name: str) -> str:
        """Resolve a by-reference parameter to its concrete variable."""
        return frame.ref_bindings.get(name, name)

    # -- main loop ------------------------------------------------------------

    def run(self) -> ExecutionReport:
        entry = self.module.entry_function
        self.frames = [_Frame(entry, entry.entry.label)]
        if self.config.trace is not None:
            self.config.trace(entry.name, entry.entry.label)
        tm = self._tm
        if tm is not None:
            tm.event(
                "run-begin", track=telemetry.TRACK_RUNTIME,
                ts=self.power.timeline, run=self._run_id,
                technique=self.policy.name, power_mode=self.power.mode.value,
            )
        return self._drive()

    def resume(self, snapshot: EmulatorSnapshot) -> ExecutionReport:
        """Restore a captured snapshot and replay the rest of the run.

        The interpreter must have been constructed over the same module,
        model, policy and an identically-configured power manager as the
        recording run; only the *dynamic* state comes from the snapshot.
        Telemetry marks the fork (``diffemu-fork``) instead of emitting a
        second ``run-begin``.
        """
        self.restore_snapshot(snapshot)
        tm = self._tm
        if tm is not None:
            tm.event(
                "diffemu-fork", track=telemetry.TRACK_RUNTIME,
                ts=self.power.timeline, run=self._run_id,
                ckpt=snapshot.ckpt_id,
                technique=self.policy.name,
                power_mode=self.power.mode.value,
            )
        return self._drive()

    def _drive(self) -> ExecutionReport:
        completed = False
        failure_reason = ""
        try:
            completed, failure_reason = self._execute()
        except VMCapacityError as exc:
            failure_reason = f"vm capacity exceeded: {exc}"
        # Flush any VM residue so outputs are observable (transforms insert
        # exit checkpoints; this is a free backstop for reference runs).
        for name in self.memory.vm_residents():
            self.memory.save_to_nvm(name)
        if completed:
            self.meter.commit()

        tm = self._tm
        if tm is not None:
            tm.event(
                "run-end", track=telemetry.TRACK_RUNTIME,
                ts=self.power.timeline, run=self._run_id,
                completed=completed, failures=self.power.failures,
                saves=self.meter.saves, restores=self.meter.restores,
                skips=self.checkpoints_skipped,
            )
        outputs = {
            name: list(self.memory.nvm[name])
            for name, var in self.module.globals.items()
            if not var.is_const
        }
        return ExecutionReport(
            technique=self.policy.name,
            completed=completed,
            failure_reason=failure_reason,
            energy=self.meter.breakdown,
            active_cycles=self.active_cycles,
            instructions=self.instructions_executed,
            power_failures=self.power.failures,
            checkpoints_saved=self.meter.saves,
            checkpoints_restored=self.meter.restores,
            checkpoints_skipped=self.checkpoints_skipped,
            vm_accesses=self.meter.vm_accesses,
            nvm_accesses=self.meter.nvm_accesses,
            outputs=outputs,
            peak_vm_bytes=self.peak_vm_bytes,
            power_mode=self.power.mode.value,
            failure_offsets=list(self.power.failure_log),
        )

    def _execute(self) -> Tuple[bool, str]:
        if self._code is None:
            self.loop_used = "undecoded"
            return self._run_selected_loop(self._execute_undecoded)
        config = self.config
        if (
            config.compiled
            and config.step_hook is None
            and config.trace is None
            and self.power.record is None
            and self._tm is None
        ):
            # No per-step observation requested: run the threaded-code
            # loop. Anything that needs step granularity — the testkit
            # sweep's step_hook, block tracing, a recording power
            # manager or enabled telemetry — gets the per-step
            # pre-decoded loop and bit-identical streams. A metrics
            # registry alone (self._mm) does NOT disqualify: counters
            # are bumped only at segment boundaries the compiled loop
            # crosses too, so loop choice stays metrics-invariant.
            if self._ccode is None:
                self._ccode = compiled_blocks.compile_blocks(self, _Frame)
            self.loop_used = "compiled"
            return self._run_selected_loop(self._execute_compiled)
        self.loop_used = "predecoded"
        return self._run_selected_loop(self._execute_predecoded)

    def _run_selected_loop(self, loop) -> Tuple[bool, str]:
        """Count the loop selection (cold: once per execution), then run."""
        if self._mm is not None:
            self._mm.counter(f"interp.loop.{self.loop_used}").add(1)
        return loop()

    def _flight_state(self) -> Dict[str, Any]:
        """Flight-recorder state provider: where this interpreter is,
        sampled only when a postmortem bundle is dumped."""
        frame = self.frames[-1] if self.frames else None
        return {
            "run": self._run_id,
            "power_timeline": self.power.timeline,
            "power_failures": self.power.failures,
            "instructions_executed": self.instructions_executed,
            "active_cycles": self.active_cycles,
            "loop_used": self.loop_used,
            "snapshot_ckpt": (
                self._snapshot.ckpt_id if self._snapshot is not None
                else None
            ),
            "attempts_on_snapshot": self._attempts_on_snapshot,
            "frame": (
                f"{frame.function.name}:{frame.block}:{frame.index}"
                if frame is not None else None
            ),
            "vm_bytes_used": self.memory.vm_bytes_used(),
        }

    def _execute_compiled(self) -> Tuple[bool, str]:
        """The threaded-code loop: whole segments execute as a handful of
        fused-closure calls with one batched accounting transaction.

        The batch is provably equivalent to stepping: the per-field
        energy folds replay the per-step ``+=`` sequences in order
        (:class:`repro.emulator.compiled.Segment`), and
        :meth:`PowerManager.peek_block` admits a segment only when no
        per-step failure predicate could fire inside it — nonnegative
        float addition is monotone under IEEE round-to-nearest, so a
        final consumption within budget bounds every prefix, and the
        cycle-denominated modes compare exact integers. Whenever the
        fast path cannot run — a checkpoint, a predicted in-segment
        failure, the instruction-budget edge, a mid-segment resume
        index — one instruction is executed exactly as the pre-decoded
        loop would, so every cold-path event observes fully reconciled
        meter/power state."""
        frames = self.frames
        code = self._code
        ccode = self._ccode
        power = self.power
        consume = power.consume
        peek_block = power.peek_block
        commit_block = power.commit_block
        meter = self.meter
        charge = meter.charge_compute
        charge_block = meter.charge_block
        max_instructions = self.config.max_instructions

        cur_frame = None
        cur_block = None
        block_code = None
        seg_map = None
        while frames:
            frame = frames[-1]
            if frame is not cur_frame or frame.block is not cur_block:
                cur_frame = frame
                cur_block = frame.block
                key = (frame.function.name, cur_block)
                block_code = code[key]
                seg_map = ccode[key]
            seg = seg_map.get(frame.index)
            if (
                seg is not None
                and self.instructions_executed + seg.n <= max_instructions
            ):
                new_consumed = peek_block(seg.energies, seg.cycles)
                if new_consumed is not None:
                    try:
                        seg.run(frame)
                    except BaseException as exc:
                        self._reconcile_segment_fault(frame, seg, exc)
                        raise
                    commit_block(new_consumed, seg.cycles)
                    charge_block(
                        seg.energies, seg.cpu, seg.vm_e, seg.nvm_e,
                        seg.vm_n, seg.nvm_n,
                    )
                    self.active_cycles += seg.cycles
                    self.instructions_executed += seg.n
                    end = seg.end_index
                    if end is not None:
                        frame.index = end
                    continue
            # Per-step path: checkpoints, a failure predicted inside the
            # segment, the instruction-budget edge, or a resume index
            # that is not a segment start. One instruction, executed
            # exactly as _execute_predecoded would.
            if self.instructions_executed >= max_instructions:
                return False, "instruction budget exhausted (runaway program?)"
            handler, cost, inst, label = block_code[frame.index]
            if handler is None:  # checkpoint pseudo-instructions
                outcome = self._do_checkpoint(frame, inst)
                if outcome is not None:
                    return outcome
                cur_frame = None  # may have rolled back / migrated
                continue
            cycles, energy, access_energy, is_vm, has_access = cost
            if consume(energy, cycles):
                if not self._handle_power_failure():
                    return False, "no forward progress"
                cur_frame = None  # frames were rebuilt from the snapshot
                continue
            self.active_cycles += cycles
            self.instructions_executed += 1
            charge(energy, access_energy, is_vm, has_access)
            handler(frame, inst)
        return True, ""

    def _reconcile_segment_fault(self, frame, seg, exc) -> None:
        """A fused op raised mid-segment before the batch was applied:
        replay per-step accounting for the completed prefix *plus* the
        faulting instruction (the per-step loop consumes and charges
        before the handler runs), and point ``frame.index`` at the
        faulting instruction — exactly the state the pre-decoded loop
        leaves behind when a handler raises. peek_block admitted the
        whole segment, so no consume in this prefix can fail."""
        pos = getattr(exc, "_seg_pos", 0)
        sub = getattr(exc, "_seg_sub", 0)
        fault = sum(seg.widths[:pos]) + sub
        consume = self.power.consume
        charge = self.meter.charge_compute
        for cycles, energy, access_energy, is_vm, has_access in (
            seg.costs[: fault + 1]
        ):
            consume(energy, cycles)
            self.active_cycles += cycles
            self.instructions_executed += 1
            charge(energy, access_energy, is_vm, has_access)
        frame.index = seg.start + fault

    def _execute_predecoded(self) -> Tuple[bool, str]:
        frames = self.frames
        code = self._code
        consume = self.power.consume
        charge = self.meter.charge_compute
        max_instructions = self.config.max_instructions
        step_hook = self.config.step_hook

        # The current block's decoded entries, refreshed whenever the top
        # frame or its block changes. The identity test on the label is
        # conservative: a false mismatch merely refetches, and a false
        # match needs the same frame *and* the same label object, which
        # within one function implies the same block.
        cur_frame = None
        cur_block = None
        block_code = None
        while frames:
            if self.instructions_executed >= max_instructions:
                return False, "instruction budget exhausted (runaway program?)"
            frame = frames[-1]
            if frame is not cur_frame or frame.block is not cur_block:
                cur_frame = frame
                cur_block = frame.block
                block_code = code[frame.function.name, cur_block]
            handler, cost, inst, label = block_code[frame.index]

            if handler is None:  # checkpoint pseudo-instructions
                outcome = self._do_checkpoint(frame, inst)
                if outcome is not None:
                    return outcome
                cur_frame = None  # may have rolled back / migrated
                continue

            cycles, energy, access_energy, is_vm, has_access = cost
            if step_hook is not None:
                step_hook(label, cycles)
            if consume(energy, cycles):
                if not self._handle_power_failure():
                    return False, "no forward progress"
                cur_frame = None  # frames were rebuilt from the snapshot
                continue
            self.active_cycles += cycles
            self.instructions_executed += 1
            charge(energy, access_energy, is_vm, has_access)
            handler(frame, inst)
        return True, ""

    def _execute_undecoded(self) -> Tuple[bool, str]:
        """The original per-step loop: type-dispatch and cost lookups on
        every instruction. Kept as the reference implementation the
        pre-decoded loop is differentially tested (and benchmarked)
        against; selected with ``config.predecode=False``."""
        frames = self.frames
        costs = self._costs
        dispatch = self._dispatch
        consume = self.power.consume
        charge = self.meter.charge_compute
        max_instructions = self.config.max_instructions
        compute_cost = self._cost
        step_hook = self.config.step_hook

        while frames:
            if self.instructions_executed >= max_instructions:
                return False, "instruction budget exhausted (runaway program?)"
            frame = frames[-1]
            inst = frame.function.blocks[frame.block].instructions[frame.index]

            handler = dispatch.get(type(inst))
            if handler is None:  # checkpoint pseudo-instructions
                outcome = self._do_checkpoint(frame, inst)
                if outcome is not None:
                    return outcome
                continue

            entry = costs.get(id(inst))
            cost = entry[1] if entry is not None else compute_cost(inst)
            cycles, energy, access_energy, is_vm, has_access = cost
            if step_hook is not None:
                step_hook(
                    f"{frame.function.name}:{frame.block}:{frame.index}",
                    cycles,
                )
            if consume(energy, cycles):
                if not self._handle_power_failure():
                    return False, "no forward progress"
                continue
            self.active_cycles += cycles
            self.instructions_executed += 1
            charge(energy, access_energy, is_vm, has_access)
            handler(frame, inst)
        return True, ""

    # -- instruction effects -----------------------------------------------------

    def _apply(self, frame: _Frame, inst: Instruction) -> None:
        handler = self._dispatch.get(type(inst))
        if handler is None:
            raise EmulationError(f"cannot interpret {type(inst).__name__}")
        handler(frame, inst)

    def _apply_binop(self, frame: _Frame, inst: BinOp) -> None:
        frame.registers[inst.dest.name] = self._binop(frame, inst)
        frame.index += 1

    def _apply_load(self, frame: _Frame, inst: Load) -> None:
        name = frame.ref_bindings.get(inst.var.name, inst.var.name)
        index = 0 if inst.index is None else self._value(frame, inst.index)
        raw = self.memory.read(name, index, self._space_of(inst))
        frame.registers[inst.dest.name] = inst.dest.type.wrap(raw)
        frame.index += 1

    def _apply_load_env(self, frame: _Frame, inst: Load) -> None:
        """Sample a volatile environment input: the stored image is the
        base reading, offset by a per-variable monotone sample counter.
        The counter is world state — it advances on every sample and is
        never rolled back, so two executions of the same region observe
        different samples (what CONS002 is about), while a replay-free
        run samples the same sequence as the continuous reference."""
        name = frame.ref_bindings.get(inst.var.name, inst.var.name)
        index = 0 if inst.index is None else self._value(frame, inst.index)
        raw = self.memory.read(name, index, self._space_of(inst))
        count = self._env_counts.get(name, 0)
        self._env_counts[name] = count + 1
        frame.registers[inst.dest.name] = inst.dest.type.wrap(raw + count)
        frame.index += 1

    def _apply_load_auto(self, frame: _Frame, inst: Load) -> None:
        """Undecoded-loop Load dispatch for modules with environment
        inputs (the pre-decoded path binds the right handler up front)."""
        if inst.var.volatile_input:
            self._apply_load_env(frame, inst)
        else:
            self._apply_load(frame, inst)

    def _apply_store(self, frame: _Frame, inst: Store) -> None:
        name = frame.ref_bindings.get(inst.var.name, inst.var.name)
        index = 0 if inst.index is None else self._value(frame, inst.index)
        value = inst.var.type.wrap(self._value(frame, inst.value))
        self.memory.write(name, index, value, self._space_of(inst))
        frame.index += 1

    def _apply_move(self, frame: _Frame, inst: Move) -> None:
        frame.registers[inst.dest.name] = inst.dest.type.wrap(
            self._value(frame, inst.src)
        )
        frame.index += 1

    def _apply_unop(self, frame: _Frame, inst: UnOp) -> None:
        value = self._value(frame, inst.src)
        if inst.op is UnaryOpcode.NEG:
            result = -value
        elif inst.op is UnaryOpcode.NOT:
            result = ~value
        else:  # LNOT
            result = int(value == 0)
        frame.registers[inst.dest.name] = inst.dest.type.wrap(result)
        frame.index += 1

    def _apply_jump(self, frame: _Frame, inst: Jump) -> None:
        self._goto(frame, inst.target)

    def _apply_branch(self, frame: _Frame, inst: Branch) -> None:
        target = (
            inst.if_true if self._value(frame, inst.cond) != 0 else inst.if_false
        )
        self._goto(frame, target)

    def _goto(self, frame: _Frame, label: str) -> None:
        frame.block = label
        frame.index = 0
        if self.config.trace is not None:
            self.config.trace(frame.function.name, label)

    def _binop(self, frame: _Frame, inst: BinOp) -> int:
        a = self._value(frame, inst.lhs)
        b = self._value(frame, inst.rhs)
        op = inst.op
        if op is Opcode.ADD:
            result = a + b
        elif op is Opcode.SUB:
            result = a - b
        elif op is Opcode.MUL:
            result = a * b
        elif op is Opcode.DIV:
            if b == 0:
                raise EmulationError("division by zero")
            result = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                result = -result
        elif op is Opcode.REM:
            if b == 0:
                raise EmulationError("remainder by zero")
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            result = a - quotient * b
        elif op is Opcode.AND:
            result = a & b
        elif op is Opcode.OR:
            result = a | b
        elif op is Opcode.XOR:
            result = a ^ b
        elif op is Opcode.SHL:
            result = a << (b & 31)
        elif op is Opcode.SHR:
            # Arithmetic shift for signed lhs, logical for unsigned. The
            # operand's Python value already carries its signedness.
            result = a >> (b & 31)
        elif op is Opcode.EQ:
            result = int(a == b)
        elif op is Opcode.NE:
            result = int(a != b)
        elif op is Opcode.LT:
            result = int(a < b)
        elif op is Opcode.LE:
            result = int(a <= b)
        elif op is Opcode.GT:
            result = int(a > b)
        else:
            result = int(a >= b)
        return inst.dest.type.wrap(result)

    def _do_call(self, frame: _Frame, inst: Call) -> None:
        callee = self.module.function(inst.callee)
        registers: Dict[str, int] = {}
        ref_bindings: Dict[str, str] = {}
        arg_regs = callee.arg_registers()
        for i, (arg, param) in enumerate(zip(inst.args, callee.params)):
            if isinstance(arg, VarRef):
                formal = callee.variables[param.name]
                concrete = self._resolve(frame, arg.variable.name)
                ref_bindings[formal.name] = concrete
            else:
                reg = arg_regs[i]
                assert reg is not None
                registers[reg.name] = reg.type.wrap(self._value(frame, arg))
        frame.index += 1  # resume after the call on return
        new_frame = _Frame(
            callee,
            callee.entry.label,
            registers=registers,
            ref_bindings=ref_bindings,
            ret_target=inst.dest.name if inst.dest is not None else None,
        )
        self.frames.append(new_frame)
        if self.config.trace is not None:
            self.config.trace(callee.name, callee.entry.label)

    def _do_ret(self, frame: _Frame, inst: Ret) -> None:
        value = (
            self._value(frame, inst.value) if inst.value is not None else None
        )
        ret_target = frame.ret_target
        self.frames.pop()
        if self.frames and ret_target is not None and value is not None:
            caller = self.frames[-1]
            caller.registers[ret_target] = value
            if self.config.trace is not None:
                self.config.trace(caller.function.name, caller.block)
        elif self.frames and self.config.trace is not None:
            self.config.trace(self.frames[-1].function.name, self.frames[-1].block)

    # -- checkpoints ------------------------------------------------------------

    def _do_checkpoint(
        self, frame: _Frame, inst
    ) -> Optional[Tuple[bool, str]]:
        """Execute a (conditional) checkpoint. Returns a (completed, reason)
        pair to abort the run, or None to continue."""
        model = self.model
        step_hook = self.config.step_hook

        if isinstance(inst, CondCheckpoint):
            counter_key = f"__ckpt{inst.ckpt_id}"
            count = frame.registers.get(counter_key, 0) + 1
            check_energy = COND_CHECK_CYCLES * model.energy_per_cycle
            if step_hook is not None:
                step_hook(f"ckpt{inst.ckpt_id}:itercheck", COND_CHECK_CYCLES)
            if self.power.consume(check_energy, COND_CHECK_CYCLES):
                if not self._handle_power_failure():
                    return False, "no forward progress"
                return None
            self.active_cycles += COND_CHECK_CYCLES
            self.meter.charge_compute(check_energy)
            if count < inst.every:
                frame.registers[counter_key] = count
                frame.index += 1
                return None
            frame.registers[counter_key] = 0

        # MEMENTOS-style dynamic skip decision.
        if self.policy.skip_threshold is not None and getattr(
            inst, "skippable", True
        ):
            check_energy = self.policy.check_energy
            if step_hook is not None:
                step_hook(f"ckpt{inst.ckpt_id}:voltcheck", COND_CHECK_CYCLES)
            if self.power.consume(check_energy, COND_CHECK_CYCLES):
                if not self._handle_power_failure():
                    return False, "no forward progress"
                return None
            self.active_cycles += COND_CHECK_CYCLES
            self.meter.charge_compute(check_energy)
            if self.power.remaining_fraction > self.policy.skip_threshold:
                self.checkpoints_skipped += 1
                if self._mm is not None:
                    self._mm.counter("interp.ckpt_skips").add(1)
                if self._tm is not None:
                    self._tm.event(
                        "ckpt-skip", track=telemetry.TRACK_RUNTIME,
                        ts=self.power.timeline, run=self._run_id,
                        ckpt=inst.ckpt_id,
                    )
                frame.index += 1
                return None

        # --- save -----------------------------------------------------------
        # Checkpoint commits are atomic (real systems double-buffer the
        # checkpoint area): the energy is consumed first, and the NVM image
        # is updated only if the save completes — a failure mid-save leaves
        # the previous consistent state in place.
        payload = sum(self.memory.size_of(name) for name in inst.save_vars)
        save_energy = model.save_energy(payload)
        save_cycles = model.save_cycles(payload)
        if step_hook is not None:
            step_hook(f"ckpt{inst.ckpt_id}:save", save_cycles)
        if self.power.consume(save_energy, save_cycles):
            self.meter.charge_save(save_energy)  # energy was spent anyway
            if not self._handle_power_failure():
                return False, "no forward progress"
            return None
        for name in inst.save_vars:
            self.memory.save_to_nvm(name)
        self.active_cycles += save_cycles
        self.meter.charge_save(save_energy)
        self.meter.commit()
        if self._mm is not None:
            self._mm.counter("interp.ckpt_saves").add(1)
        if self._fr is not None:
            self._fr.record(
                "ckpt-save", run=self._run_id, ckpt=inst.ckpt_id,
                payload_bytes=payload,
            )
        if self._tm is not None:
            # The previous snapshot (still in place) opened this window.
            self._tm.event(
                "ckpt-save", track=telemetry.TRACK_RUNTIME,
                ts=self.power.timeline, run=self._run_id,
                ckpt=inst.ckpt_id,
                from_ckpt=(
                    self._snapshot.ckpt_id
                    if self._snapshot is not None else None
                ),
                window_nj=round(
                    self.meter.breakdown.total - self._seg_anchor, 6
                ),
                save_nj=round(save_energy, 6),
                payload_bytes=payload,
            )
        self._seg_anchor = self.meter.breakdown.total

        # Snapshot resumes immediately after this checkpoint instruction.
        frame.index += 1
        self._snapshot = Snapshot(
            ckpt_id=inst.ckpt_id,
            frames=[
                FrameSnapshot(
                    function=f.function.name,
                    block=f.block,
                    index=f.index,
                    registers=dict(f.registers),
                    ref_bindings=dict(f.ref_bindings),
                    ret_target=f.ret_target,
                )
                for f in self.frames
            ],
            payload_bytes=sum(
                self.memory.size_of(n) for n in inst.restore_vars
            ),
        )
        self._snapshot_inst = inst
        self._attempts_on_snapshot = 0

        if self.policy.wait_for_full_recharge:
            # Fig. 3 semantics: deep sleep until the capacitor is full; VM
            # is conservatively assumed lost, so everything is restored.
            self.power.recharge_full()
            if not self._apply_restore(inst):
                return False, "no forward progress"
        # Roll-back mode: execution continues with VM intact; only an
        # allocation *change* moves data (none for the baselines).
        elif not self._apply_migration(inst):
            return False, "no forward progress"
        if self.config.commit_hook is not None:
            self.config.commit_hook(self, inst.ckpt_id)
        return None

    def _apply_migration(self, inst) -> bool:
        """Adjust VM residency to ``inst.alloc_after`` without a sleep:
        load newly-VM variables, drop newly-NVM ones (whose values the save
        just flushed). Only the moved bytes are billed."""
        model = self.model
        target = {
            name
            for name, space in inst.alloc_after.items()
            if space is MemorySpace.VM
        }
        current = set(self.memory.vm_residents())
        to_drop = current - target
        for name in to_drop:
            if name not in inst.save_vars:
                # Not flushed by the save: write back now so no value is
                # lost (conservative; baselines never hit this).
                self.memory.save_to_nvm(name)
            self.memory.drop_from_vm(name)
        to_load = target - current
        payload = 0
        for name in to_load:
            payload += self.memory.load_into_vm(name)
        self.peak_vm_bytes = max(self.peak_vm_bytes, self.memory.vm_bytes_used())
        if payload:
            restore_energy = model.restore_energy(payload)
            restore_cycles = model.restore_cycles(payload)
            self.meter.charge_restore(restore_energy)
            if self.config.step_hook is not None:
                self.config.step_hook("migrate", restore_cycles)
            if self.power.consume(restore_energy, restore_cycles):
                return self._handle_power_failure()
            self.active_cycles += restore_cycles
            if self._mm is not None:
                self._mm.counter("interp.migrates").add(1)
            if self._tm is not None:
                self._tm.event(
                    "migrate", track=telemetry.TRACK_RUNTIME,
                    ts=self.power.timeline, run=self._run_id,
                    ckpt=inst.ckpt_id, payload_bytes=payload,
                )
        return True

    def _apply_restore(self, inst, reason: str = "wake") -> bool:
        """Clear VM, load the post-checkpoint VM set, charge the restore.
        Returns False when stuck (restore itself cannot fit the budget)."""
        model = self.model
        self.memory.clear_vm()
        vm_vars = [
            name
            for name, space in inst.alloc_after.items()
            if space is MemorySpace.VM
        ]
        payload = 0
        for name in vm_vars:
            self.memory.load_into_vm(name)
        if self.config.restore_fidelity == "metadata":
            restored = set(inst.restore_vars)
            for name in vm_vars:
                if name in restored:
                    continue
                var = self.module.find_variable(name)
                if var.is_const:
                    # Immutable NVM home: any runtime can refetch it, so
                    # even a strict restore gets consts right.
                    continue
                poison = var.type.wrap(RESTORE_POISON)
                self.memory.vm[name] = [poison] * len(self.memory.vm[name])
        for name in inst.restore_vars:
            payload += self.memory.size_of(name)
        self.peak_vm_bytes = max(self.peak_vm_bytes, self.memory.vm_bytes_used())
        restore_energy = model.restore_energy(payload)
        restore_cycles = model.restore_cycles(payload)
        self.meter.charge_restore(restore_energy)
        if self.config.step_hook is not None:
            self.config.step_hook("restore", restore_cycles)
        if self.power.consume(restore_energy, restore_cycles):
            return self._handle_power_failure()
        self.active_cycles += restore_cycles
        if self._mm is not None:
            self._mm.counter("interp.ckpt_restores").add(1)
        if self._tm is not None:
            self._tm.event(
                "ckpt-restore", track=telemetry.TRACK_RUNTIME,
                ts=self.power.timeline, run=self._run_id,
                ckpt=inst.ckpt_id, restore_nj=round(restore_energy, 6),
                reason=reason,
            )
        return True

    # -- power failures -----------------------------------------------------------

    def _handle_power_failure(self) -> bool:
        """Roll back to the last snapshot after an outage. Returns False
        when the execution is stuck (no forward progress)."""
        self._attempts_on_snapshot += 1
        if self._mm is not None:
            self._mm.counter("interp.power_failures").add(1)
        if self._fr is not None:
            self._fr.record(
                "power-failure", run=self._run_id,
                attempt=self._attempts_on_snapshot,
            )
        if self._tm is not None:
            self._tm.event(
                "power-failure", track=telemetry.TRACK_RUNTIME,
                ts=self.power.timeline, run=self._run_id,
                attempt=self._attempts_on_snapshot,
            )
        if self._attempts_on_snapshot >= MAX_ATTEMPTS_PER_SNAPSHOT + 1:
            return False
        self.meter.rollback()
        # The discarded attempt (including any partial save energy) must
        # not count against the segment that eventually commits.
        self._seg_anchor = self.meter.breakdown.total
        self.memory.clear_vm()
        self.power.recharge_full()

        if self._snapshot is None:
            # Restart from boot: fresh frames, nothing to restore but the
            # (empty) register file. Mutate in place: _execute holds a
            # reference to the frames list.
            entry = self.module.entry_function
            self.frames[:] = [_Frame(entry, entry.entry.label)]
            restore_energy = self.model.restore_energy(0)
            self.meter.charge_restore(restore_energy)
            if self.config.step_hook is not None:
                self.config.step_hook(
                    "boot-restore", self.model.restore_cycles(0)
                )
            self.power.consume(restore_energy, self.model.restore_cycles(0))
            if self._mm is not None:
                self._mm.counter("interp.reboots").add(1)
            if self._fr is not None:
                self._fr.record("reboot", run=self._run_id)
            if self._tm is not None:
                self._tm.event(
                    "reboot", track=telemetry.TRACK_RUNTIME,
                    ts=self.power.timeline, run=self._run_id,
                )
            if self.config.trace is not None:
                self.config.trace(entry.name, entry.entry.label)
            return True

        snapshot = self._snapshot
        self.frames[:] = [
            _Frame(
                self.module.function(f.function),
                f.block,
                f.index,
                registers=dict(f.registers),
                ref_bindings=dict(f.ref_bindings),
                ret_target=f.ret_target,
            )
            for f in snapshot.frames
        ]
        return self._apply_restore(self._snapshot_inst, reason="rollback")

    # -- snapshot / fork --------------------------------------------------------

    def capture_snapshot(self) -> EmulatorSnapshot:
        """Capture the complete dynamic state at a checkpoint commit.

        Meant to be called from :attr:`InterpreterConfig.commit_hook`
        (i.e. with the last checkpoint fully committed); raises
        :class:`EmulationError` before the first commit, when there is no
        consistent resume point yet."""
        if self._snapshot is None:
            raise EmulationError(
                "capture_snapshot before any checkpoint commit"
            )
        if self._has_env:
            # The environment's sample counters are world state, outside
            # the program state a snapshot captures; forking such a run
            # would replay the world, which is exactly what volatile
            # inputs model as impossible.
            raise EmulationError(
                "capture_snapshot on a module with volatile environment "
                "inputs"
            )
        return EmulatorSnapshot(
            ckpt_id=self._snapshot.ckpt_id,
            frames=[
                FrameSnapshot(
                    function=f.function.name,
                    block=f.block,
                    index=f.index,
                    registers=dict(f.registers),
                    ref_bindings=dict(f.ref_bindings),
                    ret_target=f.ret_target,
                )
                for f in self.frames
            ],
            snapshot_payload_bytes=self._snapshot.payload_bytes,
            images=self.memory.snapshot_images(),
            meter_state=self.meter.state_dict(),
            power_state=self.power.state_dict(),
            instructions_executed=self.instructions_executed,
            active_cycles=self.active_cycles,
            checkpoints_skipped=self.checkpoints_skipped,
            peak_vm_bytes=self.peak_vm_bytes,
            seg_anchor=self._seg_anchor,
            attempts_on_snapshot=self._attempts_on_snapshot,
            run_id=self._run_id,
        )

    def restore_snapshot(self, snap: EmulatorSnapshot) -> None:
        """Load a captured snapshot into this (freshly built) interpreter.

        Validates that the snapshot's program position actually names the
        checkpoint it claims (a corrupted or mismatched snapshot raises
        :class:`EmulationError` instead of silently resuming wrong)."""
        if not snap.frames:
            raise EmulationError("snapshot has no frames")
        top = snap.frames[-1]
        try:
            function = self.module.function(top.function)
            block = function.blocks[top.block]
            inst = block.instructions[top.index - 1]
        except (KeyError, IndexError) as exc:
            raise EmulationError(
                f"snapshot position {top.function}:{top.block}:"
                f"{top.index - 1} does not exist in this module ({exc})"
            ) from None
        if (
            top.index < 1
            or not isinstance(inst, (Checkpoint, CondCheckpoint))
            or inst.ckpt_id != snap.ckpt_id
        ):
            raise EmulationError(
                f"snapshot claims checkpoint {snap.ckpt_id} but the "
                f"instruction before {top.function}:{top.block}:"
                f"{top.index} is {type(inst).__name__}"
            )
        self.frames = [
            _Frame(
                self.module.function(f.function),
                f.block,
                f.index,
                registers=dict(f.registers),
                ref_bindings=dict(f.ref_bindings),
                ret_target=f.ret_target,
            )
            for f in snap.frames
        ]
        self.memory.restore_images(snap.images)
        self.meter.restore_state(snap.meter_state)
        self.power.restore_state(snap.power_state)
        self.instructions_executed = snap.instructions_executed
        self.active_cycles = snap.active_cycles
        self.checkpoints_skipped = snap.checkpoints_skipped
        self.peak_vm_bytes = snap.peak_vm_bytes
        self._seg_anchor = snap.seg_anchor
        self._attempts_on_snapshot = snap.attempts_on_snapshot
        self._run_id = snap.run_id
        self._snapshot = Snapshot(
            ckpt_id=snap.ckpt_id,
            frames=list(snap.frames),
            payload_bytes=snap.snapshot_payload_bytes,
        )
        self._snapshot_inst = inst


# -- drivers ---------------------------------------------------------------------


def run_continuous(
    module: Module,
    model: EnergyModel,
    default_space: MemorySpace = MemorySpace.NVM,
    inputs: Optional[Dict[str, List[int]]] = None,
    trace: Optional[Callable[[str, str], None]] = None,
    max_instructions: int = 200_000_000,
    predecode: bool = True,
    compiled: bool = True,
) -> ExecutionReport:
    """Run a module under continuous power (reference/profiling runs).

    Untransformed programs (all accesses AUTO) are costed as if every
    variable lived in ``default_space``.
    """
    config = InterpreterConfig(
        default_space=default_space,
        inputs=dict(inputs or {}),
        trace=trace,
        max_instructions=max_instructions,
        predecode=predecode,
        compiled=compiled,
    )
    interp = Interpreter(
        module,
        model,
        CheckpointPolicy.rollback_mode("continuous"),
        PowerManager.continuous(),
        config,
    )
    return interp.run()


def run_intermittent(
    module: Module,
    model: EnergyModel,
    policy: CheckpointPolicy,
    power: PowerManager,
    vm_size: int = 1 << 30,
    inputs: Optional[Dict[str, List[int]]] = None,
    max_instructions: int = 200_000_000,
    step_hook: Optional[Callable[[str, int], None]] = None,
    predecode: bool = True,
    compiled: bool = True,
    restore_fidelity: str = "image",
) -> ExecutionReport:
    """Run a transformed module under intermittent power."""
    config = InterpreterConfig(
        inputs=dict(inputs or {}),
        max_instructions=max_instructions,
        vm_size=vm_size,
        step_hook=step_hook,
        predecode=predecode,
        compiled=compiled,
        restore_fidelity=restore_fidelity,
    )
    interp = Interpreter(module, model, policy, power, config)
    return interp.run()
