"""MEMENTOS (Ransford et al., ASPLOS 2011) — the All-VM baseline.

"MEMENTOS only uses VM as working memory and relies on compile-time
selection of potential checkpointing locations. At runtime, MEMENTOS takes
decisions about whether a checkpoint should be skipped or not, given the
energy left. To estimate the energy available, it measures the voltage
across the capacitor." (paper §IV-A). Checkpoints sit on loop latches, as
in the MEMENTOS publication; a checkpoint copies the *entire* volatile
state (all variables plus registers) to NVM.

Feasibility: the whole data set must fit in VM — MEMENTOS "cannot run
benchmarks with cumulated variable size larger than the VM size" (Table I).
"""

from __future__ import annotations

from repro.baselines.common import (
    CompiledTechnique,
    concrete_variables,
    data_footprint,
    full_alloc,
    insert_backedge_checkpoints,
    insert_entry_checkpoint,
    insert_exit_checkpoints,
    set_all_spaces,
)
from repro.core.transform import _CheckpointFactory
from repro.emulator.runtime import MEMENTOS_THRESHOLD, CheckpointPolicy
from repro.energy.platform import Platform
from repro.ir.module import Module
from repro.ir.validate import validate_module
from repro.ir.values import MemorySpace


def compile_mementos(module: Module, platform: Platform) -> CompiledTechnique:
    """Instrument ``module`` with the MEMENTOS scheme."""
    footprint = data_footprint(module)
    policy = CheckpointPolicy.rollback_mode(
        "mementos", skip_threshold=MEMENTOS_THRESHOLD
    )
    if footprint > platform.vm_size:
        return CompiledTechnique(
            name="mementos",
            module=module,
            policy=policy,
            feasible=False,
            infeasible_reason=(
                f"data footprint {footprint} B exceeds VM size "
                f"{platform.vm_size} B"
            ),
        )

    work = module.clone()
    set_all_spaces(work, MemorySpace.VM)
    alloc = full_alloc(work, MemorySpace.VM)
    all_names = tuple(sorted(alloc))
    save_names = tuple(
        v.name for v in concrete_variables(work) if not v.is_const
    )

    factory = _CheckpointFactory()
    insert_entry_checkpoint(work, factory, restore=all_names, alloc_after=alloc)
    count = insert_backedge_checkpoints(
        work,
        factory,
        save_for={"*": (save_names, all_names)},
        alloc_after=alloc,
    )
    insert_exit_checkpoints(work, factory, save=save_names)
    validate_module(work)
    return CompiledTechnique(
        name="mementos",
        module=work,
        policy=policy,
        checkpoints_inserted=factory.next_id - 1,
    )
