"""schematic-repro: reproduction of SCHEMATIC (CGO 2024).

SCHEMATIC is a compiler technique for intermittently-powered (battery-free)
systems that jointly decides, at compile time, (i) where to place checkpoints
and (ii) which variables to allocate in volatile memory (VM) vs non-volatile
memory (NVM) between checkpoints, minimizing energy while guaranteeing
forward progress.

The package is organized as:

- :mod:`repro.ir` -- a small typed register IR (the compilation substrate).
- :mod:`repro.frontend` -- MiniC, a C-like language lowered to the IR.
- :mod:`repro.analysis` -- CFG, dominators, loops, call graph, liveness,
  access counting and worst-case energy analyses.
- :mod:`repro.energy` -- per-instruction energy model (MSP430FR5969 preset)
  and platform description (VM size, capacitor budget).
- :mod:`repro.emulator` -- IR-level intermittent-execution emulator with
  per-category energy metering (the SCEPTIC substitute).
- :mod:`repro.core` -- the SCHEMATIC technique itself (RCG, joint placement
  and allocation, loop/function handling, program transformation).
- :mod:`repro.baselines` -- RATCHET, MEMENTOS, ROCKCLIMB, ALFRED, All-NVM.
- :mod:`repro.programs` -- the eight MiBench2-style benchmarks in MiniC.
- :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
