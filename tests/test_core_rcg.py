"""Unit tests for the Reachable Checkpoint Graph solver."""

import pytest

from repro.core.allocation import SegmentContext
from repro.core.rcg import RCG, Boundary, RCGInfeasibleError
from repro.core.region import Atom, AtomKind
from repro.core.summaries import CkptBearing
from repro.energy import msp430fr5969_model
from repro.ir import I32, MemorySpace, U8, Variable

MODEL = msp430fr5969_model()


def make_atoms(energies, access_var=None, accesses=0):
    atoms = []
    for i, energy in enumerate(energies):
        atom = Atom(
            uid=i + 1, kind=AtomKind.SLICE, label=f"b{i}", base_energy=energy
        )
        if access_var and accesses:
            atom.counts.add_read(access_var, accesses)
        atoms.append(atom)
    return atoms


def make_ctx(variables=None, capacity=2048):
    return SegmentContext(
        model=MODEL,
        vm_capacity=capacity,
        variables=variables or {"x": Variable("x", I32)},
    )


def solve(atoms, eb, left=None, right=None, ctx=None):
    rcg = RCG(
        ctx or make_ctx(),
        eb,
        atoms,
        left or Boundary(kind="fresh", energy=eb, has_edge=False),
        right or Boundary(kind="fresh", energy=MODEL.save_energy(0),
                          has_edge=False),
        live_at_position=lambda p: set(),
    )
    return rcg.solve()


SAVE0 = MODEL.save_energy(0)
RESTORE0 = MODEL.restore_energy(0)


class TestBasicSolve:
    def test_everything_fits_no_checkpoints(self):
        result = solve(make_atoms([10.0, 10.0, 10.0]), eb=1_000.0)
        assert result.enabled_positions == []
        assert len(result.segments) == 1

    def test_tight_budget_inserts_checkpoint(self):
        # Two 300 nJ atoms with EB=500: they cannot share a segment.
        result = solve(make_atoms([300.0, 300.0]), eb=500.0)
        assert result.enabled_positions == [1]
        assert len(result.segments) == 2

    def test_three_segments_when_needed(self):
        result = solve(make_atoms([300.0, 300.0, 300.0]), eb=450.0)
        assert result.enabled_positions == [1, 2]

    def test_infeasible_atom_raises(self):
        with pytest.raises(RCGInfeasibleError):
            solve(make_atoms([900.0]), eb=500.0)

    def test_minimum_energy_chosen(self):
        # Either one checkpoint (after atom 0 or after atom 1) works;
        # the solver must not enable both.
        result = solve(make_atoms([200.0, 200.0, 200.0]), eb=520.0)
        assert len(result.enabled_positions) == 1

    def test_costs_accumulate(self):
        result = solve(make_atoms([300.0, 300.0]), eb=500.0)
        # exec + one save + one restore, plus boundary effects
        assert result.total_cost >= 600.0


class TestBoundaries:
    def test_left_atom_budget_respected(self):
        # Predecessor left only 100 nJ: a 300 nJ atom cannot run before
        # the first checkpoint; the boundary edge must carry one.
        atoms = make_atoms([300.0])
        left = Boundary(kind="atom", energy=100.0, alloc={}, has_edge=True)
        right = Boundary(kind="fresh", energy=SAVE0, has_edge=False)
        result = solve(atoms, eb=600.0, left=left, right=right)
        assert 0 in result.enabled_positions

    def test_left_atom_flow_through_when_cheap(self):
        atoms = make_atoms([50.0])
        left = Boundary(kind="atom", energy=500.0, alloc={}, has_edge=True)
        right = Boundary(kind="fresh", energy=SAVE0, has_edge=False)
        result = solve(atoms, eb=600.0, left=left, right=right)
        assert result.enabled_positions == []

    def test_right_atom_need_respected(self):
        # The successor needs 400 nJ: a 300 nJ atom flowing into it without
        # a checkpoint would need 300+400 <= budget.
        atoms = make_atoms([300.0])
        right = Boundary(kind="atom", energy=400.0, alloc={}, has_edge=True)
        result = solve(atoms, eb=600.0, right=right)
        assert result.enabled_positions == [1]

    def test_mandatory_right_checkpoint(self):
        atoms = make_atoms([50.0])
        right = Boundary(
            kind="fresh", energy=0.0, has_edge=True, mandatory_ckpt=True
        )
        result = solve(atoms, eb=10_000.0, right=right)
        assert result.enabled_positions == [1]

    def test_mandatory_left_checkpoint(self):
        atoms = make_atoms([50.0])
        left = Boundary(
            kind="atom", energy=1_000.0, alloc={}, has_edge=True,
            mandatory_ckpt=True,
        )
        result = solve(atoms, eb=10_000.0, left=left)
        assert 0 in result.enabled_positions


class TestAllocationInRCG:
    def test_segment_allocation_attached(self):
        variables = {"hot": Variable("hot", I32)}
        ctx = make_ctx(variables=variables)
        atoms = make_atoms([20.0], access_var="hot", accesses=200)
        rcg = RCG(
            ctx,
            5_000.0,
            atoms,
            Boundary(kind="fresh", energy=5_000.0, has_edge=False),
            Boundary(kind="fresh", energy=SAVE0, has_edge=False),
            live_at_position=lambda p: {"hot"},
        )
        result = rcg.solve()
        (segment,) = result.segments
        assert segment.plan.alloc["hot"] is MemorySpace.VM
        assert result.entry_alloc["hot"] is MemorySpace.VM

    def test_exit_dirty_reported_for_fresh_exit(self):
        variables = {"hot": Variable("hot", I32)}
        ctx = make_ctx(variables=variables)
        atoms = make_atoms([20.0])
        atoms[0].counts.add_write("hot", 200, full=True)
        rcg = RCG(
            ctx,
            5_000.0,
            atoms,
            Boundary(kind="fresh", energy=5_000.0, has_edge=False),
            Boundary(kind="fresh", energy=SAVE0, has_edge=False),
            live_at_position=lambda p: {"hot"},
        )
        result = rcg.solve()
        assert "hot" in result.exit_dirty


class TestBarriers:
    def _barrier_atom(self, uid=2):
        atom = Atom(uid=uid, kind=AtomKind.LOOP, label="loop")
        atom.ckpt = CkptBearing(
            e_to_first=100.0,
            e_from_last=100.0,
            internal_energy=500.0,
        )
        return atom

    def test_barrier_forces_checkpoints_on_both_sides(self):
        atoms = make_atoms([50.0])
        atoms.append(self._barrier_atom())
        atoms.extend(make_atoms([60.0]))
        atoms[2].uid = 3
        result = solve(atoms, eb=1_000.0)
        assert 1 in result.enabled_positions  # entry edge of the barrier
        assert 2 in result.enabled_positions  # exit edge of the barrier

    def test_no_segment_spans_barrier(self):
        atoms = make_atoms([50.0])
        atoms.append(self._barrier_atom())
        atoms.extend(make_atoms([60.0]))
        atoms[2].uid = 3
        result = solve(atoms, eb=1_000.0)
        for segment in result.segments:
            assert 2 not in segment.atom_uids  # the barrier's uid

    def test_barrier_too_hungry_is_infeasible(self):
        atom = self._barrier_atom()
        atom.ckpt = CkptBearing(
            e_to_first=2_000.0, e_from_last=100.0, internal_energy=2_100.0
        )
        with pytest.raises(RCGInfeasibleError):
            solve([atom], eb=1_000.0)
